"""Tests for the energy model."""

import pytest

from repro.core import Design
from repro.energy import EnergyModel, EnergyParams


class TestEnergyParams:
    def test_paper_constants(self):
        params = EnergyParams()
        assert params.link_pj_per_bit == 5.0   # Denali report figure
        assert params.hmc_dram_pj_per_bit == 4.0
        assert params.leakage_fraction == 0.10  # Lim et al. strategy

    def test_gddr5_more_expensive_per_bit_than_hmc(self):
        params = EnergyParams()
        assert params.gddr5_pj_per_bit > params.hmc_dram_pj_per_bit

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyParams(link_pj_per_bit=-1.0)
        with pytest.raises(ValueError):
            EnergyParams(leakage_fraction=1.5)


class TestFrameEnergy:
    def test_breakdown_total_is_sum(self, design_runs):
        model = EnergyModel()
        breakdown = model.frame_energy(
            Design.BASELINE, design_runs[Design.BASELINE].frame
        )
        parts = breakdown.as_dict()
        total = parts.pop("total")
        assert total == pytest.approx(sum(parts.values()))

    def test_all_components_non_negative(self, design_runs):
        model = EnergyModel()
        for design, run in design_runs.items():
            breakdown = model.frame_energy(design, run.frame)
            for name, value in breakdown.as_dict().items():
                assert value >= 0.0, name

    def test_baseline_uses_gddr5_energy_not_links(self, design_runs):
        model = EnergyModel()
        breakdown = model.frame_energy(
            Design.BASELINE, design_runs[Design.BASELINE].frame
        )
        assert breakdown.memory_interface == 0.0
        assert breakdown.dram > 0.0

    def test_pim_designs_pay_link_energy(self, design_runs):
        model = EnergyModel()
        for design in (Design.B_PIM, Design.S_TFIM, Design.A_TFIM):
            breakdown = model.frame_energy(design, design_runs[design].frame)
            assert breakdown.memory_interface > 0.0

    def test_in_memory_designs_have_memory_texture_energy(self, design_runs):
        model = EnergyModel()
        stfim = model.frame_energy(Design.S_TFIM, design_runs[Design.S_TFIM].frame)
        baseline = model.frame_energy(
            Design.BASELINE, design_runs[Design.BASELINE].frame
        )
        assert stfim.texture_units_memory > 0.0
        assert baseline.texture_units_memory == 0.0

    def test_paper_fig13_orderings(self, design_runs):
        """A-TFIM < B-PIM < baseline; S-TFIM > B-PIM (Fig. 13)."""
        model = EnergyModel()
        totals = {
            design: model.frame_energy(design, run.frame).total
            for design, run in design_runs.items()
        }
        assert totals[Design.A_TFIM] < totals[Design.BASELINE]
        assert totals[Design.B_PIM] < totals[Design.BASELINE]
        assert totals[Design.A_TFIM] < totals[Design.B_PIM]
        assert totals[Design.S_TFIM] > totals[Design.B_PIM]

    def test_static_energy_scales_with_runtime(self, design_runs):
        model = EnergyModel()
        slow = design_runs[Design.S_TFIM].frame
        fast = design_runs[Design.A_TFIM].frame
        assert slow.frame_cycles > fast.frame_cycles
        slow_static = model.frame_energy(Design.S_TFIM, slow).static
        fast_static = model.frame_energy(Design.A_TFIM, fast).static
        assert slow_static > fast_static
