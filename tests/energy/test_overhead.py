"""Tests reproducing the section VII-E overhead arithmetic."""

import pytest

from repro.energy.overhead import OverheadParams, compute_overhead


class TestOverheadArithmetic:
    def test_parent_entry_is_45_bits(self):
        # 8-bit ID + 32-bit value + 1 done bit + 4-bit child counter.
        assert OverheadParams().parent_entry_bits == 45

    def test_parent_buffer_141_kb(self):
        overhead = compute_overhead()
        # (256 x 45) / (1024 x 8) = 1.41 KB, as printed in the paper.
        assert overhead.parent_buffer_kb == pytest.approx(1.41, abs=0.01)

    def test_consolidation_half_kb(self):
        overhead = compute_overhead()
        assert overhead.consolidation_kb == pytest.approx(0.5, abs=0.01)

    def test_hmc_area_fraction_318_percent(self):
        overhead = compute_overhead()
        # (6.09 + 1.12) / 226.1 = 3.18 % of an 8Gb DRAM die.
        assert overhead.hmc_area_fraction == pytest.approx(0.0318, abs=0.0005)

    def test_l1_angle_bits_021_kb(self):
        overhead = compute_overhead()
        # 250-ish lines x 7 bits -> 0.21 KB per 16KB L1.
        assert overhead.l1_angle_kb == pytest.approx(0.21, abs=0.02)

    def test_l2_angle_bits_175_kb(self):
        overhead = compute_overhead()
        assert overhead.l2_angle_kb == pytest.approx(1.75, abs=0.01)

    def test_gpu_total_42_kb(self):
        overhead = compute_overhead()
        # 16 L1s x 0.21 KB + 1.75 KB L2 ~= 4.2 KB total separately but
        # the paper sums per-cache contributions over 16 texture units:
        # our arithmetic gives 16 x 0.219 + 1.75 = 5.25 KB with exact
        # line counts; the paper rounds line counts down to 250/2000.
        assert 4.0 <= overhead.gpu_angle_kb_total <= 5.5

    def test_gpu_area_fraction_023_percent(self):
        overhead = compute_overhead()
        assert overhead.gpu_area_fraction == pytest.approx(0.0023, abs=0.0001)

    def test_storage_total(self):
        overhead = compute_overhead()
        assert overhead.hmc_storage_kb == pytest.approx(
            overhead.parent_buffer_kb + overhead.consolidation_kb
        )
