"""Tests for texel formats."""

import pytest

from repro.texture.formats import RGBA8, TexelFormat


class TestTexelFormat:
    def test_rgba8(self):
        assert RGBA8.bytes_per_texel == 4
        assert RGBA8.components == 4

    def test_texels_per_line(self):
        assert RGBA8.texels_per_line(64) == 16

    def test_line_smaller_than_texel_rejected(self):
        fmt = TexelFormat(name="fat", bytes_per_texel=128)
        with pytest.raises(ValueError):
            fmt.texels_per_line(64)

    def test_bytes_for(self):
        # The paper's 16x anisotropic example: 128 texels = 512 bytes.
        assert RGBA8.bytes_for(128) == 512

    def test_bytes_for_negative_rejected(self):
        with pytest.raises(ValueError):
            RGBA8.bytes_for(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TexelFormat(name="bad", bytes_per_texel=0)
        with pytest.raises(ValueError):
            TexelFormat(name="bad", bytes_per_texel=4, components=0)
