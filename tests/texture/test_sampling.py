"""Tests for the filtering math building blocks."""

import numpy as np
import pytest

from repro.texture.lod import compute_footprint
from repro.texture.mipmap import build_mipmaps
from repro.texture.sampling import (
    TextureSampler,
    bilinear_sample,
    bilinear_taps,
    child_texel_coords,
    level_blend_for,
    parent_texel_coords,
    probe_offsets,
    trilinear_sample,
)
from repro.texture.texture import Texture


def make_chain(size=16, constant=None, seed=5, texture_id=0):
    if constant is not None:
        data = np.full((size, size, 4), constant, dtype=np.float64)
    else:
        rng = np.random.default_rng(seed)
        data = rng.random((size, size, 4))
    return build_mipmaps(Texture(texture_id=texture_id, data=data))


def footprint(probes=4, lod=0.5, direction=(1.0, 0.0)):
    """Build a footprint with a requested probe count and LOD."""
    minor = 2.0 ** lod
    major = minor * probes
    du, dv = direction
    return compute_footprint(major * du, major * dv, -minor * dv, minor * du)


class TestBilinearTaps:
    def test_weights_sum_to_one(self):
        taps = bilinear_taps(16, 16, 5.3, 7.8)
        assert sum(tap.weight for tap in taps) == pytest.approx(1.0)

    def test_texel_centre_hits_single_texel(self):
        taps = bilinear_taps(16, 16, 5.5, 7.5)
        weights = sorted((tap.weight for tap in taps), reverse=True)
        assert weights[0] == pytest.approx(1.0)
        assert weights[1] == pytest.approx(0.0)

    def test_four_taps_form_2x2_quad(self):
        taps = bilinear_taps(16, 16, 5.0, 7.0)
        xs = sorted({tap.x for tap in taps})
        ys = sorted({tap.y for tap in taps})
        assert xs[1] == xs[0] + 1
        assert ys[1] == ys[0] + 1


class TestLevelBlend:
    def test_integral_lod_single_level(self):
        chain = make_chain()
        blend = level_blend_for(chain, 2.0)
        assert blend.is_single_level
        assert blend.level_low == 2

    def test_fractional_lod_two_levels(self):
        chain = make_chain()
        blend = level_blend_for(chain, 1.25)
        assert blend.level_low == 1
        assert blend.level_high == 2
        assert blend.weight == pytest.approx(0.25)

    def test_clamped_at_chain_top(self):
        chain = make_chain(16)  # max level 4
        blend = level_blend_for(chain, 99.0)
        assert blend.level_low == chain.max_level
        assert blend.is_single_level

    def test_negative_lod_clamps_to_zero(self):
        chain = make_chain()
        blend = level_blend_for(chain, -3.0)
        assert blend.level_low == 0
        assert blend.is_single_level


class TestBilinearSample:
    def test_constant_texture_invariant(self):
        chain = make_chain(constant=0.25)
        color = bilinear_sample(chain, 0, 3.7, 9.2)
        assert np.allclose(color, 0.25)

    def test_interpolates_between_texels(self):
        data = np.zeros((2, 2, 4))
        data[0, 1] = 1.0  # texel (1, 0) white
        chain = build_mipmaps(Texture(texture_id=0, data=data))
        # Halfway between texel centres (0.5,0.5) and (1.5,0.5).
        color = bilinear_sample(chain, 0, 1.0, 0.5)
        assert color[0] == pytest.approx(0.5)

    def test_offset_shifts_fetch(self):
        chain = make_chain()
        base = bilinear_sample(chain, 0, 4.5, 4.5)
        shifted = bilinear_sample(chain, 0, 4.5, 4.5, offset=(1, 0))
        expected = bilinear_sample(chain, 0, 5.5, 4.5)
        assert np.allclose(shifted, expected)
        assert not np.allclose(base, shifted)


class TestTrilinearSample:
    def test_blends_levels(self):
        chain = make_chain()
        low = bilinear_sample(chain, 1, 4.5, 4.5)
        high = bilinear_sample(chain, 2, 4.5, 4.5)
        mixed = trilinear_sample(chain, 1.5, 4.5, 4.5)
        assert np.allclose(mixed, 0.5 * (low + high))

    def test_integral_lod_matches_bilinear(self):
        chain = make_chain()
        assert np.allclose(
            trilinear_sample(chain, 1.0, 4.5, 4.5),
            bilinear_sample(chain, 1, 4.5, 4.5),
        )


class TestProbeOffsets:
    def test_isotropic_single_zero_offset(self):
        fp = footprint(probes=1, lod=0.0)
        assert probe_offsets(fp, 0) == ((0, 0),)

    def test_probe_count_matches_footprint(self):
        fp = footprint(probes=4)
        assert len(probe_offsets(fp, 0)) == 4

    def test_offsets_symmetric(self):
        fp = footprint(probes=4, lod=2.0, direction=(1.0, 0.0))
        offsets = probe_offsets(fp, 2)
        total_dx = sum(dx for dx, _ in offsets)
        total_dy = sum(dy for _, dy in offsets)
        assert total_dx == 0
        assert total_dy == 0

    def test_offsets_follow_major_axis(self):
        fp = footprint(probes=4, lod=1.0, direction=(0.0, 1.0))
        offsets = probe_offsets(fp, 1)
        assert all(dx == 0 for dx, _ in offsets)
        assert any(dy != 0 for _, dy in offsets)

    def test_offsets_shrink_at_coarser_levels(self):
        fp = footprint(probes=8, lod=1.0)
        fine_span = max(abs(dx) for dx, _ in probe_offsets(fp, 0))
        coarse_span = max(abs(dx) for dx, _ in probe_offsets(fp, 4))
        assert fine_span >= coarse_span


class TestParentChildCoords:
    def test_parent_count_single_level(self):
        chain = make_chain()
        parents = parent_texel_coords(chain, 2.0, 5.0, 5.0)
        assert len(parents) == 4

    def test_parent_count_two_levels(self):
        chain = make_chain()
        parents = parent_texel_coords(chain, 1.5, 5.0, 5.0)
        assert len(parents) == 8

    def test_parent_weights_sum_to_one(self):
        chain = make_chain()
        parents = parent_texel_coords(chain, 1.3, 6.2, 3.9)
        assert sum(w for *_ , w in parents) == pytest.approx(1.0)

    def test_child_count_equals_probes(self):
        # Fig. 7(B): 4x anisotropic generates 4 children per parent.
        fp = footprint(probes=4)
        children = child_texel_coords(fp, 0, 5, 5)
        assert len(children) == 4

    def test_isotropic_child_is_parent(self):
        fp = footprint(probes=1, lod=0.0)
        assert child_texel_coords(fp, 0, 5, 7) == [(5, 7)]


class TestTextureSampler:
    def test_recorded_texels_deduplicated(self):
        chain = make_chain()
        sampler = TextureSampler(chain)
        fp = footprint(probes=2, lod=0.25)
        result = sampler.sample(fp, 5.0, 5.0, record=True)
        assert len(result.texels) == len(set(result.texels))
        assert result.texels  # non-empty

    def test_no_recording_by_default(self):
        chain = make_chain()
        sampler = TextureSampler(chain)
        result = sampler.sample(footprint(), 5.0, 5.0)
        assert result.texels == []

    def test_fig7_texel_arithmetic(self):
        # Paper Fig. 7: a 4x anisotropic trilinear lookup touches
        # 4 probes x 8 taps = 32 texels before deduplication; the
        # reordered path fetches 8 parents whose children total 32.
        chain = make_chain(64)
        sampler = TextureSampler(chain)
        fp = footprint(probes=4, lod=1.5)
        parents = parent_texel_coords(chain, fp.lod, 20.0, 20.0)
        assert len(parents) == 8
        total_children = sum(
            len(child_texel_coords(fp, level, x, y))
            for level, x, y, _ in parents
        )
        assert total_children == 32

    def test_isotropic_sampler_matches_trilinear(self):
        chain = make_chain()
        sampler = TextureSampler(chain)
        fp = footprint(probes=4, lod=1.5)
        iso = sampler.sample_isotropic(fp, 5.0, 5.0)
        assert np.allclose(iso.color, trilinear_sample(chain, fp.lod, 5.0, 5.0))
