"""Property-based proof of the paper's section V-B claim.

A-TFIM reorders texture filtering to run anisotropic *first* (averaging
each parent texel's probe-displaced children in memory) and bilinear /
trilinear afterwards.  Eq. (3) argues the output color is unchanged
because the nested weighted averages commute.  These tests assert the
claim *bit-exactly* over randomized textures, sample positions and
footprints -- the strongest form of the paper's "our simulation results
also confirm the correctness of the output texture".
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.texture.lod import compute_footprint
from repro.texture.mipmap import build_mipmaps
from repro.texture.sampling import (
    anisotropic_first_sample,
    anisotropic_sample,
    trilinear_sample,
)
from repro.texture.texture import Texture


def chain_from_seed(seed: int, size: int = 32):
    rng = np.random.default_rng(seed)
    return build_mipmaps(
        Texture(texture_id=0, data=rng.random((size, size, 4)))
    )


footprints = st.builds(
    compute_footprint,
    st.floats(-16.0, 16.0),
    st.floats(-16.0, 16.0),
    st.floats(-16.0, 16.0),
    st.floats(-16.0, 16.0),
)


class TestReorderEquality:
    @settings(max_examples=150, deadline=None)
    @given(
        seed=st.integers(0, 31),
        u=st.floats(0.0, 32.0),
        v=st.floats(0.0, 32.0),
        footprint=footprints,
    )
    def test_reordered_equals_conventional(self, seed, u, v, footprint):
        chain = chain_from_seed(seed)
        conventional = anisotropic_sample(chain, footprint, u, v)
        reordered = anisotropic_first_sample(chain, footprint, u, v)
        np.testing.assert_allclose(reordered, conventional, rtol=0, atol=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(
        u=st.floats(0.0, 32.0),
        v=st.floats(0.0, 32.0),
        lod=st.floats(0.0, 4.0),
    )
    def test_isotropic_footprint_reduces_to_trilinear(self, u, v, lod):
        chain = chain_from_seed(7)
        minor = 2.0 ** lod
        footprint = compute_footprint(minor, 0.0, 0.0, minor)
        conventional = anisotropic_sample(chain, footprint, u, v)
        plain = trilinear_sample(chain, footprint.lod, u, v)
        np.testing.assert_allclose(conventional, plain, atol=1e-12)

    def test_equality_on_structured_texture(self):
        # A hard case: a high-contrast checker where any mis-weighting
        # of taps would be visible immediately.
        data = np.zeros((16, 16, 4))
        data[::2, ::2] = 1.0
        data[1::2, 1::2] = 1.0
        chain = build_mipmaps(Texture(texture_id=0, data=data))
        footprint = compute_footprint(8.0, 2.0, 0.5, 1.0)
        for u, v in [(3.1, 4.9), (0.0, 0.0), (15.99, 15.99), (7.5, 7.5)]:
            conventional = anisotropic_sample(chain, footprint, u, v)
            reordered = anisotropic_first_sample(chain, footprint, u, v)
            np.testing.assert_allclose(reordered, conventional, atol=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(0, 15),
        u=st.floats(0.0, 32.0),
        v=st.floats(0.0, 32.0),
        footprint=footprints,
    )
    def test_colors_stay_in_unit_range(self, seed, u, v, footprint):
        # Filtering is a convex combination: outputs can never leave the
        # input range.
        chain = chain_from_seed(seed)
        color = anisotropic_first_sample(chain, footprint, u, v)
        assert np.all(color >= -1e-12)
        assert np.all(color <= 1.0 + 1e-12)

    def test_parent_override_changes_output(self):
        # Sanity check that overrides are actually honoured: substituting
        # a stale parent value must change the result (this is what the
        # angle-threshold approximation does).
        chain = chain_from_seed(3)
        footprint = compute_footprint(4.0, 0.0, 0.0, 1.0)
        exact = anisotropic_first_sample(chain, footprint, 5.0, 5.0)
        from repro.texture.sampling import parent_texel_coords

        parents = parent_texel_coords(chain, footprint.lod, 5.0, 5.0)
        level, x, y, _ = parents[0]
        mip = chain.level(level)
        key = (level, x % mip.width, y % mip.height)
        overrides = {key: np.array([9.0, 9.0, 9.0, 9.0])}
        approximated = anisotropic_first_sample(
            chain, footprint, 5.0, 5.0, parent_overrides=overrides
        )
        assert not np.allclose(exact, approximated)
