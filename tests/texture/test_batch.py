"""Bit-identity tests: batched kernels vs the scalar oracle.

Every comparison here is ``np.array_equal`` -- exact, every bit -- not
``allclose``: the batch kernels promise the same IEEE-754 operations in
the same order as the scalar reference, and these tests are that
promise's enforcement, over edge UVs, wrap-around coordinates, clamped
LODs, single-level mip chains, and whole rendered frames.
"""

import numpy as np
import pytest

from repro.analysis.invariants import InvariantError, check_batch_scalar_parity
from repro.render.renderer import Renderer, SamplingMode
from repro.texture.batch import (
    BatchFetchRecorder,
    BatchSampler,
    RequestBatch,
    anisotropic_batch,
    bilinear_batch,
    isotropic_batch,
    level_blend_arrays,
    probe_offset_arrays,
)
from repro.texture.lod import compute_footprint
from repro.texture.mipmap import build_mipmaps
from repro.texture.sampling import (
    _FetchRecorder,
    anisotropic_sample,
    bilinear_sample,
    level_blend_for,
    probe_offsets,
    trilinear_sample,
)
from repro.texture.texture import Texture
from tests.conftest import make_tiny_scene


def make_chain(size=16, seed=5, texture_id=0):
    rng = np.random.default_rng(seed)
    data = rng.random((size, size, 4))
    return build_mipmaps(Texture(texture_id=texture_id, data=data))


def footprint(probes=4, lod=0.5, direction=(1.0, 0.0)):
    minor = 2.0 ** lod
    major = minor * probes
    du, dv = direction
    return compute_footprint(major * du, major * dv, -minor * dv, minor * du)


# Awkward sample positions for a 16x16 level-0 texture: corners, texel
# centres, exact wrap seams, beyond-width (wraps), and negative (wraps).
EDGE_UVS = [
    (0.0, 0.0),
    (0.5, 0.5),
    (15.5, 15.5),
    (16.0, 16.0),
    (17.3, 31.9),
    (-2.7, 5.1),
    (7.999999, 1e-06),
    (8.0, 8.0),
]

LODS = [0.0, 0.25, 1.0, 1.5, 2.0, 3.75, -1.0, 99.0]


class TestLevelBlendArrays:
    def test_matches_scalar_blend(self):
        chain = make_chain()
        low, high, weight = level_blend_arrays(chain, np.array(LODS))
        for i, lod in enumerate(LODS):
            blend = level_blend_for(chain, lod)
            assert low[i] == blend.level_low
            assert high[i] == blend.level_high
            assert weight[i] == blend.weight


class TestProbeOffsetArrays:
    @pytest.mark.parametrize("probes", [1, 2, 4, 8])
    def test_matches_scalar_offsets(self, probes):
        fp = footprint(probes=probes, lod=1.0, direction=(0.6, 0.8))
        for level in (0, 1, 2):
            scalar = probe_offsets(fp, level)
            levels = np.full(3, level, dtype=np.int64)
            for index in range(probes):
                dx, dy = probe_offset_arrays(
                    levels,
                    np.full(3, fp.major_du),
                    np.full(3, fp.major_dv),
                    np.full(3, fp.major_length),
                    probes,
                    index,
                )
                assert (dx == scalar[index][0]).all()
                assert (dy == scalar[index][1]).all()


class TestBilinearBatch:
    @pytest.mark.parametrize("level", [0, 1, 2, 4, 9])
    def test_bit_identical_over_edge_uvs(self, level):
        chain = make_chain()
        us = np.array([u for u, _ in EDGE_UVS])
        vs = np.array([v for _, v in EDGE_UVS])
        batch_colors = bilinear_batch(
            chain, np.full(len(us), level, dtype=np.int64), us, vs
        )
        scalar_colors = np.array(
            [bilinear_sample(chain, level, u, v) for u, v in EDGE_UVS]
        )
        assert np.array_equal(batch_colors, scalar_colors)

    def test_mixed_levels_one_call(self):
        chain = make_chain()
        levels = np.array([0, 1, 2, 3, 4, 0, 2, 1], dtype=np.int64)
        us = np.array([u for u, _ in EDGE_UVS])
        vs = np.array([v for _, v in EDGE_UVS])
        batch_colors = bilinear_batch(chain, levels, us, vs)
        scalar_colors = np.array(
            [
                bilinear_sample(chain, int(level), u, v)
                for level, (u, v) in zip(levels, EDGE_UVS)
            ]
        )
        assert np.array_equal(batch_colors, scalar_colors)


def _batch_of(footprints, uvs):
    return RequestBatch.from_footprints(
        footprints, [u for u, _ in uvs], [v for _, v in uvs]
    )


class TestTrilinearBatch:
    def test_bit_identical_over_lods_and_edge_uvs(self):
        chain = make_chain()
        cases = [(lod, uv) for lod in LODS for uv in EDGE_UVS]
        fps = [footprint(probes=1, lod=max(lod, 0.0)) for lod, _ in cases]
        # Force the exact LOD values (including negative/overflow).
        batch = _batch_of(fps, [uv for _, uv in cases])
        batch.lod[:] = [lod for lod, _ in cases]
        batch_colors = isotropic_batch(chain, batch)
        scalar_colors = np.array(
            [trilinear_sample(chain, lod, u, v) for lod, (u, v) in cases]
        )
        assert np.array_equal(batch_colors, scalar_colors)

    def test_single_level_chain(self):
        # A 1x1 texture has exactly one mip level: every LOD collapses
        # to a single-level blend and the high level must not exist.
        data = np.full((1, 1, 4), 0.625)
        chain = build_mipmaps(Texture(texture_id=0, data=data))
        assert chain.max_level == 0
        batch = _batch_of(
            [footprint(probes=1, lod=0.0)] * 3, [(0.0, 0.0), (0.5, 0.5), (3.2, -1.1)]
        )
        batch.lod[:] = [0.0, 0.75, 5.0]
        batch_colors = isotropic_batch(chain, batch)
        scalar_colors = np.array(
            [
                trilinear_sample(chain, lod, u, v)
                for lod, (u, v) in zip(
                    [0.0, 0.75, 5.0], [(0.0, 0.0), (0.5, 0.5), (3.2, -1.1)]
                )
            ]
        )
        assert np.array_equal(batch_colors, scalar_colors)


class TestAnisotropicBatch:
    def test_bit_identical_mixed_probe_counts(self):
        chain = make_chain(64)
        directions = [(1.0, 0.0), (0.0, 1.0), (0.6, 0.8), (-0.8, 0.6)]
        fps, uvs = [], []
        for probes in (1, 2, 4, 8):
            for lod in (0.0, 0.5, 1.5, 2.0):
                for direction in directions:
                    fps.append(
                        footprint(probes=probes, lod=lod, direction=direction)
                    )
                    uvs.append(EDGE_UVS[len(fps) % len(EDGE_UVS)])
        batch = _batch_of(fps, uvs)
        batch_colors = anisotropic_batch(chain, batch)
        scalar_colors = np.array(
            [anisotropic_sample(chain, fp, u, v) for fp, (u, v) in zip(fps, uvs)]
        )
        assert np.array_equal(batch_colors, scalar_colors)

    def test_recorder_fetch_sets_match_scalar(self):
        chain = make_chain(64)
        fps = [
            footprint(probes=probes, lod=lod)
            for probes in (1, 2, 4)
            for lod in (0.25, 1.5)
        ]
        uvs = EDGE_UVS[: len(fps)]
        batch = _batch_of(fps, uvs)
        recorder = BatchFetchRecorder()
        anisotropic_batch(chain, batch, recorder=recorder)
        texels = recorder.request_texels()
        counts = recorder.request_counts()
        for index, (fp, (u, v)) in enumerate(zip(fps, uvs)):
            scalar_recorder = _FetchRecorder()
            anisotropic_sample(chain, fp, u, v, recorder=scalar_recorder)
            assert set(texels[index]) == set(scalar_recorder.texels)
            assert counts[index] == len(scalar_recorder.texels)


class TestBatchSampler:
    def test_verify_against_scalar_passes(self):
        chain = make_chain(64)
        fps = [footprint(probes=p, lod=l) for p in (1, 4) for l in (0.0, 1.25)]
        batch = _batch_of(fps, EDGE_UVS[: len(fps)])
        sampler = BatchSampler(chain)
        sampler.verify_against_scalar(batch)
        sampler.verify_against_scalar(batch, isotropic=True)

    def test_parity_check_rejects_divergence(self):
        color = np.array([0.1, 0.2, 0.3, 1.0])
        wrong = np.array([0.1, 0.2, 0.30000000000000004, 1.0])
        texels = frozenset({(0, 1, 1)})
        with pytest.raises(InvariantError):
            check_batch_scalar_parity([(0, color, wrong, texels, texels)])
        with pytest.raises(InvariantError):
            check_batch_scalar_parity(
                [(0, color, color, texels, frozenset({(0, 2, 2)}))]
            )
        check_batch_scalar_parity([(0, color, color, texels, texels)])


class TestVectorizedRaster:
    def test_fragments_identical_to_scalar_path(self):
        scene, camera = make_tiny_scene()
        scalar = Renderer(width=48, height=36, tile_size=4, max_anisotropy=8)
        scalar.rasterizer.vectorized = False
        vector = Renderer(width=48, height=36, tile_size=4, max_anisotropy=8)
        scalar_out = scalar.trace_only(scene, camera)
        vector_out = vector.trace_only(scene, camera)
        assert scalar_out.trace.requests == vector_out.trace.requests
        assert np.array_equal(
            scalar_out.framebuffer.depth, vector_out.framebuffer.depth
        )
        assert scalar_out.raster_stats == vector_out.raster_stats


class TestBatchedRenderer:
    @pytest.mark.parametrize(
        "mode", [SamplingMode.EXACT, SamplingMode.ISOTROPIC]
    )
    def test_frame_identical_to_scalar_shading(self, mode):
        scene, camera = make_tiny_scene()
        batched = Renderer(width=48, height=36, tile_size=4, max_anisotropy=8)
        scalar = Renderer(
            width=48, height=36, tile_size=4, max_anisotropy=8,
            batch_sampling=False,
        )
        batched_image = batched.render(scene, camera, mode).image
        scalar_image = scalar.render(scene, camera, mode).image
        assert np.array_equal(batched_image, scalar_image)
