"""Tests for the Texture object."""

import numpy as np
import pytest

from repro.texture.texture import Texture


def make_data(height=8, width=8):
    rng = np.random.default_rng(1)
    return rng.random((height, width, 4))


class TestTexture:
    def test_dimensions(self):
        texture = Texture(texture_id=0, data=make_data(16, 32))
        assert texture.width == 32
        assert texture.height == 16

    def test_size_bytes(self):
        texture = Texture(texture_id=0, data=make_data(8, 8))
        assert texture.size_bytes == 8 * 8 * 4

    def test_wrap_addressing(self):
        texture = Texture(texture_id=0, data=make_data())
        assert np.array_equal(texture.texel(8, 8), texture.texel(0, 0))
        assert np.array_equal(texture.texel(-1, -1), texture.texel(7, 7))

    def test_vectorised_gather_matches_scalar(self):
        texture = Texture(texture_id=0, data=make_data())
        xs = np.array([0, 5, 9, -1])
        ys = np.array([3, 7, -2, 12])
        gathered = texture.texels_wrapped(xs, ys)
        for index in range(len(xs)):
            assert np.array_equal(
                gathered[index], texture.texel(int(xs[index]), int(ys[index]))
            )

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            Texture(texture_id=0, data=make_data(7, 8))

    def test_wrong_channel_count_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            Texture(texture_id=0, data=rng.random((8, 8, 3)))

    def test_out_of_range_values_rejected(self):
        data = make_data()
        data[0, 0, 0] = 1.5
        with pytest.raises(ValueError):
            Texture(texture_id=0, data=data)
