"""Property-based tests: the texture cache against a reference model.

A miniature reference implementation (plain dict + recency list) checks
the set-associative LRU cache over arbitrary access sequences generated
by hypothesis -- the classic model-based test for replacement policies.
"""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.texture.cache import CacheAccessResult, CacheConfig, TextureCache

LINE = 64
ASSOC = 2
SETS = 2
CONFIG = CacheConfig(
    size_bytes=LINE * ASSOC * SETS, line_bytes=LINE, associativity=ASSOC
)


class ReferenceCache:
    """Trivially correct set-associative LRU model."""

    def __init__(self) -> None:
        self.sets = {index: OrderedDict() for index in range(SETS)}

    def access(self, address: int) -> bool:
        line = address // LINE
        set_index = line % SETS
        tag = line // SETS
        cache_set = self.sets[set_index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            return True
        if len(cache_set) >= ASSOC:
            cache_set.popitem(last=False)
        cache_set[tag] = None
        return False


addresses = st.integers(min_value=0, max_value=LINE * 64 - 1)


class TestCacheAgainstReference:
    @settings(max_examples=200, deadline=None)
    @given(sequence=st.lists(addresses, min_size=1, max_size=200))
    def test_hit_miss_sequence_matches_reference(self, sequence):
        cache = TextureCache(CONFIG)
        reference = ReferenceCache()
        for address in sequence:
            expected_hit = reference.access(address)
            result = cache.lookup(address)
            assert result.is_hit == expected_hit, (
                f"divergence at address {address}"
            )

    @settings(max_examples=100, deadline=None)
    @given(sequence=st.lists(addresses, min_size=1, max_size=100))
    def test_counters_consistent(self, sequence):
        cache = TextureCache(CONFIG)
        for address in sequence:
            cache.lookup(address)
        assert cache.hits + cache.misses == len(sequence)
        assert 0.0 <= cache.hit_rate() <= 1.0
        assert cache.hit_rate() + cache.miss_rate() == 1.0

    @settings(max_examples=100, deadline=None)
    @given(sequence=st.lists(addresses, min_size=1, max_size=100))
    def test_contains_agrees_with_next_lookup(self, sequence):
        cache = TextureCache(CONFIG)
        for address in sequence:
            present = cache.contains(address)
            result = cache.lookup(address)
            assert result.is_hit == present

    @settings(max_examples=50, deadline=None)
    @given(
        sequence=st.lists(addresses, min_size=1, max_size=50),
        angle_a=st.floats(0.0, 1.5),
        angle_b=st.floats(0.0, 1.5),
        threshold=st.floats(0.0, 1.6),
    )
    def test_angle_policy_never_misclassifies_presence(
        self, sequence, angle_a, angle_b, threshold
    ):
        """An angle mismatch may force recalculation, but only on lines
        that are actually present (ANGLE_MISS never replaces MISS)."""
        cache = TextureCache(CONFIG)
        reference = ReferenceCache()
        for index, address in enumerate(sequence):
            angle = angle_a if index % 2 == 0 else angle_b
            expected_present = reference.access(address)
            result = cache.lookup(address, angle=angle, angle_threshold=threshold)
            if result is CacheAccessResult.MISS:
                assert not expected_present
            else:
                assert expected_present
