"""Tests for the texture caches and the angle-tag policy."""

import math

import pytest

from repro.texture.cache import CacheAccessResult, CacheConfig, TextureCache


def make_cache(size=1024, assoc=4, line=64):
    return TextureCache(CacheConfig(size_bytes=size, associativity=assoc,
                                    line_bytes=line))


class TestCacheConfig:
    def test_table1_l1_geometry(self):
        config = CacheConfig(size_bytes=16 * 1024, associativity=16)
        assert config.num_lines == 256
        assert config.num_sets == 16

    def test_angle_storage_matches_paper(self):
        # Section VII-E: 0.21 KB per 16KB L1, 1.75 KB per 128KB L2.
        l1 = CacheConfig(size_bytes=16 * 1024)
        l2 = CacheConfig(size_bytes=128 * 1024)
        assert l1.angle_storage_bytes / 1024 == pytest.approx(0.21, abs=0.02)
        assert l2.angle_storage_bytes / 1024 == pytest.approx(1.75, abs=0.01)

    def test_angle_storage_is_whole_bytes(self):
        # Storage is allocated in bytes: 256 lines x 7 bits = 1792 bits
        # divides evenly (224 B), but a geometry that does not must
        # round up rather than report a fractional byte count.
        exact = CacheConfig(size_bytes=16 * 1024)
        assert exact.angle_storage_bytes == 224
        assert isinstance(exact.angle_storage_bytes, int)
        ragged = CacheConfig(
            size_bytes=768, line_bytes=64, associativity=4
        )
        assert ragged.num_lines == 12  # 84 bits -> 10.5 B, ceil to 11
        assert ragged.angle_storage_bytes == 11
        assert isinstance(ragged.angle_storage_bytes, int)

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=64, associativity=16)


class TestBasicCaching:
    def test_first_access_misses_then_hits(self):
        cache = make_cache()
        assert cache.lookup(0) is CacheAccessResult.MISS
        assert cache.lookup(0) is CacheAccessResult.HIT

    def test_same_line_shares_entry(self):
        cache = make_cache()
        cache.lookup(0)
        assert cache.lookup(63) is CacheAccessResult.HIT
        assert cache.lookup(64) is CacheAccessResult.MISS

    def test_lru_eviction(self):
        cache = make_cache(size=4 * 64, assoc=4)  # one set of 4 lines
        for index in range(4):
            cache.lookup(index * 64)
        cache.lookup(0)          # refresh line 0
        cache.lookup(4 * 64)     # evicts line 1 (LRU)
        assert cache.lookup(0) is CacheAccessResult.HIT
        assert cache.lookup(64) is CacheAccessResult.MISS

    def test_sets_isolate_addresses(self):
        cache = make_cache(size=8 * 64, assoc=4)  # 2 sets
        # Fill set 0 beyond capacity; set 1 lines must survive.
        cache.lookup(64)  # set 1
        for index in range(8):
            cache.lookup(index * 2 * 64)  # all map to set 0
        assert cache.lookup(64) is CacheAccessResult.HIT

    def test_hit_and_miss_rates(self):
        cache = make_cache()
        cache.lookup(0)
        cache.lookup(0)
        cache.lookup(64)
        assert cache.hit_rate() == pytest.approx(1.0 / 3.0)
        assert cache.miss_rate() == pytest.approx(2.0 / 3.0)

    def test_contains_is_side_effect_free(self):
        cache = make_cache()
        cache.lookup(0)
        hits_before = cache.hits
        assert cache.contains(0)
        assert not cache.contains(4096)
        assert cache.hits == hits_before

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            make_cache().lookup(-1)

    def test_reset_clears_contents(self):
        cache = make_cache()
        cache.lookup(0)
        cache.reset()
        assert cache.lookup(0) is CacheAccessResult.MISS

    def test_reset_counters_keeps_contents(self):
        cache = make_cache()
        cache.lookup(0)
        cache.reset_counters()
        assert cache.hits == 0
        assert cache.lookup(0) is CacheAccessResult.HIT


class TestAngleTagging:
    def test_same_angle_reuses(self):
        cache = make_cache()
        threshold = 0.01 * math.pi
        cache.lookup(0, angle=0.3, angle_threshold=threshold)
        assert (
            cache.lookup(0, angle=0.3, angle_threshold=threshold)
            is CacheAccessResult.HIT
        )

    def test_angle_within_threshold_reuses(self):
        cache = make_cache()
        threshold = 0.05 * math.pi
        cache.lookup(0, angle=0.30, angle_threshold=threshold)
        assert (
            cache.lookup(0, angle=0.32, angle_threshold=threshold)
            is CacheAccessResult.HIT
        )

    def test_angle_beyond_threshold_recalculates(self):
        cache = make_cache()
        threshold = 0.01 * math.pi
        cache.lookup(0, angle=0.1, angle_threshold=threshold)
        result = cache.lookup(0, angle=0.8, angle_threshold=threshold)
        assert result is CacheAccessResult.ANGLE_MISS
        assert cache.angle_misses == 1

    def test_angle_miss_updates_stored_angle(self):
        cache = make_cache()
        threshold = 0.01 * math.pi
        cache.lookup(0, angle=0.1, angle_threshold=threshold)
        cache.lookup(0, angle=0.8, angle_threshold=threshold)  # recalc
        # Now the stored angle is 0.8: reuse succeeds.
        assert (
            cache.lookup(0, angle=0.8, angle_threshold=threshold)
            is CacheAccessResult.HIT
        )

    def test_plain_lookup_after_angled_fill(self):
        cache = make_cache()
        cache.lookup(0, angle=0.1, angle_threshold=0.05)
        assert cache.lookup(0) is CacheAccessResult.HIT

    def test_angled_lookup_after_plain_fill_recalculates(self):
        # A line cached without an angle cannot satisfy an angle-checked
        # parent-texel fetch.
        cache = make_cache()
        cache.lookup(0)
        result = cache.lookup(0, angle=0.3, angle_threshold=0.05)
        assert result is CacheAccessResult.ANGLE_MISS

    def test_looser_threshold_fewer_recalcs(self):
        angles = [0.05 * index for index in range(20)]
        strict = make_cache()
        loose = make_cache()
        for angle in angles:
            strict.lookup(0, angle=angle, angle_threshold=0.01)
            loose.lookup(0, angle=angle, angle_threshold=1.0)
        assert loose.angle_misses < strict.angle_misses

    def test_quantisation_applied_to_stored_angle(self):
        cache = make_cache()
        # Two angles closer than half a quantisation step are identical
        # after quantisation, so they always reuse even at threshold 0.
        step = (math.pi / 2) / 127
        cache.lookup(0, angle=10 * step, angle_threshold=0.0)
        result = cache.lookup(0, angle=10 * step + step / 8, angle_threshold=0.0)
        assert result is CacheAccessResult.HIT
