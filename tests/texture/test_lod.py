"""Tests for LOD / anisotropy footprint computation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.texture.lod import (
    camera_angle_from_normal,
    compute_footprint,
    quantize_angle,
)


class TestComputeFootprint:
    def test_isotropic_unit_footprint(self):
        fp = compute_footprint(1.0, 0.0, 0.0, 1.0)
        assert fp.anisotropy == pytest.approx(1.0)
        assert fp.probes == 1
        assert fp.lod == pytest.approx(0.0)

    def test_minification_raises_lod(self):
        fp = compute_footprint(4.0, 0.0, 0.0, 4.0)
        assert fp.lod == pytest.approx(2.0)

    def test_anisotropic_ratio(self):
        fp = compute_footprint(8.0, 0.0, 0.0, 1.0)
        assert fp.anisotropy == pytest.approx(8.0)
        assert fp.probes == 8

    def test_probe_count_rounds_up_to_power_of_two(self):
        fp = compute_footprint(3.0, 0.0, 0.0, 1.0)
        assert fp.probes == 4

    def test_max_anisotropy_clamps(self):
        fp = compute_footprint(64.0, 0.0, 0.0, 1.0, max_anisotropy=4)
        assert fp.anisotropy == 4.0
        assert fp.probes == 4

    def test_lod_uses_minor_axis(self):
        # Major 8, minor 1: anisotropic filtering samples the fine mip.
        fp = compute_footprint(8.0, 0.0, 0.0, 1.0)
        assert fp.lod == pytest.approx(0.0)

    def test_major_axis_direction(self):
        fp = compute_footprint(0.0, 8.0, 1.0, 0.0)
        # x-derivative is (0, 8): major axis along v.
        assert abs(fp.major_dv) == pytest.approx(1.0)
        assert abs(fp.major_du) == pytest.approx(0.0)

    def test_major_length(self):
        fp = compute_footprint(6.0, 0.0, 0.0, 2.0)
        assert fp.major_length == pytest.approx(6.0)

    def test_lod_bias_shifts_lod(self):
        plain = compute_footprint(4.0, 0.0, 0.0, 4.0)
        biased = compute_footprint(4.0, 0.0, 0.0, 4.0, lod_bias=-1.0)
        assert biased.lod == pytest.approx(plain.lod - 1.0)

    def test_lod_never_negative(self):
        fp = compute_footprint(0.25, 0.0, 0.0, 0.25)
        assert fp.lod == 0.0

    def test_degenerate_footprint(self):
        fp = compute_footprint(0.0, 0.0, 0.0, 0.0)
        assert fp.probes == 1
        assert fp.anisotropy == 1.0

    def test_invalid_max_anisotropy(self):
        with pytest.raises(ValueError):
            compute_footprint(1.0, 0.0, 0.0, 1.0, max_anisotropy=0)

    @given(
        dudx=st.floats(-32, 32),
        dvdx=st.floats(-32, 32),
        dudy=st.floats(-32, 32),
        dvdy=st.floats(-32, 32),
    )
    def test_invariants_hold_for_any_derivatives(self, dudx, dvdx, dudy, dvdy):
        fp = compute_footprint(dudx, dvdx, dudy, dvdy)
        assert 1.0 <= fp.anisotropy <= 16.0
        assert fp.probes in (1, 2, 4, 8, 16)
        assert fp.probes >= fp.anisotropy or fp.probes == 16
        assert fp.lod >= 0.0
        assert fp.major_length >= 0.0

    @given(scale=st.floats(0.1, 16.0))
    def test_anisotropy_is_scale_invariant(self, scale):
        base = compute_footprint(8.0, 0.0, 0.0, 1.0)
        scaled = compute_footprint(8.0 * scale, 0.0, 0.0, 1.0 * scale)
        assert scaled.anisotropy == pytest.approx(base.anisotropy)


class TestCameraAngle:
    def test_face_on_is_zero(self):
        assert camera_angle_from_normal(0, 0, 1, 0, 0, 1) == pytest.approx(0.0)

    def test_grazing_approaches_half_pi(self):
        angle = camera_angle_from_normal(0, 1, 0, 1, 0.01, 0)
        assert angle > math.pi / 2 - 0.02

    def test_sign_insensitive(self):
        front = camera_angle_from_normal(0, 0, 1, 0, 0, 1)
        back = camera_angle_from_normal(0, 0, -1, 0, 0, 1)
        assert front == pytest.approx(back)

    def test_unnormalised_inputs_ok(self):
        a = camera_angle_from_normal(0, 0, 2, 3, 0, 3)
        b = camera_angle_from_normal(0, 0, 1, 1, 0, 1)
        assert a == pytest.approx(b)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            camera_angle_from_normal(0, 0, 0, 1, 0, 0)


class TestQuantizeAngle:
    def test_zero_stays_zero(self):
        assert quantize_angle(0.0) == 0.0

    def test_seven_bits_give_degree_accuracy(self):
        # Section VII-E: 7 bits quantise 90 degrees into 127 steps.
        step = (math.pi / 2) / 127
        angle = 10 * step + step / 4
        assert quantize_angle(angle) == pytest.approx(10 * step)

    def test_clamps_to_half_pi(self):
        assert quantize_angle(3.0) == pytest.approx(math.pi / 2)

    def test_idempotent(self):
        value = quantize_angle(0.3)
        assert quantize_angle(value) == pytest.approx(value)

    @given(angle=st.floats(0, math.pi / 2))
    def test_error_bounded_by_half_step(self, angle):
        step = (math.pi / 2) / 127
        assert abs(quantize_angle(angle) - angle) <= step / 2 + 1e-12

    def test_step_matches_documented_resolution(self):
        # The docstring's arithmetic: the [0, pi/2] range is divided into
        # 2**7 - 1 steps of 90/(2**7 - 1) ~= 0.71 degrees, so worst-case
        # rounding error is ~0.35 degrees -- inside the paper's ~1-degree
        # budget (and finer than a naive 180/2**7 reading would suggest).
        step_degrees = 90.0 / ((1 << 7) - 1)
        assert step_degrees == pytest.approx(0.7087, abs=1e-4)
        worst_error_degrees = step_degrees / 2
        assert worst_error_degrees == pytest.approx(0.3543, abs=1e-4)
        assert worst_error_degrees < 1.0
        step = math.radians(step_degrees)
        assert quantize_angle(7 * step + 0.45 * step) == pytest.approx(7 * step)

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize_angle(-0.1)
        with pytest.raises(ValueError):
            quantize_angle(0.1, bits=0)
