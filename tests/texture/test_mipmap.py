"""Tests for mipmap chain construction."""

import numpy as np
import pytest

from repro.texture.mipmap import MipmapChain, build_mipmaps, downsample_box
from repro.texture.texture import Texture


def make_texture(height=16, width=16, texture_id=0):
    rng = np.random.default_rng(2)
    return Texture(texture_id=texture_id, data=rng.random((height, width, 4)))


class TestDownsampleBox:
    def test_halves_dimensions(self):
        image = np.ones((8, 8, 4))
        assert downsample_box(image).shape == (4, 4, 4)

    def test_preserves_mean(self):
        rng = np.random.default_rng(3)
        image = rng.random((16, 16, 4))
        down = downsample_box(image)
        assert np.mean(down) == pytest.approx(np.mean(image))

    def test_box_average_exact(self):
        image = np.zeros((2, 2, 4))
        image[0, 0] = 1.0
        down = downsample_box(image)
        assert down[0, 0, 0] == pytest.approx(0.25)

    def test_one_dimensional_strip(self):
        image = np.ones((1, 8, 4))
        down = downsample_box(image)
        assert down.shape == (1, 4, 4)

    def test_cannot_downsample_1x1(self):
        with pytest.raises(ValueError):
            downsample_box(np.ones((1, 1, 4)))


class TestBuildMipmaps:
    def test_chain_length(self):
        chain = build_mipmaps(make_texture(16, 16))
        # 16 -> 8 -> 4 -> 2 -> 1: five levels.
        assert chain.num_levels == 5
        assert chain.max_level == 4

    def test_level_zero_is_original(self):
        texture = make_texture()
        chain = build_mipmaps(texture)
        assert chain.level(0).data is texture.data

    def test_last_level_is_1x1(self):
        chain = build_mipmaps(make_texture(16, 16))
        last = chain.levels[-1]
        assert last.width == 1 and last.height == 1

    def test_level_clamping(self):
        chain = build_mipmaps(make_texture())
        assert chain.level(-5).level == 0
        assert chain.level(99).level == chain.max_level

    def test_byte_offsets_monotone_and_disjoint(self):
        chain = build_mipmaps(make_texture(16, 16))
        for earlier, later in zip(chain.levels, chain.levels[1:]):
            size = earlier.width * earlier.height * 4
            assert later.byte_offset == earlier.byte_offset + size

    def test_total_bytes_is_geometric_sum(self):
        chain = build_mipmaps(make_texture(16, 16))
        expected = sum(
            level.width * level.height * 4 for level in chain.levels
        )
        assert chain.total_bytes == expected

    def test_non_square(self):
        chain = build_mipmaps(make_texture(4, 16))
        shapes = [(lvl.height, lvl.width) for lvl in chain.levels]
        assert shapes[0] == (4, 16)
        assert shapes[-1] == (1, 1)

    def test_each_level_preserves_mean(self):
        chain = build_mipmaps(make_texture(32, 32))
        mean0 = float(np.mean(chain.level(0).data))
        for level in chain.levels:
            assert float(np.mean(level.data)) == pytest.approx(mean0)
