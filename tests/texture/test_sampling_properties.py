"""Property-based tests for the filtering math (beyond reorder equality)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.texture.lod import compute_footprint
from repro.texture.mipmap import build_mipmaps
from repro.texture.sampling import (
    anisotropic_sample,
    bilinear_taps,
    parent_texel_coords,
    probe_offsets,
    trilinear_sample,
)
from repro.texture.texture import Texture


def chain_from_seed(seed: int, size: int = 16):
    rng = np.random.default_rng(seed)
    return build_mipmaps(Texture(texture_id=0, data=rng.random((size, size, 4))))


footprints = st.builds(
    compute_footprint,
    st.floats(-12.0, 12.0),
    st.floats(-12.0, 12.0),
    st.floats(-12.0, 12.0),
    st.floats(-12.0, 12.0),
)


class TestConvexity:
    @settings(max_examples=100, deadline=None)
    @given(
        seed=st.integers(0, 7),
        u=st.floats(0.0, 16.0),
        v=st.floats(0.0, 16.0),
        footprint=footprints,
    )
    def test_filtered_color_within_texture_range(self, seed, u, v, footprint):
        """Filtering is a convex combination of texels: per channel, the
        result stays within the mip chain's min/max."""
        chain = chain_from_seed(seed)
        lows = np.min(
            [level.data.min(axis=(0, 1)) for level in chain.levels], axis=0
        )
        highs = np.max(
            [level.data.max(axis=(0, 1)) for level in chain.levels], axis=0
        )
        color = anisotropic_sample(chain, footprint, u, v)
        assert np.all(color >= lows - 1e-9)
        assert np.all(color <= highs + 1e-9)

    @settings(max_examples=60, deadline=None)
    @given(
        u=st.floats(0.0, 16.0),
        v=st.floats(0.0, 16.0),
        lod=st.floats(0.0, 4.0),
        value=st.floats(0.0, 1.0),
    )
    def test_constant_texture_fixed_point(self, u, v, lod, value):
        """Every filter is the identity on a constant texture."""
        data = np.full((16, 16, 4), value)
        chain = build_mipmaps(Texture(texture_id=0, data=data))
        color = trilinear_sample(chain, lod, u, v)
        np.testing.assert_allclose(color, value, atol=1e-12)


class TestTapAndCoordinateProperties:
    @settings(max_examples=100, deadline=None)
    @given(u=st.floats(-32.0, 32.0), v=st.floats(-32.0, 32.0))
    def test_bilinear_weights_partition_unity(self, u, v):
        taps = bilinear_taps(16, 16, u, v)
        assert abs(sum(tap.weight for tap in taps) - 1.0) < 1e-9
        assert all(tap.weight >= -1e-12 for tap in taps)

    @settings(max_examples=100, deadline=None)
    @given(
        seed=st.integers(0, 7),
        u=st.floats(0.0, 16.0),
        v=st.floats(0.0, 16.0),
        lod=st.floats(0.0, 5.0),
    )
    def test_parent_weights_partition_unity(self, seed, u, v, lod):
        chain = chain_from_seed(seed)
        parents = parent_texel_coords(chain, lod, u, v)
        assert abs(sum(weight for *_, weight in parents) - 1.0) < 1e-9
        assert len(parents) in (4, 8)

    @settings(max_examples=100, deadline=None)
    @given(footprint=footprints, level=st.integers(0, 4))
    def test_probe_offsets_count_and_symmetry(self, footprint, level):
        offsets = probe_offsets(footprint, level)
        assert len(offsets) == footprint.probes
        assert sum(dx for dx, _ in offsets) == 0
        assert sum(dy for _, dy in offsets) == 0

    @settings(max_examples=60, deadline=None)
    @given(footprint=footprints)
    def test_probe_span_bounded_by_major_axis(self, footprint):
        """Probes never spread beyond the footprint's major axis length
        (in level-0 texels, allowing rounding slack)."""
        offsets = probe_offsets(footprint, 0)
        span = max(
            (dx * dx + dy * dy) ** 0.5 for dx, dy in offsets
        )
        assert span <= footprint.major_length / 2.0 + 1.0
