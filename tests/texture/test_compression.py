"""Tests for the fixed-rate block texture codec."""

import numpy as np
import pytest

from repro.quality import psnr
from repro.texture.compression import (
    BLOCK,
    COMPRESSION_RATIO,
    CompressionStats,
    compress_image,
    compressed_line_bytes,
    decode_block,
    encode_block,
)


def make_image(seed=0, size=32):
    rng = np.random.default_rng(seed)
    image = rng.random((size, size, 4))
    image[:, :, 3] = 1.0
    return image


class TestBlockCodec:
    def test_constant_block_roundtrips_exactly(self):
        block = np.full((BLOCK, BLOCK, 4), 0.3)
        low, high, indices = encode_block(block)
        decoded = decode_block(low, high, indices)
        np.testing.assert_allclose(decoded, block, atol=1e-12)

    def test_two_tone_block_roundtrips_exactly(self):
        block = np.zeros((BLOCK, BLOCK, 4))
        block[::2, :, :] = 1.0
        low, high, indices = encode_block(block)
        decoded = decode_block(low, high, indices)
        np.testing.assert_allclose(decoded, block, atol=1e-9)

    def test_gradient_block_bounded_error(self):
        block = np.linspace(0, 1, BLOCK * BLOCK).reshape(BLOCK, BLOCK, 1)
        block = np.repeat(block, 4, axis=2)
        low, high, indices = encode_block(block)
        decoded = decode_block(low, high, indices)
        # Four levels across [0,1]: error bounded by half a step.
        assert np.abs(decoded - block).max() <= 0.5 / 3 + 1e-9

    def test_indices_within_levels(self):
        _, _, indices = encode_block(make_image(size=BLOCK)[:BLOCK, :BLOCK])
        assert indices.max() <= 3
        assert indices.min() >= 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            encode_block(np.zeros((2, 2, 4)))
        with pytest.raises(ValueError):
            decode_block(np.zeros(4), np.ones(4), np.zeros(4, dtype=np.uint8))


class TestCompressImage:
    def test_fixed_ratio(self):
        _, stats = compress_image(make_image())
        assert stats.ratio == pytest.approx(COMPRESSION_RATIO)
        assert COMPRESSION_RATIO == 4.0

    def test_lossy_but_high_quality(self):
        image = make_image()
        reconstructed, _ = compress_image(image)
        value = psnr(image, reconstructed)
        assert 10.0 < value < 99.0  # lossy (random noise is the worst case)

    def test_smooth_image_compresses_well(self):
        u = np.linspace(0, 1, 32)
        gx, gy = np.meshgrid(u, u)
        smooth = np.stack([gx, gy, np.outer(u, u), np.ones((32, 32))], axis=-1)
        reconstructed, _ = compress_image(smooth)
        assert psnr(smooth, reconstructed) > 25.0

    def test_output_in_range(self):
        reconstructed, _ = compress_image(make_image())
        assert reconstructed.min() >= 0.0
        assert reconstructed.max() <= 1.0

    def test_deterministic(self):
        image = make_image(3)
        a, _ = compress_image(image)
        b, _ = compress_image(image)
        np.testing.assert_array_equal(a, b)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            compress_image(np.zeros((30, 32, 4)))
        with pytest.raises(ValueError):
            compress_image(np.zeros((32, 32, 3)))


class TestTrafficModel:
    def test_compressed_line_bytes(self):
        assert compressed_line_bytes(64) == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            compressed_line_bytes(0)
