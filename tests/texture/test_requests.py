"""Tests for trace record types."""

import pytest

from repro.texture.lod import compute_footprint
from repro.texture.requests import FragmentTrace, TexelFetch, TextureRequest


def make_request(tile_x=0, tile_y=0, texture_id=0):
    return TextureRequest(
        pixel_x=1,
        pixel_y=2,
        texture_id=texture_id,
        u=3.0,
        v=4.0,
        footprint=compute_footprint(1.0, 0.0, 0.0, 1.0),
        camera_angle=0.5,
        tile_x=tile_x,
        tile_y=tile_y,
    )


class TestTextureRequest:
    def test_construction(self):
        request = make_request()
        assert request.footprint.probes == 1

    def test_negative_texture_id_rejected(self):
        with pytest.raises(ValueError):
            make_request(texture_id=-1)

    def test_negative_angle_rejected(self):
        with pytest.raises(ValueError):
            TextureRequest(
                pixel_x=0, pixel_y=0, texture_id=0, u=0, v=0,
                footprint=compute_footprint(1, 0, 0, 1), camera_angle=-0.1,
            )


class TestTexelFetch:
    def test_construction(self):
        fetch = TexelFetch(texture_id=0, level=2, x=3, y=4, address=128)
        assert fetch.level == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TexelFetch(texture_id=0, level=-1, x=0, y=0, address=0)
        with pytest.raises(ValueError):
            TexelFetch(texture_id=0, level=0, x=0, y=0, address=-1)


class TestFragmentTrace:
    def test_counts(self):
        trace = FragmentTrace(width=8, height=8, requests=[make_request()] * 3)
        assert trace.num_fragments == 3

    def test_requests_by_tile(self):
        requests = [make_request(tile_x=1, tile_y=2)]
        trace = FragmentTrace(width=64, height=64, requests=requests)
        pairs = trace.requests_by_tile(tiles_x=4)
        assert pairs[0][0] == 2 * 4 + 1

    def test_default_tile_size(self):
        trace = FragmentTrace(width=8, height=8, requests=[])
        assert trace.tile_size == 16
