"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.texture.traceio import load_trace, save_trace


class TestTraceIO:
    def test_roundtrip_preserves_everything(self, tiny_trace, tmp_path):
        _, trace = tiny_trace
        path = save_trace(trace, tmp_path / "frame.npz")
        loaded = load_trace(path)
        assert loaded.width == trace.width
        assert loaded.height == trace.height
        assert loaded.tile_size == trace.tile_size
        assert loaded.num_fragments == trace.num_fragments
        for original, restored in zip(trace.requests, loaded.requests):
            assert restored == original

    def test_roundtrip_drives_identical_simulation(self, tiny_trace, tmp_path,
                                                   fast_workload):
        from repro.core import Design, simulate_frame

        scene, trace = tiny_trace
        path = save_trace(trace, tmp_path / "frame.npz")
        loaded = load_trace(path)
        config = fast_workload.design_config(Design.BASELINE)
        direct = simulate_frame(scene, trace, config)
        replayed = simulate_frame(scene, loaded, config)
        assert replayed.frame.frame_cycles == direct.frame.frame_cycles
        assert replayed.frame.traffic.external_texture == (
            direct.frame.traffic.external_texture
        )

    def test_suffix_appended(self, tiny_trace, tmp_path):
        _, trace = tiny_trace
        path = save_trace(trace, tmp_path / "frame")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_empty_trace_roundtrips(self, tmp_path):
        from repro.texture.requests import FragmentTrace

        trace = FragmentTrace(width=4, height=4, requests=[], tile_size=2)
        path = save_trace(trace, tmp_path / "empty.npz")
        loaded = load_trace(path)
        assert loaded.num_fragments == 0
        assert loaded.tile_size == 2

    def test_version_check(self, tiny_trace, tmp_path):
        _, trace = tiny_trace
        path = save_trace(trace, tmp_path / "frame.npz")
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["version"] = np.array([99])
        np.savez(tmp_path / "bad.npz", **arrays)
        with pytest.raises(ValueError):
            load_trace(tmp_path / "bad.npz")
