"""Tests for texel address mapping."""

import numpy as np
import pytest

from repro.texture.address import TexelAddressMap, TextureLayout
from repro.texture.mipmap import build_mipmaps
from repro.texture.texture import Texture


def make_chain(size=16, texture_id=0):
    rng = np.random.default_rng(4)
    return build_mipmaps(
        Texture(texture_id=texture_id, data=rng.random((size, size, 4)))
    )


class TestTexelAddressMap:
    def test_addresses_unique_within_level(self):
        chain = make_chain(16)
        address_map = TexelAddressMap()
        addresses = {
            address_map.texel_address(chain, 0, x, y)
            for x in range(16)
            for y in range(16)
        }
        assert len(addresses) == 256

    def test_row_major_unique_too(self):
        chain = make_chain(16)
        address_map = TexelAddressMap(layout=TextureLayout.ROW_MAJOR)
        addresses = {
            address_map.texel_address(chain, 0, x, y)
            for x in range(16)
            for y in range(16)
        }
        assert len(addresses) == 256

    def test_levels_do_not_overlap(self):
        chain = make_chain(16)
        address_map = TexelAddressMap()
        level0 = {
            address_map.texel_address(chain, 0, x, y)
            for x in range(16)
            for y in range(16)
        }
        level1 = {
            address_map.texel_address(chain, 1, x, y)
            for x in range(8)
            for y in range(8)
        }
        assert not (level0 & level1)

    def test_distinct_textures_distinct_regions(self):
        map_ = TexelAddressMap()
        chain_a = make_chain(16, texture_id=0)
        chain_b = make_chain(16, texture_id=1)
        a = map_.texel_address(chain_a, 0, 0, 0)
        b = map_.texel_address(chain_b, 0, 0, 0)
        assert abs(a - b) >= map_.texture_stride

    def test_tiled_4x4_block_shares_line(self):
        # A 4x4 texel tile is 64 bytes of RGBA8: exactly one line.
        chain = make_chain(16)
        address_map = TexelAddressMap()
        lines = {
            address_map.texel_line(chain, 0, x, y)
            for x in range(4)
            for y in range(4)
        }
        assert len(lines) == 1

    def test_row_major_4x4_block_spans_lines(self):
        chain = make_chain(64)
        address_map = TexelAddressMap(layout=TextureLayout.ROW_MAJOR)
        lines = {
            address_map.texel_line(chain, 0, x, y)
            for x in range(4)
            for y in range(4)
        }
        assert len(lines) == 4  # one line per row of 16 texels

    def test_wrap_addressing(self):
        chain = make_chain(16)
        address_map = TexelAddressMap()
        assert address_map.texel_address(chain, 0, 16, 16) == (
            address_map.texel_address(chain, 0, 0, 0)
        )
        assert address_map.texel_address(chain, 0, -1, 0) == (
            address_map.texel_address(chain, 0, 15, 0)
        )

    def test_line_alignment(self):
        chain = make_chain(16)
        address_map = TexelAddressMap()
        line = address_map.texel_line(chain, 0, 5, 7, line_bytes=64)
        assert line % 64 == 0

    def test_narrow_texture_degenerates_to_row_major(self):
        chain = make_chain(16)
        # Level 3 is 2x2, narrower than the 4-texel tile.
        addresses = set()
        address_map = TexelAddressMap()
        for x in range(2):
            for y in range(2):
                addresses.add(address_map.texel_address(chain, 3, x, y))
        assert len(addresses) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            TexelAddressMap(tile_size=3)
        with pytest.raises(ValueError):
            TexelAddressMap(bytes_per_texel=0)
        address_map = TexelAddressMap()
        with pytest.raises(ValueError):
            address_map.texture_region(-1)
        with pytest.raises(ValueError):
            address_map.line_address(0, 0)
