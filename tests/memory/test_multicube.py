"""Tests for the multi-HMC memory (paper section V-E)."""

import pytest

from repro.memory.multicube import MultiCubeMemory


class TestMultiCubeMemory:
    def test_regions_route_to_distinct_cubes(self):
        memory = MultiCubeMemory(num_cubes=2, region_bytes=1 << 24)
        first = memory.cube_for(0)
        second = memory.cube_for(1 << 24)
        assert first is not second
        assert memory.cube_for((1 << 24) - 64) is first

    def test_round_robin_wraps(self):
        memory = MultiCubeMemory(num_cubes=2, region_bytes=1 << 24)
        assert memory.cube_for(2 << 24) is memory.cube_for(0)

    def test_whole_texture_region_in_one_cube(self):
        """The section V-E requirement: a texture's mip chain (one
        address region) never straddles cubes."""
        memory = MultiCubeMemory(num_cubes=4, region_bytes=1 << 24)
        base = 5 << 24
        cubes = {
            memory.cube_for(base + offset).external_reads is not None
            and id(memory.cube_for(base + offset))
            for offset in range(0, 1 << 24, 1 << 20)
        }
        assert len(cubes) == 1

    def test_internal_reads_counted_across_cubes(self):
        memory = MultiCubeMemory(num_cubes=2)
        memory.internal_read(0.0, 0, 64)
        memory.internal_read(0.0, 1 << 24, 64)
        assert memory.internal_reads == 2
        assert memory.cubes[0].internal_reads == 1
        assert memory.cubes[1].internal_reads == 1

    def test_external_read_uses_owning_cubes_links(self):
        memory = MultiCubeMemory(num_cubes=2)
        memory.external_read(0.0, 1 << 24, 16, 80)
        assert memory.cubes[1].external_bytes > 0
        assert memory.cubes[0].external_bytes == 0

    def test_parallel_links_relieve_contention(self):
        # Saturating one cube's link leaves the other cube's fast.
        single = MultiCubeMemory(num_cubes=1)
        double = MultiCubeMemory(num_cubes=2)
        last_single = last_double = 0.0
        for index in range(200):
            address = (index % 2) << 24
            last_single = max(
                last_single, single.send_request(0.0, address, 1024)
            )
            last_double = max(
                last_double, double.send_request(0.0, address, 1024)
            )
        assert last_double < last_single

    def test_send_request_response_route(self):
        memory = MultiCubeMemory(num_cubes=2)
        memory.send_request(0.0, 0, 64)
        memory.send_response(0.0, 1 << 24, 80)
        assert memory.cubes[0].tx_link.total_bytes == 64.0
        assert memory.cubes[1].rx_link.total_bytes == 80.0

    def test_reset(self):
        memory = MultiCubeMemory(num_cubes=2)
        memory.internal_read(0.0, 0, 64)
        memory.reset()
        assert memory.internal_bytes == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiCubeMemory(num_cubes=0)
        with pytest.raises(ValueError):
            MultiCubeMemory(region_bytes=0)
        with pytest.raises(ValueError):
            MultiCubeMemory().cube_for(-1)


class TestMultiCubeDesign:
    def test_atfim_runs_with_multiple_cubes(self, fast_workload,
                                            fast_workload_trace):
        from repro.core import Design, simulate_frame

        scene, trace = fast_workload_trace
        single = simulate_frame(
            scene, trace, fast_workload.design_config(Design.A_TFIM, num_cubes=1)
        )
        double = simulate_frame(
            scene, trace, fast_workload.design_config(Design.A_TFIM, num_cubes=2)
        )
        # More cubes never hurt (parallel links/vaults).
        assert double.frame.frame_cycles <= single.frame.frame_cycles * 1.05
        # Traffic is identical: placement does not change what is fetched.
        assert double.frame.traffic.external_texture == pytest.approx(
            single.frame.traffic.external_texture
        )
