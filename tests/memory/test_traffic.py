"""Tests for class-tagged traffic accounting."""

import pytest

from repro.memory.traffic import TrafficClass, TrafficMeter


class TestTrafficMeter:
    def test_external_and_internal_separate(self):
        meter = TrafficMeter()
        meter.add_external(TrafficClass.TEXTURE, 100.0)
        meter.add_internal(TrafficClass.TEXTURE, 900.0)
        assert meter.external_total == 100.0
        assert meter.internal_total == 900.0
        assert meter.external_texture == 100.0

    def test_breakdown_sums_to_one(self):
        meter = TrafficMeter()
        meter.add_external(TrafficClass.TEXTURE, 60.0)
        meter.add_external(TrafficClass.FRAMEBUFFER, 20.0)
        meter.add_external(TrafficClass.ZTEST, 15.0)
        meter.add_external(TrafficClass.COLOR, 5.0)
        breakdown = meter.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["texture"] == pytest.approx(0.6)

    def test_empty_breakdown_is_zero(self):
        breakdown = TrafficMeter().breakdown()
        assert all(value == 0.0 for value in breakdown.values())

    def test_negative_bytes_rejected(self):
        meter = TrafficMeter()
        with pytest.raises(ValueError):
            meter.add_external(TrafficClass.TEXTURE, -1.0)
        with pytest.raises(ValueError):
            meter.add_internal(TrafficClass.COLOR, -1.0)

    def test_merge(self):
        left = TrafficMeter()
        right = TrafficMeter()
        left.add_external(TrafficClass.GEOMETRY, 10.0)
        right.add_external(TrafficClass.GEOMETRY, 5.0)
        right.add_internal(TrafficClass.TEXTURE, 7.0)
        left.merge(right)
        assert left.external[TrafficClass.GEOMETRY] == 15.0
        assert left.internal[TrafficClass.TEXTURE] == 7.0

    def test_reset(self):
        meter = TrafficMeter()
        meter.add_external(TrafficClass.TEXTURE, 10.0)
        meter.reset()
        assert meter.external_total == 0.0
        assert meter.internal_total == 0.0

    def test_all_classes_present(self):
        meter = TrafficMeter()
        assert set(meter.external) == set(TrafficClass)
        assert set(meter.internal) == set(TrafficClass)
