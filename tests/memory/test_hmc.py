"""Tests for the Hybrid Memory Cube model."""

import pytest

from repro.memory.hmc import (
    HmcConfig,
    HybridMemoryCube,
    VAULT_BLOCK_BYTES,
)


class TestHmcConfig:
    def test_spec_values(self):
        config = HmcConfig()
        assert config.external_bandwidth_gb_per_s == 320.0
        assert config.internal_bandwidth_gb_per_s == 512.0
        assert config.num_vaults == 32
        assert config.banks_per_vault == 8
        assert config.tsv_latency_cycles == 1.0

    def test_internal_must_exceed_external(self):
        # The internal > external asymmetry is the premise of TFIM.
        with pytest.raises(ValueError):
            HmcConfig(
                external_bandwidth_gb_per_s=512.0,
                internal_bandwidth_gb_per_s=320.0,
            )

    def test_link_rate_full_duplex_per_direction(self):
        config = HmcConfig()
        assert config.link_bytes_per_cycle == pytest.approx(320.0)

    def test_vault_rate_divides_internal(self):
        config = HmcConfig()
        assert config.vault_bytes_per_cycle == pytest.approx(512.0 / 32)

    def test_validation(self):
        with pytest.raises(ValueError):
            HmcConfig(num_vaults=0)
        with pytest.raises(ValueError):
            HmcConfig(external_bandwidth_gb_per_s=-1.0)


class TestHybridMemoryCube:
    def test_vault_block_interleaving(self):
        hmc = HybridMemoryCube()
        first = hmc.vault_for(0)
        second = hmc.vault_for(VAULT_BLOCK_BYTES)
        assert first.index != second.index
        assert hmc.vault_for(VAULT_BLOCK_BYTES - 1).index == first.index

    def test_vault_wraps(self):
        hmc = HybridMemoryCube()
        wrapped = hmc.vault_for(VAULT_BLOCK_BYTES * hmc.config.num_vaults)
        assert wrapped.index == 0

    def test_negative_address_rejected(self):
        hmc = HybridMemoryCube()
        with pytest.raises(ValueError):
            hmc.vault_for(-1)

    def test_external_read_crosses_both_links(self):
        hmc = HybridMemoryCube()
        hmc.external_read(0.0, address=0, request_bytes=16, response_bytes=80)
        assert hmc.tx_link.total_bytes == 16.0
        assert hmc.rx_link.total_bytes == 80.0
        assert hmc.external_reads == 1

    def test_internal_read_stays_off_links(self):
        hmc = HybridMemoryCube()
        hmc.internal_read(0.0, address=0, nbytes=64)
        assert hmc.tx_link.total_bytes == 0.0
        assert hmc.rx_link.total_bytes == 0.0
        assert hmc.internal_bytes == 64.0
        assert hmc.internal_reads == 1

    def test_internal_read_faster_than_external(self):
        hmc = HybridMemoryCube()
        external = hmc.external_read(0.0, 0, 16, 80)
        hmc.reset()
        internal = hmc.internal_read(0.0, 0, 64)
        assert internal < external

    def test_external_write_uses_tx_only(self):
        hmc = HybridMemoryCube()
        hmc.external_write(0.0, address=0, nbytes=80)
        assert hmc.tx_link.total_bytes == 80.0
        assert hmc.rx_link.total_bytes == 0.0
        assert hmc.external_writes == 1

    def test_full_duplex_directions_independent(self):
        hmc = HybridMemoryCube()
        # Saturate tx; rx should be unaffected.
        for _ in range(100):
            hmc.tx_link.transmit(0.0, 1024)
        rx_ready = hmc.rx_link.transmit(0.0, 64)
        assert rx_ready < hmc.tx_link.server.next_free

    def test_vault_bank_timing_progresses(self):
        hmc = HybridMemoryCube()
        first = hmc.internal_read(0.0, 0, 64)
        second = hmc.internal_read(0.0, 0, 64)
        assert second > first - hmc.config.vault_access_latency_cycles

    def test_invalid_size_rejected(self):
        hmc = HybridMemoryCube()
        with pytest.raises(ValueError):
            hmc.internal_read(0.0, 0, 0)

    def test_reset(self):
        hmc = HybridMemoryCube()
        hmc.external_read(0.0, 0, 16, 80)
        hmc.internal_read(0.0, 0, 64)
        hmc.reset()
        assert hmc.external_bytes == 0.0
        assert hmc.internal_bytes == 0.0
        assert hmc.external_reads == 0
        assert hmc.internal_reads == 0
