"""Tests for the package format arithmetic."""

import pytest

from repro.memory.packets import PacketSpec


class TestPacketSpec:
    def test_defaults_follow_methodology(self):
        spec = PacketSpec()
        assert spec.read_request_bytes == 16
        assert spec.read_response_bytes == 64 + 16
        # The paper's offloading package is 4x a read request.
        assert spec.texture_request_bytes == 4 * spec.read_request_bytes
        assert spec.parent_texel_request_bytes == spec.texture_request_bytes

    def test_texture_response_single_sample_equals_read_response(self):
        spec = PacketSpec()
        assert spec.texture_response_bytes(1) == spec.read_response_bytes

    def test_texture_response_grows_with_samples(self):
        spec = PacketSpec()
        small = spec.texture_response_bytes(1)
        large = spec.texture_response_bytes(40)
        assert large > small
        assert (large - spec.header_bytes) % spec.cache_line_bytes == 0

    def test_parent_texel_response_single_line_up_to_16_parents(self):
        spec = PacketSpec()
        # 16 RGBA8 parents = 64 bytes = exactly one line.
        assert spec.parent_texel_response_bytes(16) == spec.read_response_bytes
        assert spec.parent_texel_response_bytes(8) == spec.read_response_bytes

    def test_parent_texel_response_positive_count_required(self):
        spec = PacketSpec()
        with pytest.raises(ValueError):
            spec.parent_texel_response_bytes(0)

    def test_texels_per_line(self):
        assert PacketSpec().texels_per_line() == 16

    def test_write_request(self):
        spec = PacketSpec()
        assert spec.write_request_bytes == spec.cache_line_bytes + spec.header_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketSpec(cache_line_bytes=0)
        with pytest.raises(ValueError):
            PacketSpec(header_bytes=-1)
        with pytest.raises(ValueError):
            PacketSpec(texture_request_scale=0)

    def test_custom_scale(self):
        spec = PacketSpec(texture_request_scale=2)
        assert spec.texture_request_bytes == 2 * spec.read_request_bytes
