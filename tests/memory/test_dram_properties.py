"""Property-based tests for the DRAM bank/row model."""

from hypothesis import given, settings, strategies as st

from repro.memory.dram import DramBank, DramDevice, DramTiming

addresses = st.lists(
    st.integers(0, 1 << 20).map(lambda value: (value // 4) * 4),
    min_size=1,
    max_size=80,
)


class TestDramProperties:
    @settings(max_examples=100, deadline=None)
    @given(rows=st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_bank_busy_equals_sum_of_occupancies(self, rows):
        timing = DramTiming()
        bank = DramBank(timing)
        for row in rows:
            bank.access_row(0.0, row)
        expected = (
            bank.row_hits * timing.row_hit_occupancy
            + bank.row_misses * timing.row_miss_occupancy
        )
        assert bank.busy_cycles == expected
        assert bank.row_hits + bank.row_misses == len(rows)

    @settings(max_examples=100, deadline=None)
    @given(rows=st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_bank_ready_times_monotone(self, rows):
        bank = DramBank(DramTiming())
        previous = 0.0
        for row in rows:
            ready = bank.access_row(0.0, row)
            assert ready >= previous
            previous = ready

    @settings(max_examples=100, deadline=None)
    @given(sequence=addresses)
    def test_locate_is_deterministic_and_in_range(self, sequence):
        device = DramDevice(DramTiming(), num_banks=8)
        for address in sequence:
            bank_a, row_a = device.locate(address)
            bank_b, row_b = device.locate(address)
            assert (bank_a, row_a) == (bank_b, row_b)
            assert 0 <= bank_a < 8
            assert row_a >= 0

    @settings(max_examples=50, deadline=None)
    @given(sequence=addresses)
    def test_same_block_never_splits_banks(self, sequence):
        device = DramDevice(DramTiming(), num_banks=8,
                            bank_interleave_bytes=256)
        for address in sequence:
            block_base = (address // 256) * 256
            bank_base, _ = device.locate(block_base)
            bank_here, _ = device.locate(address)
            assert bank_here == bank_base

    @settings(max_examples=50, deadline=None)
    @given(sequence=addresses)
    def test_single_open_row_per_bank_invariant(self, sequence):
        """After any access sequence, each bank has exactly the row of
        its last access open."""
        device = DramDevice(DramTiming(), num_banks=4)
        last_row = {}
        for address in sequence:
            bank, row = device.locate(address)
            device.access(0.0, address)
            last_row[bank] = row
        for bank_index, row in last_row.items():
            assert device.banks[bank_index].open_row == row
