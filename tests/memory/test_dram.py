"""Tests for the bank/row DRAM model."""

import pytest

from repro.memory.dram import DramBank, DramDevice, DramTiming


class TestDramTiming:
    def test_occupancies(self):
        timing = DramTiming()
        assert timing.row_hit_occupancy == timing.burst_cycles
        assert timing.row_miss_occupancy == (
            timing.precharge_cycles
            + timing.row_activate_cycles
            + timing.burst_cycles
        )
        assert timing.row_miss_occupancy > timing.row_hit_occupancy

    def test_validation(self):
        with pytest.raises(ValueError):
            DramTiming(row_bytes=0)
        with pytest.raises(ValueError):
            DramTiming(burst_cycles=-1.0)


class TestDramBank:
    def test_first_access_is_row_miss(self):
        bank = DramBank(DramTiming())
        bank.access_row(0.0, row=3)
        assert bank.row_misses == 1
        assert bank.open_row == 3

    def test_second_access_same_row_hits(self):
        bank = DramBank(DramTiming())
        bank.access_row(0.0, row=3)
        bank.access_row(50.0, row=3)
        assert bank.row_hits == 1

    def test_row_switch_misses(self):
        bank = DramBank(DramTiming())
        bank.access_row(0.0, row=3)
        bank.access_row(50.0, row=4)
        assert bank.row_misses == 2

    def test_hit_occupies_only_burst(self):
        timing = DramTiming()
        bank = DramBank(timing)
        bank.access_row(0.0, row=1)
        free_after_miss = bank.next_free
        ready = bank.access_row(free_after_miss, row=1)
        assert bank.next_free - free_after_miss == pytest.approx(
            timing.burst_cycles
        )
        # CAS latency is pipelined on top of occupancy.
        assert ready == pytest.approx(
            bank.next_free + timing.column_access_cycles
        )

    def test_queueing_behind_busy_bank(self):
        bank = DramBank(DramTiming())
        bank.access_row(0.0, row=1)
        busy_until = bank.next_free
        bank.access_row(0.0, row=1)
        assert bank.next_free > busy_until

    def test_row_hit_rate(self):
        bank = DramBank(DramTiming())
        bank.access_row(0.0, 1)
        bank.access_row(0.0, 1)
        bank.access_row(0.0, 1)
        assert bank.row_hit_rate() == pytest.approx(2.0 / 3.0)

    def test_negative_row_rejected(self):
        bank = DramBank(DramTiming())
        with pytest.raises(ValueError):
            bank.access_row(0.0, row=-1)

    def test_reset(self):
        bank = DramBank(DramTiming())
        bank.access_row(0.0, 1)
        bank.reset()
        assert bank.open_row is None
        assert bank.row_hit_rate() == 0.0


class TestDramDevice:
    def test_block_interleaving_rotates_banks(self):
        device = DramDevice(DramTiming(), num_banks=4, bank_interleave_bytes=256)
        banks = {device.locate(block * 256)[0] for block in range(4)}
        assert banks == {0, 1, 2, 3}

    def test_same_block_same_bank(self):
        device = DramDevice(DramTiming(), num_banks=4)
        bank_a, _ = device.locate(256 * 7)
        bank_b, _ = device.locate(256 * 7 + 128)
        assert bank_a == bank_b

    def test_streaming_sweep_hits_rows(self):
        # A linear sweep larger than one row span should mostly row-hit.
        device = DramDevice(DramTiming(), num_banks=4)
        for address in range(0, 64 * 1024, 64):
            device.access(0.0, address)
        assert device.row_hit_rate() > 0.85

    def test_interleave_step_shifts_bank_rotation(self):
        # With step 32 (an HMC vault), every 32nd block belongs to this
        # device, and its banks rotate across those.
        device = DramDevice(
            DramTiming(), num_banks=8, bank_interleave_bytes=256, interleave_step=32
        )
        stride = 256 * 32
        banks = {device.locate(block * stride)[0] for block in range(8)}
        assert banks == set(range(8))

    def test_busy_accounting(self):
        device = DramDevice(DramTiming(), num_banks=2)
        device.access(0.0, 0)
        assert device.busy_cycles > 0

    def test_negative_address_rejected(self):
        device = DramDevice(DramTiming())
        with pytest.raises(ValueError):
            device.locate(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            DramDevice(DramTiming(), num_banks=0)
        with pytest.raises(ValueError):
            DramDevice(DramTiming(), bank_interleave_bytes=0)
        with pytest.raises(ValueError):
            DramDevice(DramTiming(), interleave_step=0)

    def test_reset(self):
        device = DramDevice(DramTiming())
        device.access(0.0, 0)
        device.reset()
        assert device.row_hit_rate() == 0.0
        assert device.busy_cycles == 0.0
