"""Memory-backend registry: HBM / near-bank substrates + design wiring."""

import dataclasses

import pytest

from repro.core.designs import Design, DesignConfig
from repro.memory.hbm import HbmConfig, HbmStack
from repro.memory.hmc import HmcConfig
from repro.memory.nearbank import NearBankPimConfig, NearBankPimMemory
from repro.memory.registry import (
    MEMORY_BACKENDS,
    memory_backend,
    memory_backend_names,
)
from repro.workloads.games import workload_by_name

WORKLOAD = "riddick-640x480"


class TestRegistry:
    def test_names(self):
        assert memory_backend_names() == ("hmc", "hbm", "nearbank")

    def test_lookup_returns_spec(self):
        for name in memory_backend_names():
            spec = memory_backend(name)
            assert spec.name == name
            assert spec is MEMORY_BACKENDS[name]

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="hmc, hbm, nearbank"):
            memory_backend("optane")

    def test_every_spec_builds_a_cube_config(self):
        for spec in MEMORY_BACKENDS.values():
            config = spec.make_cube_config(1.0, 1.0)
            assert isinstance(config, HmcConfig)
            assert config.internal_bandwidth_gb_per_s >= (
                config.external_bandwidth_gb_per_s
            )

    def test_hmc_spec_matches_historical_hard_wiring(self):
        """The default backend is bit-identical to the old hmc_config."""
        workload = workload_by_name(WORKLOAD)
        scale = workload.bandwidth_scale
        config = memory_backend("hmc").make_cube_config(scale, 1.0)
        assert config == HmcConfig(
            external_bandwidth_gb_per_s=320.0 / scale,
            internal_bandwidth_gb_per_s=512.0 / scale,
        )
        assert config == workload.hmc_config()

    def test_rejects_nonpositive_scales(self):
        for spec in MEMORY_BACKENDS.values():
            with pytest.raises(ValueError, match="positive"):
                spec.make_cube_config(0.0, 1.0)
            with pytest.raises(ValueError, match="positive"):
                spec.make_cube_config(1.0, -1.0)


class TestHbm:
    def test_defaults_map_onto_cube(self):
        config = HbmConfig().cube_config()
        assert config.external_bandwidth_gb_per_s == pytest.approx(307.2)
        assert config.internal_bandwidth_gb_per_s == pytest.approx(614.4)
        assert config.num_vaults == 16
        assert config.banks_per_vault == 16
        assert config.link_latency_cycles == 8.0
        assert config.vault_access_latency_cycles == 40.0

    def test_lower_latency_higher_external_than_hmc(self):
        """The qualitative contrast the backend exists to provide."""
        hbm = HbmConfig().cube_config()
        hmc = memory_backend("hmc").make_cube_config(1.0, 1.0)
        assert hbm.link_latency_cycles < hmc.link_latency_cycles
        assert hbm.external_bandwidth_gb_per_s < hmc.external_bandwidth_gb_per_s * 1.05
        ratio_hbm = hbm.internal_bandwidth_gb_per_s / hbm.external_bandwidth_gb_per_s
        ratio_hmc = hmc.internal_bandwidth_gb_per_s / hmc.external_bandwidth_gb_per_s
        assert ratio_hbm > ratio_hmc  # 2.0x vs 1.6x

    def test_link_scale_touches_external_only(self):
        base = HbmConfig().cube_config(1.0, 1.0)
        half = HbmConfig().cube_config(1.0, 0.5)
        assert half.external_bandwidth_gb_per_s == pytest.approx(
            base.external_bandwidth_gb_per_s * 0.5
        )
        assert half.internal_bandwidth_gb_per_s == (
            base.internal_bandwidth_gb_per_s
        )

    def test_internal_floored_at_external(self):
        wide = HbmConfig().cube_config(1.0, 10.0)
        assert wide.internal_bandwidth_gb_per_s == (
            wide.external_bandwidth_gb_per_s
        )

    def test_rejects_pim_slower_than_interface(self):
        with pytest.raises(ValueError, match="PIM-side"):
            HbmConfig(pim_bandwidth_gb_per_s=100.0)

    def test_live_stack_is_a_cube(self):
        stack = HbmStack()
        assert stack.config.num_vaults == 16


class TestNearBank:
    def test_defaults_map_onto_cube(self):
        config = NearBankPimConfig().cube_config()
        assert config.external_bandwidth_gb_per_s == pytest.approx(64.0)
        assert config.internal_bandwidth_gb_per_s == pytest.approx(2048.0)
        assert config.num_vaults == 64
        assert config.banks_per_vault == 2
        assert config.link_latency_cycles == 48.0
        assert config.vault_access_latency_cycles == 96.0

    def test_extreme_offload_ratio_weak_host(self):
        near = NearBankPimConfig().cube_config()
        hmc = memory_backend("hmc").make_cube_config(1.0, 1.0)
        assert near.external_bandwidth_gb_per_s < hmc.external_bandwidth_gb_per_s
        ratio = near.internal_bandwidth_gb_per_s / near.external_bandwidth_gb_per_s
        assert ratio == pytest.approx(32.0)

    def test_link_scale_touches_host_channel_only(self):
        base = NearBankPimConfig().cube_config(2.0, 1.0)
        doubled = NearBankPimConfig().cube_config(2.0, 2.0)
        assert doubled.external_bandwidth_gb_per_s == pytest.approx(
            base.external_bandwidth_gb_per_s * 2.0
        )
        assert doubled.internal_bandwidth_gb_per_s == (
            base.internal_bandwidth_gb_per_s
        )

    def test_rejects_near_bank_slower_than_host(self):
        with pytest.raises(ValueError, match="near-bank"):
            NearBankPimConfig(near_bank_bandwidth_gb_per_s=32.0)

    def test_live_module_is_a_cube(self):
        module = NearBankPimMemory()
        assert module.config.num_vaults == 64


class TestDesignWiring:
    def test_design_config_validates_backend_name(self):
        with pytest.raises(KeyError, match="unknown memory backend"):
            DesignConfig(design=Design.A_TFIM, memory_backend="optane")

    def test_design_config_rejects_nonpositive_link_scale(self):
        with pytest.raises(ValueError, match="link bandwidth scale"):
            DesignConfig(link_bandwidth_scale=0.0)

    def test_with_design_and_threshold_carry_the_axes(self):
        config = DesignConfig(
            design=Design.A_TFIM,
            memory_backend="hbm",
            link_bandwidth_scale=0.75,
        )
        moved = config.with_design(Design.S_TFIM)
        assert moved.memory_backend == "hbm"
        assert moved.link_bandwidth_scale == 0.75
        rethreshed = config.with_threshold(0.02)
        assert rethreshed.memory_backend == "hbm"
        assert rethreshed.link_bandwidth_scale == 0.75

    def test_workload_design_config_resolves_backend(self):
        workload = workload_by_name(WORKLOAD)
        config = workload.design_config(
            Design.A_TFIM, memory_backend="nearbank"
        )
        assert config.memory_backend == "nearbank"
        expected = NearBankPimConfig().cube_config(workload.bandwidth_scale, 1.0)
        assert config.hmc == expected

    def test_workload_design_config_default_unchanged(self):
        """No backend override -> the exact historical HMC numbers."""
        workload = workload_by_name(WORKLOAD)
        config = workload.design_config(Design.A_TFIM)
        assert config.memory_backend == "hmc"
        assert config.link_bandwidth_scale == 1.0
        assert config.hmc == HmcConfig(
            external_bandwidth_gb_per_s=320.0 / workload.bandwidth_scale,
            internal_bandwidth_gb_per_s=512.0 / workload.bandwidth_scale,
        )

    def test_explicit_hmc_override_still_wins(self):
        workload = workload_by_name(WORKLOAD)
        custom = HmcConfig(external_bandwidth_gb_per_s=99.0,
                           internal_bandwidth_gb_per_s=101.0)
        config = workload.design_config(
            Design.A_TFIM, memory_backend="hbm", hmc=custom
        )
        assert config.hmc == custom
        assert config.memory_backend == "hbm"

    def test_backend_fields_reach_frozen_copy_helpers(self):
        """The axes are real dataclass fields, not ad-hoc attributes."""
        names = {f.name for f in dataclasses.fields(DesignConfig)}
        assert {"memory_backend", "link_bandwidth_scale"} <= names
