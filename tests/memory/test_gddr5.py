"""Tests for the GDDR5 memory model."""

import pytest

from repro.memory.gddr5 import Gddr5Config, Gddr5Memory


class TestGddr5Config:
    def test_table1_bandwidth(self):
        config = Gddr5Config()
        assert config.bandwidth_gb_per_s == 128.0
        assert config.bus_bytes_per_cycle == 128.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Gddr5Config(bandwidth_gb_per_s=0.0)
        with pytest.raises(ValueError):
            Gddr5Config(access_latency_cycles=-1.0)


class TestGddr5Memory:
    def test_read_includes_access_latency(self):
        memory = Gddr5Memory()
        ready = memory.read(0.0, address=0, nbytes=64)
        assert ready >= memory.config.access_latency_cycles

    def test_bandwidth_bound_stream(self):
        # A long stream of reads completes no faster than bytes / rate.
        config = Gddr5Config(bandwidth_gb_per_s=64.0, access_latency_cycles=0.0)
        memory = Gddr5Memory(config)
        total_bytes = 0
        last_ready = 0.0
        for index in range(1000):
            last_ready = memory.read(0.0, address=index * 64, nbytes=64)
            total_bytes += 64
        assert last_ready >= total_bytes / config.bus_bytes_per_cycle

    def test_channel_routing_by_block(self):
        memory = Gddr5Memory()
        channels = {
            id(memory.channel_for(block * memory.config.channel_interleave_bytes))
            for block in range(memory.config.num_channels)
        }
        assert len(channels) == memory.config.num_channels

    def test_reads_and_writes_counted(self):
        memory = Gddr5Memory()
        memory.read(0.0, 0, 64)
        memory.write(0.0, 64, 64)
        assert memory.reads == 1
        assert memory.writes == 1
        assert memory.total_bytes == 128.0

    def test_row_hit_rate_on_stream(self):
        memory = Gddr5Memory()
        for address in range(0, 256 * 1024, 64):
            memory.read(0.0, address, 64)
        assert memory.row_hit_rate() > 0.8

    def test_invalid_sizes_rejected(self):
        memory = Gddr5Memory()
        with pytest.raises(ValueError):
            memory.read(0.0, 0, 0)
        with pytest.raises(ValueError):
            memory.write(0.0, 0, -1)

    def test_negative_address_rejected(self):
        memory = Gddr5Memory()
        with pytest.raises(ValueError):
            memory.channel_for(-1)

    def test_reset(self):
        memory = Gddr5Memory()
        memory.read(0.0, 0, 64)
        memory.reset()
        assert memory.reads == 0
        assert memory.total_bytes == 0.0
        assert memory.row_hit_rate() == 0.0
