"""Shared fixtures: tiny deterministic scenes, traces and runners.

Session-scoped fixtures cache the expensive artefacts (rasterized traces,
design runs) so the suite stays fast while many tests share them.
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest

# Every frame simulated by the suite is validated against the runtime
# conservation invariants (repro.analysis.invariants).  Set before any
# repro import so session-scoped fixtures are covered too; respects an
# explicit REPRO_CHECK_INVARIANTS=0 from the caller.
os.environ.setdefault("REPRO_CHECK_INVARIANTS", "1")

from repro.core import Design, simulate_frame
from repro.render.camera import Camera
from repro.render.renderer import Renderer
from repro.render.scene import Scene
from repro.texture.texture import Texture
from repro.workloads import workload_by_name
from repro.workloads.textures import ProceduralTextureLibrary


def make_checker_texture(texture_id: int = 0, size: int = 64) -> Texture:
    """A small high-contrast checker texture."""
    library = ProceduralTextureLibrary(next_id=texture_id)
    return library.create("checker", size, seed=7)


def make_tiny_scene(texture_size: int = 64) -> tuple[Scene, Camera]:
    """A floor receding from the camera plus a facing wall.

    Small enough to rasterize in milliseconds, but contains both grazing
    (anisotropic) and face-on (isotropic) surfaces.
    """
    scene = Scene(name="tiny")
    library = ProceduralTextureLibrary()
    floor = library.create("checker", texture_size, seed=3)
    wall = library.create("brick", texture_size, seed=4)
    scene.add_texture(floor)
    scene.add_texture(wall)
    scene.add_quad(
        [(-8.0, 0.0, 2.0), (8.0, 0.0, 2.0), (8.0, 0.0, -40.0), (-8.0, 0.0, -40.0)],
        floor.texture_id,
        uv_scale=12.0,
    )
    scene.add_quad(
        [(-8.0, 0.0, -40.0), (8.0, 0.0, -40.0), (8.0, 8.0, -40.0), (-8.0, 8.0, -40.0)],
        wall.texture_id,
        uv_scale=2.0,
    )
    camera = Camera(
        position=np.array([0.0, 1.5, 4.0]),
        target=np.array([0.0, 1.0, -20.0]),
        fov_y=math.radians(65.0),
    )
    return scene, camera


@pytest.fixture(scope="session")
def tiny_scene():
    return make_tiny_scene()


@pytest.fixture(scope="session")
def tiny_trace(tiny_scene):
    scene, camera = tiny_scene
    renderer = Renderer(width=48, height=36, tile_size=4, max_anisotropy=8)
    output = renderer.trace_only(scene, camera)
    return scene, output.trace


@pytest.fixture(scope="session")
def fast_workload():
    return workload_by_name("doom3-640x480")


@pytest.fixture(scope="session")
def fast_workload_trace(fast_workload):
    return fast_workload.trace()


@pytest.fixture(scope="session")
def design_runs(fast_workload, fast_workload_trace):
    """All four designs simulated once on the fast workload."""
    scene, trace = fast_workload_trace
    runs = {}
    for design in Design:
        config = fast_workload.design_config(design)
        runs[design] = simulate_frame(scene, trace, config)
    return runs
