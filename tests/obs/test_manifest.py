"""Tests for run manifests and the Chrome trace-event export."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.experiments.runner import RunnerCacheStats
from repro.obs.chrome import MAIN_TID, chrome_trace
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    build_manifest,
    config_digest,
    load_manifest,
    write_chrome_trace,
)


def _sample_manifest(**overrides) -> RunManifest:
    payload = dict(
        command="report",
        config={"fast": True},
        digest=config_digest({"fast": True}),
        source="0123456789abcdef",
        created_unix=1_700_000_000.0,
        tracing=True,
        cache={"disk_hits": 3.0},
        spans=[
            {
                "name": "report.generate",
                "span_id": 1,
                "parent_id": None,
                "start_wall": 100.0,
                "duration": 2.5,
                "attributes": {"workloads": 3},
                "stats": {"runner.cache.memo_hits": 1.0},
                "children": [
                    {
                        "name": "runner.run",
                        "span_id": 2,
                        "parent_id": 1,
                        "start_wall": 100.5,
                        "duration": 1.0,
                        "attributes": {},
                        "stats": {},
                        "children": [],
                    }
                ],
            }
        ],
        stats={"runner.cache.memo_hits": 1.0},
    )
    payload.update(overrides)
    return RunManifest(**payload)


class TestRoundTrip:
    def test_as_dict_from_dict_identity(self):
        manifest = _sample_manifest()
        clone = RunManifest.from_dict(manifest.as_dict())
        assert clone == manifest

    def test_schema_marker_present(self):
        assert _sample_manifest().as_dict()["schema"] == MANIFEST_SCHEMA

    def test_wrong_schema_rejected(self):
        payload = _sample_manifest().as_dict()
        payload["schema"] = "something-else/9"
        with pytest.raises(ValueError):
            RunManifest.from_dict(payload)

    def test_write_and_load(self, tmp_path):
        manifest = _sample_manifest()
        path = manifest.write(tmp_path / "run.manifest.json")
        assert load_manifest(path) == manifest

    def test_write_is_strict_json(self, tmp_path):
        manifest = _sample_manifest(stats={"bad": float("nan")})
        with pytest.raises(ValueError):
            manifest.write(tmp_path / "run.manifest.json")


class TestConfigDigest:
    def test_deterministic_and_order_insensitive(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest(
            {"b": 2, "a": 1}
        )

    def test_sensitive_to_values(self):
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_sixteen_hex_chars(self):
        digest = config_digest({"a": 1})
        assert len(digest) == 16
        int(digest, 16)


class TestChromeTrace:
    def test_events_carry_required_fields(self):
        trace = _sample_manifest().chrome_trace()
        events = trace["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}
            assert event["ph"] == "X"
            assert event["tid"] == MAIN_TID

    def test_timestamps_relative_to_earliest_span(self):
        events = _sample_manifest().chrome_trace()["traceEvents"]
        by_name = {event["name"]: event for event in events}
        assert by_name["report.generate"]["ts"] == 0.0
        assert by_name["runner.run"]["ts"] == pytest.approx(0.5e6)
        assert by_name["report.generate"]["dur"] == pytest.approx(2.5e6)

    def test_worker_forests_get_own_tid_lanes(self):
        worker = {
            "name": "worker.run",
            "span_id": 1,
            "parent_id": None,
            "start_wall": 100.2,
            "duration": 0.5,
            "attributes": {},
            "stats": {},
            "children": [],
        }
        spans = [
            {
                "name": "runner.run_phase",
                "span_id": 1,
                "parent_id": None,
                "start_wall": 100.0,
                "duration": 1.0,
                "attributes": {"worker_spans": [[worker], [worker]]},
                "stats": {},
                "children": [],
            }
        ]
        events = chrome_trace(spans)["traceEvents"]
        tids = sorted(event["tid"] for event in events)
        assert tids == [MAIN_TID, MAIN_TID + 1, MAIN_TID + 2]
        args = next(
            e for e in events if e["name"] == "runner.run_phase"
        )["args"]
        assert "worker_spans" not in args

    def test_write_chrome_trace_from_file(self, tmp_path):
        manifest = _sample_manifest()
        source = manifest.write(tmp_path / "run.manifest.json")
        output = write_chrome_trace(source, tmp_path / "run.trace.json")
        trace = json.loads(output.read_text())
        assert trace["displayTimeUnit"] == "ms"
        assert len(trace["traceEvents"]) == 2


class _FakeRunner:
    """The two methods build_manifest consumes, without a simulation."""

    def cache_stats(self) -> RunnerCacheStats:
        return RunnerCacheStats(
            memo_hits=4, memo_misses=2, disk_hits=1, disk_misses=1,
            disk_stores=1, disk_errors=0, disk_entries=2, disk_bytes=128,
        )

    def completed_runs(self):
        return {}


class TestBuildManifest:
    def test_without_runner(self):
        manifest = build_manifest("bench", config={"fast": True})
        assert manifest.command == "bench"
        assert manifest.digest == config_digest({"fast": True})
        assert len(manifest.source) == 16
        assert manifest.cache == {}
        assert manifest.stats == {}

    def test_with_runner_counters_and_stats(self):
        manifest = build_manifest("report", runner=_FakeRunner())
        assert manifest.cache["memo_hits"] == 4.0
        assert manifest.cache["disk_hit_rate"] == pytest.approx(0.5)
        assert manifest.stats["runner.cache.memo_hits"] == 4.0

    def test_records_tracing_flag_and_spans(self):
        was = obs.tracing_enabled()
        obs.set_tracing(True, propagate_env=False)
        obs.reset_tracer()
        try:
            with obs.span("unit.phase"):
                pass
            manifest = build_manifest("fig")
            assert manifest.tracing is True
            assert [s["name"] for s in manifest.spans] == ["unit.phase"]
        finally:
            obs.reset_tracer()
            obs.set_tracing(was, propagate_env=False)

    def test_manifest_json_round_trips_through_disk(self, tmp_path):
        manifest = build_manifest("report", runner=_FakeRunner())
        path = manifest.write(tmp_path / "m.json")
        clone = load_manifest(path)
        assert clone.cache == manifest.cache
        assert clone.stats == manifest.stats
