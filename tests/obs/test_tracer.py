"""Tests for the tracing spans: nesting, zero-overhead-off, decorator."""

from __future__ import annotations

import pytest

from repro import obs
from repro.sim.stats import StatGroup


@pytest.fixture
def tracing_off():
    """Force tracing off (without touching the environment), clean slate."""
    was = obs.tracing_enabled()
    obs.set_tracing(False, propagate_env=False)
    obs.reset_tracer()
    yield
    obs.reset_tracer()
    obs.set_tracing(was, propagate_env=False)


@pytest.fixture
def tracing_on():
    """Force tracing on (without touching the environment), clean slate."""
    was = obs.tracing_enabled()
    obs.set_tracing(True, propagate_env=False)
    obs.reset_tracer()
    yield
    obs.reset_tracer()
    obs.set_tracing(was, propagate_env=False)


class TestDisabled:
    def test_span_yields_none_and_records_nothing(self, tracing_off):
        with obs.span("phase", detail=1) as current:
            assert current is None
        assert obs.get_tracer().as_dicts() == []

    def test_annotate_and_attach_stats_are_noops(self, tracing_off):
        obs.annotate(key="value")
        obs.attach_stats({"a": 1.0})
        assert obs.get_tracer().as_dicts() == []

    def test_disabled_equals_absent(self, tracing_off):
        """A timed_stage-wrapped function behaves exactly like the bare
        one when tracing is off: same result, no recorded state."""

        def compute(x: int) -> int:
            return x * 2

        wrapped = obs.timed_stage("bench.compute")(compute)
        assert wrapped(21) == compute(21)
        assert obs.get_tracer().as_dicts() == []


class TestSpans:
    def test_nesting_and_parent_ids(self, tracing_on):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with obs.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        forest = obs.get_tracer().as_dicts()
        assert [s["name"] for s in forest] == ["outer"]
        assert [c["name"] for c in forest[0]["children"]] == [
            "inner", "sibling",
        ]
        assert forest[0]["parent_id"] is None

    def test_duration_and_wall_start_recorded(self, tracing_on):
        with obs.span("timed"):
            pass
        span = obs.get_tracer().as_dicts()[0]
        assert span["duration"] >= 0.0
        assert span["start_wall"] > 0.0

    def test_attributes_and_annotate(self, tracing_on):
        with obs.span("phase", design="a-tfim"):
            obs.annotate(outcome="hit")
        span = obs.get_tracer().as_dicts()[0]
        assert span["attributes"]["design"] == "a-tfim"
        assert span["attributes"]["outcome"] == "hit"

    def test_attach_stats_from_statgroup(self, tracing_on):
        group = StatGroup("frame")
        group.counter("requests").add(7)
        with obs.span("simulate"):
            obs.attach_stats(group)
        span = obs.get_tracer().as_dicts()[0]
        assert span["stats"]["frame.requests"] == 7.0

    def test_attach_stats_from_mapping_with_prefix(self, tracing_on):
        with obs.span("simulate"):
            obs.attach_stats({"hits": 3}, prefix="cache.")
        span = obs.get_tracer().as_dicts()[0]
        assert span["stats"]["cache.hits"] == 3.0

    def test_exception_recorded_and_propagated(self, tracing_on):
        with pytest.raises(RuntimeError):
            with obs.span("failing"):
                raise RuntimeError("boom")
        span = obs.get_tracer().as_dicts()[0]
        assert "boom" in span["attributes"]["error"]
        assert span["duration"] is not None

    def test_two_roots_make_a_forest(self, tracing_on):
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
        assert [s["name"] for s in obs.get_tracer().as_dicts()] == [
            "first", "second",
        ]

    def test_reset_clears_everything(self, tracing_on):
        with obs.span("kept"):
            pass
        obs.reset_tracer()
        assert obs.get_tracer().as_dicts() == []
        assert obs.get_tracer().current() is None


class TestTimedStage:
    def test_bare_decorator_uses_qualified_name(self, tracing_on):
        @obs.timed_stage
        def stage() -> int:
            return 5

        assert stage() == 5
        span = obs.get_tracer().as_dicts()[0]
        assert span["name"].endswith("stage")

    def test_named_decorator(self, tracing_on):
        @obs.timed_stage("custom.name")
        def stage() -> int:
            return 5

        assert stage() == 5
        assert obs.get_tracer().as_dicts()[0]["name"] == "custom.name"

    def test_nests_under_enclosing_span(self, tracing_on):
        @obs.timed_stage("inner.stage")
        def stage() -> None:
            pass

        with obs.span("outer"):
            stage()
        forest = obs.get_tracer().as_dicts()
        assert forest[0]["children"][0]["name"] == "inner.stage"


class TestSetTracing:
    def test_propagate_env_exports_and_clears(self, monkeypatch):
        import os

        was = obs.tracing_enabled()
        try:
            obs.set_tracing(True)
            assert os.environ.get(obs.ENV_FLAG) == "1"
            obs.set_tracing(False)
            assert obs.ENV_FLAG not in os.environ
        finally:
            obs.set_tracing(was, propagate_env=False)
