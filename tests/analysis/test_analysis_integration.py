"""Integration tests: the toolkit against the real repo and real renders."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import main as analysis_main
from repro.analysis.invariants import check_run
from repro.analysis.linter import lint_paths
from repro.core import Design, simulate_frame, simulate_sequence
from repro.core.frontend import DesignRun

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestLintOnRepo:
    def test_simulator_source_is_clean(self):
        findings = lint_paths([REPO_ROOT / "src" / "repro"])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_tests_and_benchmarks_are_clean(self):
        findings = lint_paths([REPO_ROOT / "tests", REPO_ROOT / "benchmarks"])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_cli_exits_zero_on_clean_tree(self, capsys):
        exit_code = analysis_main(["lint", str(REPO_ROOT / "src" / "repro")])
        assert exit_code == 0
        assert "clean" in capsys.readouterr().out


class TestSeededViolations:
    def test_cli_exits_nonzero_on_seeded_violation(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            textwrap.dedent(
                """
                import random
                import time

                def tick():
                    try:
                        return time.time() + random.random()
                    except:
                        pass
                """
            )
        )
        exit_code = analysis_main(["lint", str(tmp_path)])
        assert exit_code == 1
        out = capsys.readouterr().out
        for rule_id in ("REP102", "REP103", "REP104", "REP105"):
            assert rule_id in out

    def test_cli_json_format(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("try:\n    x()\nexcept:\n    pass\n")
        exit_code = analysis_main(["lint", "--format", "json", str(bad)])
        assert exit_code == 1
        findings = json.loads(capsys.readouterr().out)
        assert {f["rule_id"] for f in findings} == {"REP104", "REP105"}

    def test_cli_rejects_missing_path(self, tmp_path):
        assert analysis_main(["lint", str(tmp_path / "nope.py")]) == 2

    def test_rules_and_invariants_listings(self, capsys):
        assert analysis_main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "REP101" in out
        assert "REP200" in out
        assert analysis_main(["invariants"]) == 0
        assert "texel-balance" in capsys.readouterr().out


class TestPlantedUnitViolations:
    """The unit dataflow pass must catch a planted bytes+cycles bug
    end-to-end: real files on disk, lint_paths, the same entry point CI
    uses."""

    def _plant(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "sim" / "planted.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            textwrap.dedent(
                """
                from repro.units import Bytes, Cycles


                def _ready_time(nbytes: Bytes, latency: Cycles) -> float:
                    # Classic transcription bug: adding a size to a time.
                    return nbytes + latency
                """
            )
        )
        return bad

    def test_planted_bytes_plus_cycles_is_caught(self, tmp_path):
        bad = self._plant(tmp_path)
        findings = lint_paths([bad])
        assert "REP200" in {f.rule_id for f in findings}

    def test_cli_exits_nonzero_and_select_filters(self, tmp_path, capsys):
        self._plant(tmp_path)
        exit_code = analysis_main(["lint", "--select", "REP2", str(tmp_path)])
        assert exit_code == 1
        assert "REP200" in capsys.readouterr().out

    def test_cli_select_rejects_unknown_prefix(self, tmp_path, capsys):
        self._plant(tmp_path)
        assert analysis_main(["lint", "--select", "XYZ", str(tmp_path)]) == 2

    def test_cli_sarif_output(self, tmp_path, capsys):
        import json

        self._plant(tmp_path)
        report = tmp_path / "lint.sarif"
        exit_code = analysis_main(
            ["lint", "--format", "sarif", "--output", str(report), str(tmp_path)]
        )
        assert exit_code == 1
        sarif = json.loads(report.read_text())
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids_in_driver = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"REP100", "REP200", "REP207"} <= rule_ids_in_driver
        results = run["results"]
        assert any(result["ruleId"] == "REP200" for result in results)
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("planted.py")
        assert location["region"]["startLine"] > 0


class TestInvariantsOnRenders:
    def test_small_render_all_designs_zero_violations(self, tiny_trace, fast_workload):
        scene, trace = tiny_trace
        for design in Design:
            config = fast_workload.design_config(design)
            run = simulate_frame(scene, trace, config, check_invariants=True)
            assert check_run(run, raise_on_violation=False) == []

    def test_sequence_checked_per_frame(self, tiny_trace, fast_workload):
        scene, trace = tiny_trace
        config = fast_workload.design_config(Design.A_TFIM)
        result = simulate_sequence(
            scene, [trace, trace], config, check_invariants=True
        )
        assert result.num_frames == 2

    def test_wiring_raises_on_injected_violation(
        self, tiny_trace, fast_workload, monkeypatch
    ):
        from repro.analysis import invariants as invariants_module

        def always_fails(run):
            yield "injected failure"

        monkeypatch.setattr(
            invariants_module,
            "_REGISTRY",
            [*invariants_module._REGISTRY, ("always-fails", always_fails)],
        )
        scene, trace = tiny_trace
        config = fast_workload.design_config(Design.BASELINE)
        with pytest.raises(invariants_module.InvariantError, match="injected"):
            simulate_frame(scene, trace, config, check_invariants=True)
        # Explicit opt-out skips the failing registry.
        run = simulate_frame(scene, trace, config, check_invariants=False)
        assert isinstance(run, DesignRun)

    def test_cli_check_invariants_flag(self, monkeypatch, capsys):
        import os

        from repro.analysis.invariants import ENV_FLAG
        from repro.cli import main as repro_main

        monkeypatch.delenv(ENV_FLAG, raising=False)
        exit_code = repro_main(["--check-invariants", "simulate", "doom3-640x480"])
        assert exit_code == 0
        assert "a-tfim" in capsys.readouterr().out
        # The flag is scoped to the command, not leaked into the process.
        assert ENV_FLAG not in os.environ
