"""Positive/negative/noqa fixtures for the REP200-series unit rules.

Each rule gets at least one source that must fire, one that must stay
silent, and a ``# repro: noqa(...)`` suppression check.  Fixtures are
written as annotated simulator-style functions because the dataflow
pass is deliberately conservative: it only reports when both sides of
an operation have known units.
"""

from __future__ import annotations

import textwrap

from repro.analysis.linter import lint_source
from repro.analysis.rules import rule_ids
from repro.analysis.units import unit_rule_ids

SIM_PATH = "src/repro/sim/example.py"

PRELUDE = """
from repro.units import (
    Bytes,
    BytesPerCycle,
    Cycles,
    Degrees,
    Picojoules,
    Radians,
)
"""


def findings_for(source: str, path: str = SIM_PATH):
    return lint_source(PRELUDE + textwrap.dedent(source), path)


def ids_for(source: str, path: str = SIM_PATH):
    return [finding.rule_id for finding in findings_for(source, path)]


class TestRegistry:
    def test_unit_rule_ids_are_registered(self):
        ids = set(rule_ids())
        for rule_id in unit_rule_ids():
            assert rule_id in ids

    def test_eight_unit_rules(self):
        assert len(unit_rule_ids()) == 8


class TestRep200ArithmeticMismatch:
    def test_bytes_plus_cycles_flagged(self):
        assert "REP200" in ids_for(
            """
            def _mix(size: Bytes, wait: Cycles) -> float:
                return size + wait
            """
        )

    def test_same_unit_addition_allowed(self):
        assert "REP200" not in ids_for(
            """
            def _total(first: Bytes, second: Bytes) -> Bytes:
                return Bytes(first + second)
            """
        )

    def test_scalar_plus_unit_allowed(self):
        assert "REP200" not in ids_for(
            """
            def _pad(size: Bytes, extra: float) -> float:
                return size + extra
            """
        )

    def test_noqa_suppresses(self):
        assert "REP200" not in ids_for(
            """
            def _mix(size: Bytes, wait: Cycles) -> float:
                return size + wait  # repro: noqa(REP200)
            """
        )


class TestRep201ComparisonMismatch:
    def test_bytes_less_than_cycles_flagged(self):
        assert "REP201" in ids_for(
            """
            def _cmp(size: Bytes, wait: Cycles) -> bool:
                return size < wait
            """
        )

    def test_min_across_units_flagged(self):
        assert "REP201" in ids_for(
            """
            def _first(size: Bytes, wait: Cycles) -> float:
                return min(size, wait)
            """
        )

    def test_same_unit_comparison_allowed(self):
        assert "REP201" not in ids_for(
            """
            def _cmp(first: Cycles, second: Cycles) -> bool:
                return first < second
            """
        )

    def test_noqa_suppresses(self):
        assert "REP201" not in ids_for(
            """
            def _cmp(size: Bytes, wait: Cycles) -> bool:
                return size < wait  # repro: noqa(REP201)
            """
        )


class TestRep202DimensionWrongMul:
    def test_bytes_times_bytes_flagged(self):
        assert "REP202" in ids_for(
            """
            def _area(first: Bytes, second: Bytes) -> float:
                return first * second
            """
        )

    def test_rate_times_cycles_allowed(self):
        assert "REP202" not in ids_for(
            """
            def _moved(rate: BytesPerCycle, wait: Cycles) -> Bytes:
                return Bytes(rate * wait)
            """
        )

    def test_scalar_scaling_allowed(self):
        assert "REP202" not in ids_for(
            """
            def _scaled(size: Bytes, factor: float) -> float:
                return size * factor
            """
        )

    def test_noqa_suppresses(self):
        assert "REP202" not in ids_for(
            """
            def _area(first: Bytes, second: Bytes) -> float:
                return first * second  # repro: noqa(REP202)
            """
        )


class TestRep203DimensionWrongDiv:
    def test_cycles_over_bytes_per_cycle_flagged(self):
        assert "REP203" in ids_for(
            """
            def _odd(wait: Cycles, rate: BytesPerCycle) -> float:
                return wait / rate
            """
        )

    def test_bytes_over_rate_allowed(self):
        assert "REP203" not in ids_for(
            """
            def _occupancy(size: Bytes, rate: BytesPerCycle) -> Cycles:
                return Cycles(size / rate)
            """
        )

    def test_ratio_of_same_unit_allowed(self):
        assert "REP203" not in ids_for(
            """
            def _utilization(busy: Cycles, elapsed: Cycles) -> float:
                return busy / elapsed
            """
        )

    def test_noqa_suppresses(self):
        assert "REP203" not in ids_for(
            """
            def _odd(wait: Cycles, rate: BytesPerCycle) -> float:
                return wait / rate  # repro: noqa(REP203)
            """
        )


class TestRep204AngleConfusion:
    def test_degrees_plus_radians_flagged(self):
        ids = ids_for(
            """
            def _sum(tilt: Degrees, threshold: Radians) -> float:
                return tilt + threshold
            """
        )
        assert "REP204" in ids
        assert "REP200" not in ids  # upgraded, not double-reported

    def test_trig_on_degrees_flagged(self):
        assert "REP204" in ids_for(
            """
            import math

            def _project(tilt: Degrees) -> float:
                return math.sin(tilt)
            """
        )

    def test_double_conversion_flagged(self):
        assert "REP204" in ids_for(
            """
            import math

            def _convert(threshold: Radians) -> float:
                return math.radians(threshold)
            """
        )

    def test_trig_on_radians_allowed(self):
        assert "REP204" not in ids_for(
            """
            import math

            def _project(threshold: Radians) -> float:
                return math.sin(threshold)
            """
        )

    def test_noqa_suppresses(self):
        assert "REP204" not in ids_for(
            """
            def _sum(tilt: Degrees, threshold: Radians) -> float:
                return tilt + threshold  # repro: noqa(REP204)
            """
        )


class TestRep205UntaggedQuantity:
    def test_unit_named_param_without_alias_flagged(self):
        assert "REP205" in ids_for(
            """
            def serve(latency: float) -> None:
                pass
            """
        )

    def test_alias_annotation_satisfies(self):
        assert "REP205" not in ids_for(
            """
            def serve(latency: Cycles) -> None:
                pass
            """
        )

    def test_private_function_exempt(self):
        assert "REP205" not in ids_for(
            """
            def _serve(latency: float) -> None:
                pass
            """
        )

    def test_untagged_package_exempt(self):
        assert "REP205" not in ids_for(
            """
            def serve(latency: float) -> None:
                pass
            """,
            path="src/repro/workloads/example.py",
        )

    def test_noqa_suppresses(self):
        assert "REP205" not in ids_for(
            """
            def serve(latency: float) -> None:  # repro: noqa(REP205)
                pass
            """
        )


class TestRep206CallUnitMismatch:
    def test_bytes_passed_for_cycles_flagged(self):
        assert "REP206" in ids_for(
            """
            def _serve(arrival: Cycles) -> Cycles:
                return arrival

            def _caller(size: Bytes) -> Cycles:
                return _serve(size)
            """
        )

    def test_matching_unit_allowed(self):
        assert "REP206" not in ids_for(
            """
            def _serve(arrival: Cycles) -> Cycles:
                return arrival

            def _caller(now: Cycles) -> Cycles:
                return _serve(now)
            """
        )

    def test_noqa_suppresses(self):
        assert "REP206" not in ids_for(
            """
            def _serve(arrival: Cycles) -> Cycles:
                return arrival

            def _caller(size: Bytes) -> Cycles:
                return _serve(size)  # repro: noqa(REP206)
            """
        )


class TestRep207DeclaredUnitMismatch:
    def test_returning_wrong_unit_flagged(self):
        assert "REP207" in ids_for(
            """
            def _elapsed(size: Bytes) -> Cycles:
                return size
            """
        )

    def test_annotated_assignment_mismatch_flagged(self):
        assert "REP207" in ids_for(
            """
            def _store(wait: Cycles) -> None:
                size: Bytes = wait
            """
        )

    def test_matching_return_allowed(self):
        assert "REP207" not in ids_for(
            """
            def _elapsed(wait: Cycles) -> Cycles:
                return wait
            """
        )

    def test_explicit_cast_allowed(self):
        assert "REP207" not in ids_for(
            """
            def _elapsed(size: Bytes, rate: BytesPerCycle) -> Cycles:
                return Cycles(size / rate)
            """
        )

    def test_noqa_suppresses(self):
        assert "REP207" not in ids_for(
            """
            def _elapsed(size: Bytes) -> Cycles:
                return size  # repro: noqa(REP207)
            """
        )
