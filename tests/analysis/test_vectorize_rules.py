"""Positive/negative/noqa fixtures for the REP400-series vectorize rules.

Each rule gets at least one planted violation that must fire, one
correct variant that must stay silent, and a ``# repro: noqa(...)``
suppression check.  The reachability fixtures exercise the shared
call-graph model: a scalar loop fires only when its function is
reachable from ``simulate_frame`` / ``BatchSampler`` / the rasterizer
entry points, including across files.  The profile-guided tests rank
findings against a synthetic ``repro-run-manifest/1`` span tree and
check the annotations survive the SARIF round-trip.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.baseline import load_baseline
from repro.analysis.cli import main as analysis_main
from repro.analysis.findings import Finding
from repro.analysis.hotspots import (
    SpanProfile,
    enclosing_function,
    rank_findings,
)
from repro.analysis.linter import lint_source, lint_sources
from repro.analysis.rules import rule_catalog, rule_ids
from repro.analysis.sarif import findings_to_sarif
from repro.analysis.vectorize import (
    VECTORIZE_RULE_TABLE,
    vectorize_rule_ids,
)

SIM_PATH = "src/repro/sim/example.py"


def findings_for(source: str, path: str = SIM_PATH):
    return lint_source(textwrap.dedent(source), path)


def ids_for(source: str, path: str = SIM_PATH):
    return [finding.rule_id for finding in findings_for(source, path)]


def vec_findings(source: str, path: str = SIM_PATH):
    return [finding for finding in findings_for(source, path)
            if finding.rule_id.startswith("REP4")]


class TestRegistry:
    def test_vectorize_rule_ids_are_registered(self):
        ids = set(rule_ids())
        for rule_id in vectorize_rule_ids():
            assert rule_id in ids

    def test_five_vectorize_rules(self):
        assert vectorize_rule_ids() == [
            "REP400", "REP401", "REP402", "REP403", "REP404",
        ]

    def test_catalog_has_descriptions(self):
        catalog = {rule_id: desc for rule_id, _name, desc in rule_catalog()}
        for rule_id, _name, description in VECTORIZE_RULE_TABLE:
            assert catalog[rule_id] == description


class TestHotPathReachability:
    def test_loop_in_unreachable_function_is_silent(self):
        assert "REP400" not in ids_for(
            """
            import numpy as np

            def cold_helper(values: np.ndarray) -> float:
                total = 0.0
                for value in values:
                    total = total + value
                return total
            """
        )

    def test_loop_reachable_from_simulate_frame_fires(self):
        assert "REP400" in ids_for(
            """
            import numpy as np

            def simulate_frame(values: np.ndarray) -> float:
                return accumulate(values)

            def accumulate(values: np.ndarray) -> float:
                total = 0.0
                for value in values:
                    total = total + value
                return total
            """
        )

    def test_reachability_crosses_files(self):
        entry = textwrap.dedent(
            """
            from repro.sim.helper import accumulate

            def simulate_frame(values):
                return accumulate(values)
            """
        )
        helper = textwrap.dedent(
            """
            import numpy as np

            def accumulate(values: np.ndarray) -> float:
                total = 0.0
                for value in values:
                    total = total + value
                return total
            """
        )
        findings = lint_sources([
            ("src/repro/sim/entry.py", entry),
            ("src/repro/sim/helper.py", helper),
        ])
        assert "REP400" in [finding.rule_id for finding in findings]

    def test_batch_sampler_methods_are_hot(self):
        assert "REP400" in ids_for(
            """
            import numpy as np

            class BatchSampler:
                def sample(self, lods: np.ndarray) -> list:
                    out = []
                    for lod in lods:
                        out.append(lod * 2.0)
                    return out
            """
        )


class TestRep400ScalarLoop:
    def test_fragment_hint_loop_fires(self):
        assert "REP400" in ids_for(
            """
            def simulate_frame(trace) -> int:
                shaded = 0
                for fragment in trace.fragments:
                    shaded = shaded + 1
                return shaded
            """
        )

    def test_zip_of_ndarrays_fires(self):
        assert "REP400" in ids_for(
            """
            import numpy as np

            def simulate_frame(rows: np.ndarray, cols: np.ndarray) -> int:
                hits = 0
                for row, col in zip(rows, cols):
                    hits = hits + 1
                return hits
            """
        )

    def test_range_len_over_ndarray_fires(self):
        assert "REP400" in ids_for(
            """
            import numpy as np

            def simulate_frame(values: np.ndarray) -> int:
                touched = 0
                for index in range(len(values)):
                    touched = touched + 1
                return touched
            """
        )

    def test_event_queue_while_loop_fires(self):
        assert "REP400" in ids_for(
            """
            def simulate_frame(events: list) -> int:
                drained = 0
                while events:
                    events.pop()
                    drained = drained + 1
                return drained
            """
        )

    def test_plain_list_loop_is_silent(self):
        assert "REP400" not in ids_for(
            """
            def simulate_frame(designs: list) -> int:
                configured = 0
                for design in designs:
                    configured = configured + 1
                return configured
            """
        )

    def test_noqa_suppresses_rep400(self):
        assert "REP400" not in ids_for(
            """
            import numpy as np

            def simulate_frame(values: np.ndarray) -> float:
                total = 0.0
                for value in values:  # repro: noqa(REP400) -- ordered oracle accumulation
                    total = total + value
                return total
            """
        )


class TestRep401ScalarMath:
    def test_exact_twin_mentions_bit_identical(self):
        findings = vec_findings(
            """
            import math
            import numpy as np

            def simulate_frame(values: np.ndarray) -> list:
                out = []
                for value in values:
                    out.append(math.floor(value))
                return out
            """
        )
        messages = [finding.message for finding in findings
                    if finding.rule_id == "REP401"]
        assert messages and "bit-identical" in messages[0]

    def test_transcendental_demands_parity_check(self):
        findings = vec_findings(
            """
            import math
            import numpy as np

            def simulate_frame(values: np.ndarray) -> list:
                out = []
                for value in values:
                    out.append(math.acos(value))
                return out
            """
        )
        messages = [finding.message for finding in findings
                    if finding.rule_id == "REP401"]
        assert messages and "parity" in messages[0]

    def test_math_in_element_comprehension_fires(self):
        assert "REP401" in ids_for(
            """
            import math
            import numpy as np

            def simulate_frame(values: np.ndarray) -> list:
                return [math.sin(value) for value in values]
            """
        )

    def test_math_outside_loop_is_silent(self):
        assert "REP401" not in ids_for(
            """
            import math

            def simulate_frame(angle: float) -> float:
                return math.acos(angle)
            """
        )

    def test_noqa_suppresses_rep401(self):
        assert "REP401" not in ids_for(
            """
            import math
            import numpy as np

            def simulate_frame(values: np.ndarray) -> list:
                out = []
                for value in values:
                    out.append(math.acos(value))  # repro: noqa(REP400,REP401) -- parity forbids np.arccos here
                return out
            """
        )


class TestRep402DtypeCreep:
    def test_untyped_alloc_in_float32_function_fires(self):
        assert "REP402" in ids_for(
            """
            import numpy as np

            def simulate_frame(count: int):
                buffer = np.zeros(count, dtype=np.float32)
                scale = np.ones(count)
                return buffer * scale
            """
        )

    def test_typed_allocs_are_silent(self):
        assert "REP402" not in ids_for(
            """
            import numpy as np

            def simulate_frame(count: int):
                buffer = np.zeros(count, dtype=np.float32)
                scale = np.ones(count, dtype=np.float32)
                return buffer * scale
            """
        )

    def test_float_broadcast_into_float32_fires(self):
        assert "REP402" in ids_for(
            """
            import numpy as np

            def simulate_frame(count: int):
                buffer = np.zeros(count, dtype=np.float32)
                buffer += 0.5
                return buffer
            """
        )

    def test_untyped_alloc_without_float32_context_is_silent(self):
        assert "REP402" not in ids_for(
            """
            import numpy as np

            def simulate_frame(count: int):
                return np.ones(count)
            """
        )

    def test_noqa_suppresses_rep402(self):
        assert "REP402" not in ids_for(
            """
            import numpy as np

            def simulate_frame(count: int):
                buffer = np.zeros(count, dtype=np.float32)
                scale = np.ones(count)  # repro: noqa(REP402) -- feeds a float64 reduction on purpose
                return buffer * scale
            """
        )


class TestRep403AllocationInLoop:
    def test_constructor_in_loop_fires(self):
        assert "REP403" in ids_for(
            """
            import numpy as np

            def simulate_frame(count: int) -> list:
                chunks = []
                for _ in range(count):
                    chunks.append(np.zeros(16))
                return chunks
            """
        )

    def test_hoisted_constructor_is_silent(self):
        assert "REP403" not in ids_for(
            """
            import numpy as np

            def simulate_frame(count: int):
                chunk = np.zeros(16)
                for _ in range(count):
                    chunk = chunk + 1.0
                return chunk
            """
        )

    def test_append_then_convert_fires_at_conversion(self):
        findings = vec_findings(
            """
            import numpy as np

            def simulate_frame(values: np.ndarray):
                collected = []
                for value in values:
                    collected.append(value * 2.0)
                return np.array(collected)
            """
        )
        rep403 = [finding for finding in findings
                  if finding.rule_id == "REP403"]
        assert rep403 and "collected" in rep403[0].message

    def test_noqa_suppresses_rep403(self):
        assert "REP403" not in ids_for(
            """
            import numpy as np

            def simulate_frame(count: int) -> list:
                chunks = []
                for _ in range(count):
                    chunks.append(np.zeros(16))  # repro: noqa(REP403) -- count is O(mip levels), not O(texels)
                return chunks
            """
        )


class TestRep404BitIdentityHazard:
    def test_np_sum_over_array_fires(self):
        assert "REP404" in ids_for(
            """
            import numpy as np

            def simulate_frame(values: np.ndarray) -> float:
                return float(np.sum(values))
            """
        )

    def test_np_sum_over_bool_mask_is_silent(self):
        assert "REP404" not in ids_for(
            """
            import numpy as np

            def simulate_frame(values: np.ndarray) -> int:
                mask = values > 0.0
                return int(np.sum(mask))
            """
        )

    def test_method_sum_over_array_fires(self):
        assert "REP404" in ids_for(
            """
            import numpy as np

            def simulate_frame(values: np.ndarray) -> float:
                return float(values.sum())
            """
        )

    def test_inplace_update_of_view_fires(self):
        assert "REP404" in ids_for(
            """
            import numpy as np

            def simulate_frame(values: np.ndarray):
                flat = values.reshape(-1)
                flat += 1.0
                return values
            """
        )

    def test_scatter_through_index_array_fires(self):
        assert "REP404" in ids_for(
            """
            import numpy as np

            def simulate_frame(values: np.ndarray, depth: np.ndarray):
                rows, cols = np.nonzero(values)
                depth[rows, cols] = 0.0
            """
        )

    def test_scatter_through_bool_mask_is_silent(self):
        assert "REP404" not in ids_for(
            """
            import numpy as np

            def simulate_frame(values: np.ndarray):
                mask = values > 0.0
                values[mask] = 0.0
                return values
            """
        )

    def test_inplace_scatter_mentions_add_at(self):
        findings = vec_findings(
            """
            import numpy as np

            def simulate_frame(values: np.ndarray, depth: np.ndarray):
                rows, cols = np.nonzero(values)
                depth[rows, cols] += 1.0
            """
        )
        messages = [finding.message for finding in findings
                    if finding.rule_id == "REP404"]
        assert messages and "np.add.at" in messages[0]

    def test_noqa_suppresses_rep404(self):
        assert "REP404" not in ids_for(
            """
            import numpy as np

            def simulate_frame(values: np.ndarray) -> float:
                return float(np.sum(values))  # repro: noqa(REP404) -- oracle updated in lockstep, parity-tested
            """
        )


HOT_FIXTURE = textwrap.dedent(
    """
    import numpy as np

    def simulate_frame(values: np.ndarray) -> float:
        total = 0.0
        for value in values:
            total = total + value
        try:
            return total
        except:
            return 0.0
    """
)


def _write_fixture(tmp_path: Path) -> Path:
    target = tmp_path / "src" / "repro" / "sim" / "hot.py"
    target.parent.mkdir(parents=True)
    target.write_text(HOT_FIXTURE, encoding="utf-8")
    return target


class TestSelectBaselineInteraction:
    def test_selected_write_preserves_other_families(self, tmp_path, capsys):
        fixture = _write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"

        # Freeze everything: the fixture has REP104 (bare except) and
        # REP400 (scalar hot loop) findings.
        assert analysis_main(
            ["lint", str(fixture), "--write-baseline", str(baseline)]
        ) == 0
        families = {key[0] for key in load_baseline(baseline)}
        assert "REP104" in families and "REP400" in families

        # Re-freezing just the REP4 family must not clobber REP104.
        assert analysis_main(
            ["lint", str(fixture), "--select", "REP4",
             "--write-baseline", str(baseline)]
        ) == 0
        families = {key[0] for key in load_baseline(baseline)}
        assert "REP104" in families and "REP400" in families

        # ... so a full baselined run still suppresses everything
        # (the old clobbering behavior resurrected REP104 here).
        assert analysis_main(
            ["lint", str(fixture), "--baseline", str(baseline)]
        ) == 0
        capsys.readouterr()

    def test_selected_run_scopes_loaded_baseline(self, tmp_path, capsys):
        fixture = _write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert analysis_main(
            ["lint", str(fixture), "--write-baseline", str(baseline)]
        ) == 0
        assert analysis_main(
            ["lint", str(fixture), "--select", "REP4",
             "--baseline", str(baseline)]
        ) == 0
        capsys.readouterr()


SYNTHETIC_SPANS = [
    {
        "name": "repro.sim.hot.simulate_frame",
        "span_id": 1,
        "parent_id": None,
        "start_wall": 0.0,
        "duration": 8.0,
        "attributes": {},
        "stats": {},
        "children": [
            {
                "name": "sim.hot.leaf_stage",
                "span_id": 2,
                "parent_id": 1,
                "start_wall": 0.5,
                "duration": 2.0,
                "attributes": {},
                "stats": {},
                "children": [],
            }
        ],
    },
    {
        "name": "report.generate",
        "span_id": 3,
        "parent_id": None,
        "start_wall": 9.0,
        "duration": 2.0,
        "attributes": {},
        "stats": {},
        "children": [],
    },
]

RANKING_SOURCE = textwrap.dedent(
    """
    import numpy as np

    def simulate_frame(values: np.ndarray) -> float:
        total = 0.0
        for value in values:
            total = total + value
        return leaf_stage(values)

    def leaf_stage(values: np.ndarray) -> float:
        out = 0.0
        for value in values:
            out = out + value
        return out
    """
)

# A hot entry point in a module that shares no dotted segments with the
# synthetic spans: its finding must stay unranked (properties=None).
UNPROFILED_SOURCE = textwrap.dedent(
    """
    import numpy as np

    def rasterize_scene(values: np.ndarray) -> float:
        acc = 0.0
        for value in values:
            acc = acc + value
        return acc
    """
)
UNPROFILED_PATH = "src/repro/perf/extra.py"


def _write_manifest(tmp_path: Path) -> Path:
    manifest = tmp_path / "run.manifest.json"
    manifest.write_text(json.dumps({
        "schema": "repro-run-manifest/1",
        "command": "report",
        "config": {},
        "digest": "0" * 16,
        "source": "test",
        "created_unix": 0.0,
        "tracing": True,
        "cache": {},
        "spans": SYNTHETIC_SPANS,
        "stats": {},
        "faults": {},
    }), encoding="utf-8")
    return manifest


class TestProfileGuidedRanking:
    def test_enclosing_function_resolution(self):
        assert enclosing_function(RANKING_SOURCE, 6) == "simulate_frame"
        assert enclosing_function(RANKING_SOURCE, 12) == "leaf_stage"
        assert enclosing_function(RANKING_SOURCE, 1) is None

    def test_rank_findings_orders_hottest_first(self):
        profile = SpanProfile(SYNTHETIC_SPANS)
        path = "src/repro/sim/hot.py"
        findings = [
            Finding("REP400", UNPROFILED_PATH, 6, 4, "unprofiled loop"),
            Finding("REP400", path, 12, 4, "leaf loop"),
            Finding("REP400", path, 6, 4, "frame loop"),
        ]
        ranked = rank_findings(findings, profile,
                               sources={path: RANKING_SOURCE,
                                        UNPROFILED_PATH: UNPROFILED_SOURCE})
        assert [finding.message for finding in ranked] == [
            "frame loop", "leaf loop", "unprofiled loop",
        ]
        frame, leaf, unprofiled = ranked
        # Root total is 8 + 2 = 10s: the frame span is 8/10, the leaf
        # stage 2/10, and the unmatched finding carries no annotation.
        assert frame.properties["profile"]["share"] == 0.8
        assert frame.properties["profile"]["span"] == \
            "repro.sim.hot.simulate_frame"
        assert leaf.properties["profile"]["share"] == 0.2
        assert unprofiled.properties is None

    def test_cli_profile_ranks_hottest_first(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "sim" / "hot.py"
        target.parent.mkdir(parents=True)
        target.write_text(RANKING_SOURCE, encoding="utf-8")
        extra = tmp_path / "src" / "repro" / "perf" / "extra.py"
        extra.parent.mkdir(parents=True)
        extra.write_text(UNPROFILED_SOURCE, encoding="utf-8")
        manifest = _write_manifest(tmp_path)
        output = tmp_path / "findings.json"
        rc = analysis_main([
            "lint", str(target), str(extra), "--select", "REP4",
            "--profile", str(manifest),
            "--format", "json", "--output", str(output),
        ])
        capsys.readouterr()
        assert rc == 1
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert len(payload) == 3
        shares = [entry.get("properties", {}).get("profile", {}).get("share")
                  for entry in payload]
        assert shares[0] == 0.8 and shares[1] == 0.2 and shares[2] is None

    def test_sarif_round_trip_keeps_property_bag(self):
        profile = SpanProfile(SYNTHETIC_SPANS)
        path = "src/repro/sim/hot.py"
        findings = rank_findings(
            [Finding("REP400", path, 6, 4, "frame loop"),
             Finding("REP400", UNPROFILED_PATH, 6, 4, "unprofiled loop")],
            profile, sources={path: RANKING_SOURCE,
                              UNPROFILED_PATH: UNPROFILED_SOURCE},
        )
        log = findings_to_sarif(findings, rule_catalog())
        results = log["runs"][0]["results"]
        assert results[0]["properties"]["profile"]["share"] == 0.8
        assert "properties" not in results[1]

    def test_profile_annotation_does_not_change_identity(self):
        profile = SpanProfile(SYNTHETIC_SPANS)
        path = "src/repro/sim/hot.py"
        bare = Finding("REP400", path, 6, 4, "frame loop")
        ranked = rank_findings([bare], profile,
                               sources={path: RANKING_SOURCE})
        assert ranked[0] == bare  # properties excluded from equality
