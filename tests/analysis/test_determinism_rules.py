"""Positive/negative/noqa fixtures for the REP300-series determinism rules.

Each rule gets at least one planted violation that must fire, one
correct variant that must stay silent, and a ``# repro: noqa(...)``
suppression check.  The cross-file fixtures exercise the call-graph
model: worker reachability planted through ``FanoutTask`` references
and nondeterminism taint propagated through a helper defined in a
*different* module.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.baseline import (
    filter_new,
    load_baseline,
    write_baseline,
)
from repro.analysis.cli import main as analysis_main
from repro.analysis.determinism import (
    DETERMINISM_RULE_TABLE,
    determinism_rule_ids,
    static_determinism_attestation,
)
from repro.analysis.findings import Finding
from repro.analysis.linter import lint_paths, lint_source, lint_sources
from repro.analysis.rules import rule_catalog, rule_ids
from repro.analysis.sarif import findings_to_sarif

SIM_PATH = "src/repro/sim/example.py"

REPO_ROOT = Path(__file__).resolve().parents[2]


def findings_for(source: str, path: str = SIM_PATH):
    return lint_source(textwrap.dedent(source), path)


def ids_for(source: str, path: str = SIM_PATH):
    return [finding.rule_id for finding in findings_for(source, path)]


class TestRegistry:
    def test_determinism_rule_ids_are_registered(self):
        ids = set(rule_ids())
        for rule_id in determinism_rule_ids():
            assert rule_id in ids

    def test_five_determinism_rules(self):
        assert determinism_rule_ids() == [
            "REP300", "REP301", "REP302", "REP303", "REP304",
        ]

    def test_catalog_has_descriptions(self):
        catalog = {rule_id: desc for rule_id, _name, desc in rule_catalog()}
        for rule_id, _name, description in DETERMINISM_RULE_TABLE:
            assert catalog[rule_id] == description


class TestRep300NondeterminismTaint:
    def test_wall_clock_into_cache_key_flagged(self):
        assert "REP300" in ids_for(
            """
            import time
            from repro.obs.manifest import config_digest

            def keyed(config):
                stamp = time.time()
                return config_digest({"seed": 7, "stamp": stamp})
            """
        )

    def test_pure_config_key_allowed(self):
        assert "REP300" not in ids_for(
            """
            from repro.obs.manifest import config_digest

            def keyed(config):
                return config_digest({"seed": 7})
            """
        )

    def test_unsorted_iterdir_iteration_flagged(self):
        assert "REP300" in ids_for(
            """
            def artifacts(root, sink):
                for path in root.iterdir():
                    sink.store(path.name)
            """
        )

    def test_sorted_iterdir_iteration_allowed(self):
        assert "REP300" not in ids_for(
            """
            def artifacts(root, sink):
                for path in sorted(root.iterdir()):
                    sink.store(path.name)
            """
        )

    def test_set_iteration_order_into_task_payload_flagged(self):
        assert "REP300" in ids_for(
            """
            from repro.faults import FanoutTask

            def build_tasks(names):
                pending = set(names)
                return [FanoutTask(key=name, fn=print, args=(name,))
                        for name in pending]
            """
        )

    def test_noqa_suppresses_rep300(self):
        assert "REP300" not in ids_for(
            """
            import time
            from repro.obs.manifest import config_digest

            def keyed(config):
                stamp = time.time()  # repro: noqa(REP102) -- fixture
                return config_digest({"stamp": stamp})  # repro: noqa(REP300) -- fixture
            """
        )


class TestRep301WorkerGlobalMutation:
    def test_append_to_module_list_in_worker_flagged(self):
        assert "REP301" in ids_for(
            """
            _RESULTS = []

            def run_fanout(tasks):
                _RESULTS.append(tasks)
            """
        )

    def test_global_rebind_in_worker_flagged(self):
        assert "REP301" in ids_for(
            """
            _COUNT = 0

            def run_fanout(tasks):
                global _COUNT
                _COUNT += 1
            """
        )

    def test_mutation_outside_worker_paths_allowed(self):
        assert "REP301" not in ids_for(
            """
            _RESULTS = []

            def parent_only(tasks):
                _RESULTS.append(tasks)
            """
        )

    def test_local_shadow_allowed(self):
        assert "REP301" not in ids_for(
            """
            _RESULTS = []

            def run_fanout(tasks):
                _RESULTS = list(tasks)
                _RESULTS.append(None)
                return _RESULTS
            """
        )

    def test_noqa_suppresses_rep301(self):
        assert "REP301" not in ids_for(
            """
            _RESULTS = []

            def run_fanout(tasks):
                _RESULTS.append(tasks)  # repro: noqa(REP301) -- fixture
            """
        )


class TestRep302UnpicklableTask:
    def test_lambda_task_flagged(self):
        assert "REP302" in ids_for(
            """
            from repro.faults import FanoutTask, run_fanout

            def launch():
                return run_fanout([FanoutTask(key=0, fn=lambda: 1)])
            """
        )

    def test_nested_function_submit_flagged(self):
        assert "REP302" in ids_for(
            """
            def launch(executor, tasks):
                def work(task):
                    return task
                return [executor.submit(work, task) for task in tasks]
            """
        )

    def test_module_level_function_allowed(self):
        assert "REP302" not in ids_for(
            """
            from repro.faults import FanoutTask, run_fanout

            def work(task):
                return task

            def launch(tasks):
                return run_fanout(
                    [FanoutTask(key=0, fn=work, args=(tasks,))]
                )
            """
        )

    def test_noqa_suppresses_rep302(self):
        assert "REP302" not in ids_for(
            """
            from repro.faults import FanoutTask, run_fanout

            def launch():
                return run_fanout([FanoutTask(key=0, fn=lambda: 1)])  # repro: noqa(REP302) -- fixture
            """
        )


class TestRep303OrderSensitiveReduction:
    def test_sum_over_parallel_values_flagged(self):
        assert "REP303" in ids_for(
            """
            from repro.faults import run_fanout

            def total(tasks):
                results, report = run_fanout(tasks)
                return sum(results.values())
            """
        )

    def test_loop_over_parallel_items_flagged(self):
        assert "REP303" in ids_for(
            """
            from repro.faults import run_fanout

            def total(tasks):
                results, report = run_fanout(tasks)
                acc = 0.0
                for key, value in results.items():
                    acc += value
                return acc
            """
        )

    def test_key_ordered_reduction_allowed(self):
        assert "REP303" not in ids_for(
            """
            from repro.faults import run_fanout

            def total(tasks, keys):
                results, report = run_fanout(tasks)
                return sum(results[key] for key in keys)
            """
        )

    def test_sorted_values_allowed(self):
        assert "REP303" not in ids_for(
            """
            from repro.faults import run_fanout

            def total(tasks):
                results, report = run_fanout(tasks)
                return sum(sorted(results.values()))
            """
        )

    def test_noqa_suppresses_rep303(self):
        assert "REP303" not in ids_for(
            """
            from repro.faults import run_fanout

            def total(tasks):
                results, report = run_fanout(tasks)
                return sum(results.values())  # repro: noqa(REP303) -- fixture
            """
        )


class TestRep304WorkerEnvRead:
    def test_environ_get_in_worker_flagged(self):
        assert "REP304" in ids_for(
            """
            import os

            def run_fanout(tasks):
                return os.environ.get("REPRO_MODE")
            """
        )

    def test_environ_subscript_in_worker_flagged(self):
        assert "REP304" in ids_for(
            """
            import os

            def run_many(tasks):
                return os.environ["REPRO_MODE"]
            """
        )

    def test_env_read_outside_worker_paths_allowed(self):
        assert "REP304" not in ids_for(
            """
            import os

            def parent_only():
                return os.environ.get("REPRO_MODE")
            """
        )

    def test_noqa_suppresses_rep304(self):
        assert "REP304" not in ids_for(
            """
            import os

            def run_fanout(tasks):
                return os.environ.get("REPRO_MODE")  # repro: noqa(REP304) -- fixture
            """
        )


class TestCallGraphModel:
    """Reachability and taint must flow through the call graph, not just
    fire on syntactically local patterns."""

    def test_reachability_planted_through_fanout_task(self):
        # ``helper`` is never named run_fanout/run_many; it is reachable
        # only because ``worker`` is submitted via FanoutTask and calls it.
        findings = findings_for(
            """
            import os
            from repro.faults import FanoutTask, run_fanout

            def helper():
                return os.environ.get("REPRO_MODE")

            def worker(task):
                return helper()

            def launch(tasks):
                return run_fanout(
                    [FanoutTask(key=0, fn=worker, args=(tasks,))]
                )
            """
        )
        assert any(
            f.rule_id == "REP304" and "'helper'" in f.message
            for f in findings
        )

    def test_taint_propagates_across_modules(self):
        jitter_src = textwrap.dedent(
            """
            import time

            def jitter():
                return time.time()  # repro: noqa(REP102) -- fixture
            """
        )
        build_src = textwrap.dedent(
            """
            from repro.obs.manifest import config_digest
            from repro.sim.jitter_mod import jitter

            def build(config):
                return config_digest({"seed": 7, "stamp": jitter()})
            """
        )
        findings = lint_sources([
            ("src/repro/sim/jitter_mod.py", jitter_src),
            ("src/repro/sim/build_mod.py", build_src),
        ])
        rep300 = [f for f in findings if f.rule_id == "REP300"]
        assert rep300
        assert all(f.path == "src/repro/sim/build_mod.py" for f in rep300)

    def test_deterministic_helper_not_tainted(self):
        helper_src = textwrap.dedent(
            """
            def stamp():
                return 7
            """
        )
        build_src = textwrap.dedent(
            """
            from repro.obs.manifest import config_digest
            from repro.sim.helper_mod import stamp

            def build(config):
                return config_digest({"seed": stamp()})
            """
        )
        findings = lint_sources([
            ("src/repro/sim/helper_mod.py", helper_src),
            ("src/repro/sim/build_mod.py", build_src),
        ])
        assert not [f for f in findings if f.rule_id == "REP300"]


class TestSarifRoundTrip:
    def test_rep3_findings_serialize_and_catalog(self):
        findings = findings_for(
            """
            import os

            def run_fanout(tasks):
                return os.environ.get("REPRO_MODE")
            """
        )
        rep3 = [f for f in findings if f.rule_id.startswith("REP3")]
        assert rep3
        sarif = findings_to_sarif(rep3, rule_catalog())
        run = sarif["runs"][0]
        rule_entries = {r["id"] for r in run["tool"]["driver"]["rules"]}
        for rule_id in determinism_rule_ids():
            assert rule_id in rule_entries
        result_ids = {r["ruleId"] for r in run["results"]}
        assert result_ids == {"REP304"}
        for result in run["results"]:
            index = result["ruleIndex"]
            assert run["tool"]["driver"]["rules"][index]["id"] \
                == result["ruleId"]


class TestParallelLint:
    def test_parallel_findings_identical_to_serial(self):
        target = REPO_ROOT / "src" / "repro" / "analysis"
        serial = lint_paths([target])
        fanned = lint_paths([target], jobs=2)
        assert fanned == serial


class TestAttestation:
    def test_installed_tree_attests_clean(self):
        attestation = static_determinism_attestation()
        assert attestation["schema"] == "repro-static-determinism/1"
        assert attestation["rules"] == determinism_rule_ids()
        assert attestation["clean"] is True
        assert attestation["findings"] == []


class TestBaseline:
    def _finding(self, rule_id="REP304", line=4,
                 path="src/repro/sim/example.py", message="env read"):
        return Finding(rule_id=rule_id, path=path, line=line, column=5,
                       message=message)

    def test_round_trip_suppresses_known(self, tmp_path):
        findings = [self._finding(), self._finding(rule_id="REP301",
                                                   message="mutation")]
        path = write_baseline(findings, tmp_path / "base.json")
        baseline = load_baseline(path)
        assert filter_new(findings, baseline) == []

    def test_line_moves_do_not_invalidate(self, tmp_path):
        path = write_baseline([self._finding(line=4)],
                              tmp_path / "base.json")
        moved = self._finding(line=40)
        assert filter_new([moved], load_baseline(path)) == []

    def test_second_occurrence_is_new(self, tmp_path):
        path = write_baseline([self._finding()], tmp_path / "base.json")
        doubled = [self._finding(line=4), self._finding(line=9)]
        fresh = filter_new(doubled, load_baseline(path))
        assert len(fresh) == 1
        assert fresh[0].line == 9

    def test_unknown_finding_is_new(self, tmp_path):
        path = write_baseline([self._finding()], tmp_path / "base.json")
        other = self._finding(rule_id="REP300", message="taint")
        assert filter_new([other], load_baseline(path)) == [other]

    def test_cli_write_then_gate(self, tmp_path, capsys):
        planted = tmp_path / "src" / "repro" / "sim"
        planted.mkdir(parents=True)
        bad = planted / "bad.py"
        bad.write_text(textwrap.dedent(
            """
            import os

            def run_fanout(tasks):
                return os.environ.get("REPRO_MODE")
            """
        ), encoding="utf-8")
        base = tmp_path / "lint-baseline.json"

        assert analysis_main(["lint", str(bad)]) == 1
        capsys.readouterr()
        assert analysis_main(
            ["lint", str(bad), "--write-baseline", str(base)]
        ) == 0
        capsys.readouterr()
        assert analysis_main(["lint", str(bad), "--baseline", str(base)]) == 0
        out = capsys.readouterr()
        assert "clean" in out.out
        assert "suppressed" in out.err

    def test_cli_rejects_missing_baseline(self, tmp_path):
        assert analysis_main(
            ["lint", str(REPO_ROOT / "src" / "repro" / "analysis"),
             "--baseline", str(tmp_path / "nope.json")]
        ) == 2
