"""Unit tests for the runtime invariant checker, one per invariant."""

from __future__ import annotations

import copy
from dataclasses import dataclass

import pytest

from repro.analysis import invariants
from repro.analysis.invariants import (
    InvariantError,
    check_energy_breakdown,
    check_run,
    checks_enabled,
    invariant_names,
)
from repro.core import Design
from repro.energy.model import EnergyBreakdown
from repro.memory.traffic import TrafficClass


def violated(run, name):
    """The messages a given invariant produced for ``run``."""
    return [
        violation
        for violation in check_run(run, raise_on_violation=False)
        if violation.invariant == name
    ]


class TestRegistry:
    def test_at_least_four_invariants_registered(self):
        names = invariant_names()
        assert len(set(names)) >= 4

    def test_expected_invariants_present(self):
        names = set(invariant_names())
        assert {"texel-balance", "traffic-balance", "clock-monotonic",
                "energy-conserved", "cache-sanity"} <= names


class TestCleanRuns:
    def test_all_designs_drain_clean(self, design_runs):
        for design, run in design_runs.items():
            assert check_run(run, raise_on_violation=False) == [], design

    def test_raise_mode_passes_silently_when_clean(self, design_runs):
        check_run(design_runs[Design.A_TFIM])


class TestTexelBalance:
    def test_lost_completion_detected(self, design_runs):
        run = copy.deepcopy(design_runs[Design.BASELINE])
        run.frame.texture_latency.count -= 1  # repro: noqa(REP101) -- deliberately corrupting a copy
        messages = violated(run, "texel-balance")
        assert messages and "completions" in messages[0].message

    def test_unserved_request_detected(self, design_runs):
        run = copy.deepcopy(design_runs[Design.B_PIM])
        run.frame.path_activity.gpu_texture.requests -= 1
        assert violated(run, "texel-balance")

    def test_atfim_child_line_drift_detected(self, design_runs):
        run = copy.deepcopy(design_runs[Design.A_TFIM])
        run.path.child_lines_fetched += 1
        assert violated(run, "texel-balance")

    def test_atfim_parent_classification_drift_detected(self, design_runs):
        run = copy.deepcopy(design_runs[Design.A_TFIM])
        run.path.parent_reuses += 1
        assert violated(run, "texel-balance")


class TestTrafficBalance:
    def test_hmc_link_byte_symmetry(self, design_runs):
        run = copy.deepcopy(design_runs[Design.B_PIM])
        run.frame.traffic.external[TrafficClass.TEXTURE] += 64.0
        messages = violated(run, "traffic-balance")
        assert messages and "HMC links" in messages[0].message

    def test_internal_vault_byte_symmetry(self, design_runs):
        run = copy.deepcopy(design_runs[Design.S_TFIM])
        run.frame.traffic.internal[TrafficClass.TEXTURE] -= 64.0
        assert violated(run, "traffic-balance")

    def test_gddr5_bus_byte_symmetry(self, design_runs):
        run = copy.deepcopy(design_runs[Design.BASELINE])
        run.path.gddr5.bus.total_bytes += 64.0
        messages = violated(run, "traffic-balance")
        assert messages and "GDDR5" in messages[0].message

    def test_negative_byte_count_detected(self, design_runs):
        run = copy.deepcopy(design_runs[Design.BASELINE])
        run.frame.traffic.external[TrafficClass.GEOMETRY] = -1.0
        messages = violated(run, "traffic-balance")
        assert any("negative" in m.message for m in messages)


class TestClockMonotonic:
    def test_negative_stage_detected(self, design_runs):
        run = copy.deepcopy(design_runs[Design.BASELINE])
        run.frame.stages.rop = -1.0
        messages = violated(run, "clock-monotonic")
        assert any("negative duration" in m.message for m in messages)

    def test_overlap_rule_lower_bound(self, design_runs):
        run = copy.deepcopy(design_runs[Design.BASELINE])
        parts = [run.frame.stages.shader, run.frame.stages.texture,
                 run.frame.stages.rop]
        run.frame.stages.fragment_stage = max(parts) / 2.0
        assert violated(run, "clock-monotonic")

    def test_overlap_rule_upper_bound(self, design_runs):
        run = copy.deepcopy(design_runs[Design.BASELINE])
        parts = [run.frame.stages.shader, run.frame.stages.texture,
                 run.frame.stages.rop]
        run.frame.stages.fragment_stage = sum(parts) * 2.0 + 1.0
        assert violated(run, "clock-monotonic")

    def test_completion_before_issue_detected(self, design_runs):
        run = copy.deepcopy(design_runs[Design.BASELINE])
        run.frame.texture_latency.max_latency = run.frame.stages.texture * 2 + 1
        messages = violated(run, "clock-monotonic")
        assert any("makespan" in m.message for m in messages)


class TestEnergyConserved:
    def test_clean_breakdown_passes(self):
        breakdown = EnergyBreakdown(shader=1.0, dram=2.0, static=0.5)
        assert list(check_energy_breakdown(breakdown)) == []

    def test_component_added_without_total_update_detected(self):
        @dataclass
        class DriftedBreakdown(EnergyBreakdown):
            """A component added without updating the total property."""

            mystery: float = 1.0

        messages = list(check_energy_breakdown(DriftedBreakdown(shader=1.0)))
        assert any("sum of components" in message for message in messages)

    def test_negative_component_detected(self):
        messages = list(check_energy_breakdown(EnergyBreakdown(shader=-1.0)))
        assert any("negative energy component" in message for message in messages)

    def test_invariant_clean_on_real_runs(self, design_runs):
        for run in design_runs.values():
            assert violated(run, "energy-conserved") == []


class TestCacheSanity:
    def test_l2_access_drift_detected(self, design_runs):
        run = copy.deepcopy(design_runs[Design.BASELINE])
        run.frame.path_activity.l2_accesses += 1
        assert violated(run, "cache-sanity")

    def test_negative_counter_detected(self, design_runs):
        run = copy.deepcopy(design_runs[Design.BASELINE])
        run.frame.cache_stats.l1_hits = -1
        messages = violated(run, "cache-sanity")
        assert any("negative cache counter" in m.message for m in messages)

    def test_phantom_l2_outcomes_detected(self, design_runs):
        run = copy.deepcopy(design_runs[Design.BASELINE])
        run.frame.cache_stats.l2_hits += 1
        messages = violated(run, "cache-sanity")
        assert any("outcomes" in m.message for m in messages)


class TestErrorReporting:
    def test_raise_mode_raises_with_locations(self, design_runs):
        run = copy.deepcopy(design_runs[Design.BASELINE])
        run.frame.stages.rop = -1.0
        with pytest.raises(InvariantError) as excinfo:
            check_run(run)
        assert "clock-monotonic" in str(excinfo.value)
        assert excinfo.value.violations

    def test_violation_format_names_invariant(self, design_runs):
        run = copy.deepcopy(design_runs[Design.BASELINE])
        run.frame.stages.rop = -1.0
        violation = check_run(run, raise_on_violation=False)[0]
        assert violation.format().startswith("[clock-monotonic]")


class TestEnablement:
    def test_env_flag_parsing(self, monkeypatch):
        for value, expected in (
            ("1", True), ("true", True), ("on", True), ("yes", True),
            ("0", False), ("", False), ("off", False),
        ):
            monkeypatch.setenv(invariants.ENV_FLAG, value)
            assert checks_enabled() is expected
        monkeypatch.delenv(invariants.ENV_FLAG)
        assert checks_enabled() is False
