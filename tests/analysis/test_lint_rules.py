"""Per-rule positive/negative fixtures for the custom AST lint pass."""

from __future__ import annotations

import textwrap

from repro.analysis.linter import SYNTAX_ERROR_RULE, lint_source
from repro.analysis.rules import DEFAULT_RULES, rule_ids

SIM_PATH = "src/repro/sim/example.py"
CORE_PATH = "src/repro/core/example.py"
TEST_PATH = "tests/sim/test_example.py"
STATS_PATH = "src/repro/sim/stats.py"


def findings_for(source: str, path: str = SIM_PATH):
    return lint_source(textwrap.dedent(source), path)


def ids_for(source: str, path: str = SIM_PATH):
    return [finding.rule_id for finding in findings_for(source, path)]


class TestRuleRegistry:
    def test_at_least_six_distinct_rule_ids(self):
        ids = rule_ids()
        assert len(set(ids)) == len(ids)
        assert len(ids) >= 6

    def test_every_rule_documents_itself(self):
        for rule in DEFAULT_RULES:
            assert rule.rule_id.startswith("REP")
            assert rule.name
            assert rule.description


class TestSyntaxError:
    def test_unparseable_file_is_a_finding(self):
        findings = findings_for("def broken(:\n")
        assert [f.rule_id for f in findings] == [SYNTAX_ERROR_RULE]
        assert "syntax error" in findings[0].message


class TestStatMutation:
    def test_external_counter_value_mutation_flagged(self):
        assert "REP101" in ids_for("meter.value += 1\n")

    def test_external_assignment_flagged(self):
        assert "REP101" in ids_for("acc.total = 0.0\n")

    def test_tuple_target_flagged(self):
        assert "REP101" in ids_for("acc.minimum, x = 0.0, 1\n")

    def test_self_mutation_allowed(self):
        source = """
        class Histogram:
            def observe(self, sample: float) -> None:
                self.count += 1
                self.total += sample
        """
        assert "REP101" not in ids_for(source)

    def test_stats_module_itself_exempt(self):
        assert "REP101" not in ids_for("acc.count += 1\n", STATS_PATH)

    def test_unrelated_attributes_allowed(self):
        assert "REP101" not in ids_for("stats.l1_hits += cache.hits\n")


class TestWallClock:
    def test_time_time_flagged_in_sim(self):
        assert "REP102" in ids_for("import time\nstart = time.time()\n")

    def test_perf_counter_flagged_in_sim(self):
        assert "REP102" in ids_for("import time\nstart = time.perf_counter()\n")

    def test_datetime_now_flagged_in_sim(self):
        source = "import datetime\nstamp = datetime.datetime.now()\n"
        assert "REP102" in ids_for(source)

    def test_tests_may_read_wall_clock(self):
        assert "REP102" not in ids_for("import time\nstart = time.time()\n", TEST_PATH)

    def test_sim_clock_advance_not_flagged(self):
        assert ids_for("clock.advance_to(5.0)\n") == []


class TestUnseededRandom:
    def test_global_random_flagged(self):
        assert "REP103" in ids_for("import random\nx = random.random()\n")

    def test_global_shuffle_flagged(self):
        assert "REP103" in ids_for("import random\nrandom.shuffle(items)\n")

    def test_unseeded_default_rng_flagged(self):
        assert "REP103" in ids_for("rng = np.random.default_rng()\n")

    def test_seeded_default_rng_allowed(self):
        assert "REP103" not in ids_for("rng = np.random.default_rng(42)\n")

    def test_seed_keyword_allowed(self):
        assert "REP103" not in ids_for("rng = np.random.default_rng(seed=7)\n")

    def test_legacy_numpy_global_flagged(self):
        assert "REP103" in ids_for("noise = np.random.randn(16)\n")

    def test_unseeded_random_class_flagged(self):
        assert "REP103" in ids_for("import random\nrng = random.Random()\n")

    def test_seeded_random_class_allowed(self):
        assert "REP103" not in ids_for("import random\nrng = random.Random(3)\n")

    def test_generator_method_allowed(self):
        assert "REP103" not in ids_for("jitter = rng.random((4, 4))\n")

    def test_tests_out_of_scope(self):
        assert "REP103" not in ids_for("import random\nrandom.random()\n", TEST_PATH)


class TestExceptionHygiene:
    def test_bare_except_flagged_everywhere(self):
        source = """
        try:
            step()
        except:
            raise RuntimeError("boom")
        """
        for path in (SIM_PATH, TEST_PATH):
            assert "REP104" in ids_for(source, path)

    def test_swallowed_exception_flagged(self):
        source = """
        try:
            step()
        except ValueError:
            pass
        """
        assert "REP105" in ids_for(source)

    def test_swallowed_ellipsis_flagged(self):
        source = """
        try:
            step()
        except ValueError:
            ...
        """
        assert "REP105" in ids_for(source)

    def test_handled_exception_allowed(self):
        source = """
        try:
            step()
        except ValueError as error:
            log(error)
        """
        assert ids_for(source) == []

    def test_bare_and_swallowed_both_fire(self):
        source = """
        try:
            step()
        except:
            pass
        """
        ids = ids_for(source)
        assert "REP104" in ids and "REP105" in ids


class TestFloatEquality:
    def test_cycle_equality_flagged(self):
        assert "REP106" in ids_for("ok = frame_cycles == baseline_cycles\n")

    def test_energy_attribute_equality_flagged(self):
        assert "REP106" in ids_for("ok = breakdown.energy != expected\n")

    def test_latency_call_equality_flagged(self):
        assert "REP106" in ids_for("ok = histogram.mean_latency() == 4.0\n")

    def test_ordering_comparisons_allowed(self):
        assert "REP106" not in ids_for("ok = frame_cycles >= baseline_cycles\n")

    def test_counts_are_not_quantities(self):
        assert "REP106" not in ids_for("ok = request_count == 0\n")

    def test_tests_out_of_scope(self):
        assert "REP106" not in ids_for("assert frame_cycles == 8.0\n", TEST_PATH)


class TestPublicAnnotations:
    def test_unannotated_public_function_flagged(self):
        findings = findings_for("def lookup(address):\n    return address\n",
                                CORE_PATH)
        ids = [f.rule_id for f in findings]
        assert ids.count("REP107") == 2  # missing return + missing param

    def test_annotated_public_function_allowed(self):
        source = "def lookup(address: int) -> int:\n    return address\n"
        assert "REP107" not in ids_for(source, CORE_PATH)

    def test_private_functions_exempt(self):
        assert "REP107" not in ids_for("def _helper(x):\n    return x\n", CORE_PATH)

    def test_self_parameter_exempt(self):
        source = """
        class Cache:
            def lookup(self, address: int) -> int:
                return address
        """
        assert "REP107" not in ids_for(source, CORE_PATH)

    def test_rule_scoped_to_model_packages(self):
        source = "def lookup(address):\n    return address\n"
        assert "REP107" not in ids_for(source, SIM_PATH)

    def test_kwonly_parameters_checked(self):
        source = "def lookup(*, address) -> int:\n    return 0\n"
        assert "REP107" in ids_for(source, CORE_PATH)


class TestNoqaEscapeHatch:
    def test_noqa_suppresses_named_rule(self):
        source = (
            "import time\n"
            "start = time.time()  # repro: noqa(REP102) -- profiling only\n"
        )
        assert ids_for(source) == []

    def test_noqa_is_rule_specific(self):
        source = (
            "import time\n"
            "start = time.time()  # repro: noqa(REP103)\n"
        )
        assert "REP102" in ids_for(source)

    def test_noqa_only_covers_its_line(self):
        source = (
            "import time\n"
            "a = time.time()  # repro: noqa(REP102)\n"
            "b = time.time()\n"
        )
        findings = findings_for(source)
        assert [f.line for f in findings] == [3]

    def test_noqa_accepts_multiple_rules(self):
        source = (
            "import time, random\n"
            "x = random.random() + time.time()  "
            "# repro: noqa(REP102, REP103) -- fixture\n"
        )
        assert ids_for(source) == []


class TestMonotonicOutsideObs:
    OBS_PATH = "src/repro/obs/tracer.py"
    PERF_PATH = "src/repro/perf/bench.py"

    def test_monotonic_flagged_in_sim(self):
        assert "REP108" in ids_for("import time\nt = time.monotonic()\n")

    def test_monotonic_ns_flagged(self):
        assert "REP108" in ids_for("import time\nt = time.monotonic_ns()\n")

    def test_flagged_outside_the_package_too(self):
        source = "import time\nt = time.monotonic()\n"
        assert "REP108" in ids_for(source, TEST_PATH)

    def test_obs_module_exempt(self):
        source = "import time\nt = time.monotonic()\n"
        assert "REP108" not in ids_for(source, self.OBS_PATH)

    def test_perf_module_exempt(self):
        source = "import time\nt = time.monotonic()\n"
        assert "REP108" not in ids_for(source, self.PERF_PATH)

    def test_other_time_functions_not_flagged_by_rep108(self):
        assert "REP108" not in ids_for("import time\nt = time.time()\n")

    def test_noqa_suppresses(self):
        source = (
            "import time\n"
            "t = time.monotonic()  # repro: noqa(REP108, REP102) -- fixture\n"
        )
        assert ids_for(source) == []

    def test_wall_clock_rule_exempts_obs_package(self):
        # REP102's exemption must cover repro.obs alongside repro.perf:
        # the tracer exists to read the host clocks.
        source = "import time\nt = time.time()\n"
        assert "REP102" not in ids_for(source, self.OBS_PATH)


class TestFindingFormat:
    def test_location_and_rule_in_text(self):
        findings = findings_for("meter.value += 1\n")
        assert len(findings) == 1
        text = findings[0].format()
        assert text.startswith(f"{SIM_PATH}:1:")
        assert "REP101" in text

    def test_findings_sorted_by_position(self):
        source = (
            "import time\n"
            "b = time.time()\n"
            "meter.value += 1\n"
        )
        findings = findings_for(source)
        assert [f.line for f in findings] == sorted(f.line for f in findings)


class TestBarePoolMap:
    FAULTS_PATH = "src/repro/faults/executor.py"

    def test_pool_map_flagged(self):
        source = """
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor() as pool:
            results = list(pool.map(work, items))
        """
        assert "REP109" in ids_for(source)

    def test_pool_submit_flagged(self):
        assert "REP109" in ids_for("future = pool.submit(work, item)\n")

    def test_executor_receiver_flagged(self):
        assert "REP109" in ids_for("executor.map(work, items)\n")

    def test_direct_constructor_call_flagged(self):
        source = "ProcessPoolExecutor(max_workers=2).submit(work, item)\n"
        assert "REP109" in ids_for(source)

    def test_flagged_in_tests_too(self):
        assert "REP109" in ids_for("pool.map(work, items)\n", TEST_PATH)

    def test_faults_package_exempt(self):
        source = "future = pool.submit(work, item)\n"
        assert "REP109" not in ids_for(source, self.FAULTS_PATH)

    def test_run_fanout_not_flagged(self):
        source = "results, report = run_fanout(tasks, jobs=4)\n"
        assert "REP109" not in ids_for(source)

    def test_unrelated_map_not_flagged(self):
        assert "REP109" not in ids_for("out = mapping.map(fn, xs)\n")
        assert "REP109" not in ids_for("out = map(fn, xs)\n")


class TestFaultsPackageTimingExemptions:
    FAULTS_PATH = "src/repro/faults/executor.py"

    def test_monotonic_allowed_in_faults(self):
        source = "import time\nt = time.monotonic()\n"
        assert "REP108" not in ids_for(source, self.FAULTS_PATH)
        assert "REP102" not in ids_for(source, self.FAULTS_PATH)
