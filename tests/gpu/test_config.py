"""Tests for GPU configuration (Table I)."""

import pytest

from repro.gpu.config import (
    ATFIM_MEMORY_UNIT,
    GPU_TEXTURE_UNIT,
    GPUConfig,
    MTU_TEXTURE_UNIT,
    TextureUnitConfig,
)


class TestTextureUnitConfig:
    def test_table1_gpu_unit(self):
        assert GPU_TEXTURE_UNIT.address_alus == 4
        assert GPU_TEXTURE_UNIT.filter_alus == 8

    def test_table1_mtu_matches_gpu_unit(self):
        assert MTU_TEXTURE_UNIT.address_alus == GPU_TEXTURE_UNIT.address_alus
        assert MTU_TEXTURE_UNIT.filter_alus == GPU_TEXTURE_UNIT.filter_alus

    def test_table1_atfim_units_are_16_wide(self):
        assert ATFIM_MEMORY_UNIT.address_alus == 16
        assert ATFIM_MEMORY_UNIT.filter_alus == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            TextureUnitConfig(address_alus=0)
        with pytest.raises(ValueError):
            TextureUnitConfig(pipeline_depth=-1.0)


class TestGPUConfig:
    def test_table1_defaults(self):
        config = GPUConfig()
        assert config.num_clusters == 16
        assert config.shaders_per_cluster == 16
        assert config.frequency_ghz == 1.0
        assert config.tile_size == 16
        assert config.num_texture_units == 16
        assert config.l1_cache.size_bytes == 16 * 1024
        assert config.l2_cache.size_bytes == 128 * 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUConfig(num_clusters=0)
        with pytest.raises(ValueError):
            GPUConfig(overlap_factor=1.5)
        with pytest.raises(ValueError):
            GPUConfig(max_inflight_texture_requests=0)
