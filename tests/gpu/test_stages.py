"""Tests for the geometry, shader and ROP stage models."""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.geometry import simulate_geometry
from repro.gpu.rop import simulate_rop
from repro.gpu.shader import simulate_fragment_shading
from repro.memory.traffic import TrafficClass, TrafficMeter


class TestGeometry:
    def test_cycles_scale_with_vertices(self):
        config = GPUConfig()
        meter = TrafficMeter()
        small = simulate_geometry(config, 100, meter)
        large = simulate_geometry(config, 1000, TrafficMeter())
        assert large.cycles > small.cycles

    def test_traffic_accounted_as_geometry(self):
        config = GPUConfig()
        meter = TrafficMeter()
        result = simulate_geometry(config, 100, meter)
        assert meter.external[TrafficClass.GEOMETRY] == result.vertex_bytes
        assert result.vertex_bytes == 100 * config.vertex_bytes

    def test_fetch_rate_bound(self):
        config = GPUConfig()
        result = simulate_geometry(config, 4000, TrafficMeter())
        assert result.cycles >= 4000 / config.vertices_per_cycle

    def test_zero_vertices(self):
        result = simulate_geometry(GPUConfig(), 0, TrafficMeter())
        assert result.cycles == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            simulate_geometry(GPUConfig(), -1, TrafficMeter())


class TestShader:
    def test_busiest_cluster_dominates(self):
        config = GPUConfig()
        counts = [100] * config.num_clusters
        counts[5] = 400
        result = simulate_fragment_shading(config, counts)
        assert result.busiest_cluster == 5
        assert result.cycles == pytest.approx(
            400 * config.shader_cycles_per_fragment / config.shaders_per_cluster
        )

    def test_fragment_total(self):
        config = GPUConfig()
        result = simulate_fragment_shading(config, [10] * config.num_clusters)
        assert result.fragments == 10 * config.num_clusters

    def test_wrong_cluster_count_rejected(self):
        with pytest.raises(ValueError):
            simulate_fragment_shading(GPUConfig(), [1, 2, 3])

    def test_negative_count_rejected(self):
        config = GPUConfig()
        counts = [0] * config.num_clusters
        counts[0] = -1
        with pytest.raises(ValueError):
            simulate_fragment_shading(config, counts)


class TestRop:
    def test_traffic_classes_accounted(self):
        config = GPUConfig()
        meter = TrafficMeter()
        result = simulate_rop(config, 1000, 500, 128.0, meter)
        assert meter.external[TrafficClass.ZTEST] == result.z_bytes
        assert meter.external[TrafficClass.COLOR] == result.color_bytes
        assert meter.external[TrafficClass.FRAMEBUFFER] == result.framebuffer_bytes

    def test_cycles_are_bytes_over_bandwidth(self):
        config = GPUConfig()
        result = simulate_rop(config, 1000, 500, 64.0, TrafficMeter())
        assert result.cycles == pytest.approx(result.total_bytes / 64.0)

    def test_more_bandwidth_fewer_cycles(self):
        config = GPUConfig()
        slow = simulate_rop(config, 1000, 500, 128.0, TrafficMeter())
        fast = simulate_rop(config, 1000, 500, 320.0, TrafficMeter())
        assert fast.cycles < slow.cycles
        assert fast.total_bytes == slow.total_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_rop(GPUConfig(), -1, 0, 128.0, TrafficMeter())
        with pytest.raises(ValueError):
            simulate_rop(GPUConfig(), 0, 0, 0.0, TrafficMeter())
