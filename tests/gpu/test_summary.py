"""Tests for the frame summary formatting."""

from repro.core import Design


class TestFrameSummary:
    def test_summary_mentions_key_quantities(self, design_runs):
        frame = design_runs[Design.BASELINE].frame
        text = frame.summary()
        assert "frame:" in text
        assert "stages:" in text
        assert "texture latency:" in text
        assert "external traffic:" in text
        assert str(frame.num_requests) in text

    def test_summary_includes_cache_line_for_cached_designs(self, design_runs):
        baseline = design_runs[Design.BASELINE].frame.summary()
        stfim = design_runs[Design.S_TFIM].frame.summary()
        assert "texture caches:" in baseline
        # S-TFIM has no texture caches: the line is omitted.
        assert "texture caches:" not in stfim

    def test_summary_reports_angle_recalcs_for_atfim(self, design_runs):
        text = design_runs[Design.A_TFIM].frame.summary()
        assert "angle recalcs" in text
