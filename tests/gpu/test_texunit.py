"""Tests for the texture-unit resource bundle."""

import pytest

from repro.gpu.config import GPU_TEXTURE_UNIT, TextureUnitConfig
from repro.gpu.texunit import TextureUnit


class TestTextureUnit:
    def test_address_throughput(self):
        unit = TextureUnit("tu", TextureUnitConfig(address_alus=4, filter_alus=8,
                                                   pipeline_depth=0.0))
        done = unit.generate_addresses(0.0, 32)
        assert done == pytest.approx(8.0)

    def test_filter_throughput(self):
        unit = TextureUnit("tu", TextureUnitConfig(address_alus=4, filter_alus=8,
                                                   pipeline_depth=0.0))
        done = unit.filter_texels(0.0, 32)
        assert done == pytest.approx(4.0)

    def test_pipeline_depth_added(self):
        unit = TextureUnit("tu", TextureUnitConfig(address_alus=4, filter_alus=8,
                                                   pipeline_depth=8.0))
        assert unit.generate_addresses(0.0, 4) == pytest.approx(1.0 + 8.0)

    def test_zero_texels_free(self):
        unit = TextureUnit("tu", GPU_TEXTURE_UNIT)
        assert unit.generate_addresses(5.0, 0) == 5.0
        assert unit.filter_texels(5.0, 0) == 5.0

    def test_activity_counts(self):
        unit = TextureUnit("tu", GPU_TEXTURE_UNIT)
        unit.note_request()
        unit.generate_addresses(0.0, 32)
        unit.filter_texels(0.0, 32)
        assert unit.activity.requests == 1
        assert unit.activity.address_ops == 32
        assert unit.activity.filter_ops == 32

    def test_activity_merge(self):
        left = TextureUnit("a", GPU_TEXTURE_UNIT)
        right = TextureUnit("b", GPU_TEXTURE_UNIT)
        left.generate_addresses(0.0, 8)
        right.generate_addresses(0.0, 4)
        left.activity.merge(right.activity)
        assert left.activity.address_ops == 12

    def test_negative_texels_rejected(self):
        unit = TextureUnit("tu", GPU_TEXTURE_UNIT)
        with pytest.raises(ValueError):
            unit.generate_addresses(0.0, -1)
        with pytest.raises(ValueError):
            unit.filter_texels(0.0, -1)

    def test_reset(self):
        unit = TextureUnit("tu", GPU_TEXTURE_UNIT)
        unit.generate_addresses(0.0, 8)
        unit.reset()
        assert unit.activity.address_ops == 0
        assert unit.address_stage.next_issue == 0.0
