"""Tests for the whole-frame pipeline model."""

import pytest

from repro.core import Design
from repro.core.expansion import RequestExpander
from repro.core.frontend import make_texture_path
from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GpuPipeline, StageTimes
from repro.memory.traffic import TrafficMeter
from repro.render.renderer import Renderer
from repro.texture.cache import CacheConfig
from tests.conftest import make_tiny_scene


def small_gpu(**overrides):
    defaults = dict(
        l1_cache=CacheConfig(size_bytes=1024, associativity=4),
        l2_cache=CacheConfig(size_bytes=4096, associativity=8),
    )
    defaults.update(overrides)
    return GPUConfig(**defaults)


@pytest.fixture(scope="module")
def tiny_setup():
    scene, camera = make_tiny_scene()
    renderer = Renderer(width=48, height=36, tile_size=4, max_anisotropy=8)
    trace = renderer.trace_only(scene, camera).trace
    expander = RequestExpander(scene)
    expanded = [expander.expand(request) for request in trace.requests]
    return scene, trace, expanded


def make_path(config_design, gpu, traffic):
    from repro.core.designs import DesignConfig

    return make_texture_path(
        DesignConfig(design=config_design, gpu=gpu), traffic
    )


class TestStageTimes:
    def test_frame_is_sum_of_serial_stages(self):
        stages = StageTimes(
            geometry=10.0, rasterization=20.0, fragment_stage=70.0
        )
        assert stages.frame == 100.0


class TestClusterAssignment:
    def test_assignment_uses_trace_tiles(self, tiny_setup):
        _, trace, _ = tiny_setup
        pipeline = GpuPipeline(small_gpu())
        assignments = pipeline.assign_clusters(trace)
        assert len(assignments) == len(trace.requests)
        assert all(0 <= a < 16 for a in assignments)

    def test_assignment_spreads_load(self, tiny_setup):
        _, trace, _ = tiny_setup
        pipeline = GpuPipeline(small_gpu())
        assignments = pipeline.assign_clusters(trace)
        used_clusters = set(assignments)
        assert len(used_clusters) >= 8


class TestReplay:
    def test_completions_never_precede_issues(self, tiny_setup):
        scene, trace, expanded = tiny_setup
        traffic = TrafficMeter()
        gpu = small_gpu()
        path = make_path(Design.BASELINE, gpu, traffic)
        pipeline = GpuPipeline(gpu)
        makespan, histogram, per_cluster = pipeline.replay_texture_stream(
            trace, expanded, path
        )
        assert makespan > 0
        assert histogram.count == len(trace.requests)
        assert sum(per_cluster) == len(trace.requests)

    def test_smaller_window_cannot_be_faster(self, tiny_setup):
        scene, trace, expanded = tiny_setup

        def run_with_depth(depth):
            gpu = small_gpu(max_inflight_texture_requests=depth)
            traffic = TrafficMeter()
            path = make_path(Design.BASELINE, gpu, traffic)
            pipeline = GpuPipeline(gpu)
            makespan, _, _ = pipeline.replay_texture_stream(trace, expanded, path)
            return makespan

        assert run_with_depth(2) >= run_with_depth(64)


class TestSimulateFrame:
    def test_frame_result_consistency(self, tiny_setup):
        scene, trace, expanded = tiny_setup
        gpu = small_gpu()
        traffic = TrafficMeter()
        path = make_path(Design.BASELINE, gpu, traffic)
        pipeline = GpuPipeline(gpu)
        frame = pipeline.simulate_frame(
            trace, expanded, path, traffic,
            num_vertices=scene.num_vertices,
            external_bytes_per_cycle=128.0,
        )
        assert frame.num_requests == len(trace.requests)
        assert frame.frame_cycles >= frame.stages.fragment_stage
        assert frame.stages.fragment_stage >= max(
            frame.stages.shader, frame.stages.texture, frame.stages.rop
        )
        assert frame.texels_requested > 0
        assert frame.texture_filter_latency > 0

    def test_mismatched_expansion_rejected(self, tiny_setup):
        scene, trace, expanded = tiny_setup
        gpu = small_gpu()
        traffic = TrafficMeter()
        path = make_path(Design.BASELINE, gpu, traffic)
        pipeline = GpuPipeline(gpu)
        with pytest.raises(ValueError):
            pipeline.simulate_frame(
                trace, expanded[:-1], path, traffic,
                num_vertices=3, external_bytes_per_cycle=128.0,
            )

    def test_overlap_factor_zero_means_max(self, tiny_setup):
        scene, trace, expanded = tiny_setup
        gpu = small_gpu(overlap_factor=0.0)
        traffic = TrafficMeter()
        path = make_path(Design.BASELINE, gpu, traffic)
        frame = GpuPipeline(gpu).simulate_frame(
            trace, expanded, path, traffic,
            num_vertices=scene.num_vertices,
            external_bytes_per_cycle=128.0,
        )
        assert frame.stages.fragment_stage == pytest.approx(
            max(frame.stages.shader, frame.stages.texture, frame.stages.rop)
        )

    def test_speedup_helpers(self, tiny_setup):
        scene, trace, expanded = tiny_setup
        gpu = small_gpu()

        def run():
            traffic = TrafficMeter()
            path = make_path(Design.BASELINE, gpu, traffic)
            return GpuPipeline(gpu).simulate_frame(
                trace, expanded, path, traffic,
                num_vertices=scene.num_vertices,
                external_bytes_per_cycle=128.0,
            )

        first, second = run(), run()
        assert second.speedup_over(first) == pytest.approx(1.0)
        assert second.texture_speedup_over(first) == pytest.approx(1.0)
