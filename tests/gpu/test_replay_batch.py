"""Bit-identity of the batched replay scheduler against the scalar oracle.

``GpuPipeline._replay_batched`` drains every heap event ready at one
timestamp as a chunk through ``ReplaySession.serve_chunk``; the scalar
one-event-at-a-time heap loop (``_replay_scalar``) is the oracle.  The
contract is exact equality -- not approximate -- across every observable
the replay produces: makespan, the latency histogram (total, count, max,
buckets), per-cluster fragment counts, external memory traffic, unit
activity counters, and L1/L2 cache statistics.
"""

import pytest

from repro.core import Design
from repro.core.designs import DesignConfig
from repro.core.expansion import RequestExpander
from repro.core.frontend import make_texture_path
from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GpuPipeline
from repro.memory.traffic import TrafficMeter
from repro.render.renderer import Renderer
from repro.texture.cache import CacheConfig
from repro.texture.requests import FragmentTrace
from tests.conftest import make_tiny_scene

ALL_DESIGNS = (Design.BASELINE, Design.B_PIM, Design.S_TFIM, Design.A_TFIM)
DEPTHS = (1, 2, 64)


def small_gpu(depth):
    return GPUConfig(
        l1_cache=CacheConfig(size_bytes=1024, associativity=4),
        l2_cache=CacheConfig(size_bytes=4096, associativity=8),
        max_inflight_texture_requests=depth,
    )


@pytest.fixture(scope="module")
def frame():
    scene, camera = make_tiny_scene()
    renderer = Renderer(width=48, height=36, tile_size=4, max_anisotropy=8)
    trace = renderer.trace_only(scene, camera).trace
    expander = RequestExpander(scene)
    return {
        "trace": trace,
        "aniso": [expander.expand(r) for r in trace.requests],
        "iso": [expander.expand_isotropic(r) for r in trace.requests],
    }


def observe(path, traffic, makespan, histogram, per_cluster):
    """Every replay observable, collapsed into one comparable dict."""
    activity = path.activity()
    caches = path.cache_stats()
    return {
        "makespan": makespan,
        "latency_total": float(histogram.total),
        "latency_count": histogram.count,
        "latency_max": float(histogram.max_latency),
        "buckets": tuple(histogram.buckets),
        "per_cluster": tuple(per_cluster),
        "external_bytes": float(traffic.external_total),
        "requests": (activity.gpu_texture.requests
                     + activity.memory_texture.requests),
        "address_ops": float(activity.gpu_texture.address_ops
                             + activity.memory_texture.address_ops),
        "filter_ops": float(activity.gpu_texture.filter_ops
                            + activity.memory_texture.filter_ops),
        "l1_hits": caches.l1_hits,
        "l1_misses": caches.l1_misses,
        "l2_hits": caches.l2_hits,
        "l2_misses": caches.l2_misses,
    }


def replay(design, depth, trace, expanded, batched):
    gpu = small_gpu(depth)
    traffic = TrafficMeter()
    path = make_texture_path(DesignConfig(design=design, gpu=gpu), traffic)
    pipeline = GpuPipeline(gpu)
    makespan, histogram, per_cluster = pipeline.replay_texture_stream(
        trace, expanded, path, batched=batched
    )
    return observe(path, traffic, makespan, histogram, per_cluster)


def pick_expansions(design, frame):
    config = DesignConfig(design=design, gpu=small_gpu(4))
    return frame["aniso"] if config.aniso_enabled else frame["iso"]


class TestBitIdentity:
    @pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda d: d.value)
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_batched_matches_scalar_oracle(self, frame, design, depth):
        expanded = pick_expansions(design, frame)
        scalar = replay(design, depth, frame["trace"], expanded, False)
        batched = replay(design, depth, frame["trace"], expanded, True)
        assert batched == scalar

    def test_batched_is_the_default(self, frame):
        expanded = pick_expansions(Design.BASELINE, frame)
        gpu = small_gpu(4)
        traffic = TrafficMeter()
        path = make_texture_path(
            DesignConfig(design=Design.BASELINE, gpu=gpu), traffic
        )
        pipeline = GpuPipeline(gpu)
        assert pipeline.batched_replay is True
        default = observe(
            path, traffic,
            *pipeline.replay_texture_stream(frame["trace"], expanded, path),
        )
        explicit = replay(Design.BASELINE, 4, frame["trace"], expanded, True)
        assert default == explicit


class TestDegenerateStreams:
    def empty_trace(self):
        return FragmentTrace(width=48, height=36, requests=[], tile_size=4)

    @pytest.mark.parametrize("batched", (False, True))
    def test_empty_trace(self, batched):
        result = replay(
            Design.BASELINE, 4, self.empty_trace(), [], batched
        )
        assert result["latency_count"] == 0
        assert result["makespan"] == 0.0

    def test_empty_trace_modes_agree(self):
        scalar = replay(Design.BASELINE, 4, self.empty_trace(), [], False)
        batched = replay(Design.BASELINE, 4, self.empty_trace(), [], True)
        assert batched == scalar

    @pytest.mark.parametrize("count", (1, 3))
    def test_tiny_prefixes_agree(self, frame, count):
        trace = frame["trace"]
        prefix = FragmentTrace(
            width=trace.width, height=trace.height,
            requests=trace.requests[:count], tile_size=trace.tile_size,
        )
        expanded = frame["aniso"][:count]
        scalar = replay(Design.BASELINE, 1, prefix, expanded, False)
        batched = replay(Design.BASELINE, 1, prefix, expanded, True)
        assert batched == scalar
        assert batched["latency_count"] == count

    def test_depth_one_serialises_each_cluster(self, frame):
        """depth=1 exercises the singleton fast path on every round."""
        expanded = pick_expansions(Design.BASELINE, frame)
        scalar = replay(Design.BASELINE, 1, frame["trace"], expanded, False)
        batched = replay(Design.BASELINE, 1, frame["trace"], expanded, True)
        assert batched == scalar


class TestSessionContract:
    def test_serve_chunk_matches_serve_one(self, frame):
        """Chunked serving is the same fold as one-at-a-time serving."""
        expanded = pick_expansions(Design.BASELINE, frame)
        gpu = small_gpu(4)

        def run(chunked):
            traffic = TrafficMeter()
            path = make_texture_path(
                DesignConfig(design=Design.BASELINE, gpu=gpu), traffic
            )
            session = path.begin_replay(expanded)
            indices = list(range(len(expanded)))
            clusters = [i % 4 for i in indices]
            if chunked:
                completions = []
                for start in range(0, len(indices), 7):
                    completions.extend(session.serve_chunk(
                        clusters[start:start + 7],
                        float(start),
                        indices[start:start + 7],
                    ))
            else:
                completions = [
                    session.serve_one(clusters[i], float(i - i % 7), i)
                    for i in indices
                ]
            session.finish()
            return completions, observe(
                path, traffic, 0.0, _EmptyHistogram(), ()
            )

        chunked, state_chunked = run(True)
        single, state_single = run(False)
        assert chunked == single
        assert state_chunked == state_single

    def test_finish_flushes_counters(self, frame):
        """Counters observed before finish() must not include the session."""
        expanded = pick_expansions(Design.BASELINE, frame)
        gpu = small_gpu(4)
        traffic = TrafficMeter()
        path = make_texture_path(
            DesignConfig(design=Design.BASELINE, gpu=gpu), traffic
        )
        session = path.begin_replay(expanded)
        session.serve_chunk([0, 1], 0.0, [0, 1])
        before = path.activity()
        requests_before = (before.gpu_texture.requests
                           + before.memory_texture.requests)
        session.finish()
        after = path.activity()
        requests_after = (after.gpu_texture.requests
                          + after.memory_texture.requests)
        assert requests_after == requests_before + 2


class _EmptyHistogram:
    total = 0.0
    count = 0
    max_latency = 0.0
    buckets = ()
