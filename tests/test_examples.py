"""Smoke tests: every example runs end-to-end and prints its story.

Examples are the library's front door; they must not rot.  Each runs as
a subprocess on the fastest workload.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "riddick-640x480")
        for token in ("baseline", "b-pim", "s-tfim", "a-tfim", "render x"):
            assert token in out

    def test_quickstart_rejects_unknown_workload(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py"), "nosuchgame"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1

    def test_quality_tradeoff(self):
        out = run_example("quality_tradeoff.py", "riddick-640x480")
        assert "PSNR" in out
        assert "A-TFIM-001pi" in out
        assert "A-TFIM-no" in out

    def test_memory_system_explorer(self):
        out = run_example("memory_system_explorer.py", "riddick-640x480")
        assert "int:ext ratio" in out
        assert "gddr5 scale" in out

    def test_animated_sequence(self):
        out = run_example("animated_sequence.py", "riddick-640x480", "3")
        assert "walk forward" in out
        assert "strafe" in out
        assert "sequence speedup" in out
