"""Tests for the procedural scene builders."""

import numpy as np
import pytest

from repro.render.renderer import Renderer
from repro.workloads.scenes import SceneStyle, build_scene


class TestBuildScene:
    @pytest.mark.parametrize("style", list(SceneStyle))
    def test_every_style_builds(self, style):
        built = build_scene(style, texture_size=64, seed=1)
        assert built.scene.triangles
        assert built.scene.textures
        assert built.camera is not None

    @pytest.mark.parametrize("style", list(SceneStyle))
    def test_triangles_reference_registered_textures(self, style):
        built = build_scene(style, texture_size=64, seed=1)
        for triangle in built.scene.triangles:
            assert triangle.texture_id in built.scene.textures

    @pytest.mark.parametrize("style", list(SceneStyle))
    def test_rasterizes_to_fragments(self, style):
        built = build_scene(style, texture_size=64, seed=1)
        renderer = Renderer(width=32, height=24, tile_size=4)
        output = renderer.trace_only(built.scene, built.camera)
        # Every archetype should fill a majority of the frame.
        assert output.trace.num_fragments > 0.5 * 32 * 24

    def test_deterministic(self):
        a = build_scene(SceneStyle.CORRIDOR, texture_size=64, seed=5)
        b = build_scene(SceneStyle.CORRIDOR, texture_size=64, seed=5)
        for texture_id in a.scene.textures:
            np.testing.assert_array_equal(
                a.scene.textures[texture_id].data,
                b.scene.textures[texture_id].data,
            )

    def test_terrain_is_most_anisotropic(self):
        def max_probes(style):
            built = build_scene(style, texture_size=64, seed=1)
            renderer = Renderer(width=32, height=24, max_anisotropy=16)
            output = renderer.trace_only(built.scene, built.camera)
            return max(
                request.footprint.probes for request in output.trace.requests
            )

        assert max_probes(SceneStyle.TERRAIN) >= max_probes(SceneStyle.CHAMBER)

    def test_texture_size_respected(self):
        built = build_scene(SceneStyle.ARENA, texture_size=128, seed=1)
        for texture in built.scene.textures.values():
            assert texture.width == 128

    def test_tiny_texture_rejected(self):
        with pytest.raises(ValueError):
            build_scene(SceneStyle.ARENA, texture_size=8)
