"""Tests for camera paths and animation factories."""

import numpy as np
import pytest

from repro.render.camera import Camera
from repro.workloads.animation import (
    CameraKeyframe,
    CameraPath,
    orbit,
    strafe,
    walk_forward,
)


def make_camera():
    return Camera(
        position=np.array([0.0, 1.0, 5.0]),
        target=np.array([0.0, 1.0, -10.0]),
    )


class TestCameraPath:
    def test_pose_interpolates_linearly(self):
        path = CameraPath([
            CameraKeyframe(position=(0, 0, 0), target=(0, 0, -1)),
            CameraKeyframe(position=(10, 0, 0), target=(10, 0, -1)),
        ])
        mid = path.pose(0.5)
        assert mid.position[0] == pytest.approx(5.0)
        assert mid.target[0] == pytest.approx(5.0)

    def test_endpoints_exact(self):
        path = CameraPath([
            CameraKeyframe(position=(0, 0, 0), target=(0, 0, -1)),
            CameraKeyframe(position=(10, 0, 0), target=(10, 0, -1)),
        ])
        assert path.pose(0.0).position[0] == 0.0
        assert path.pose(1.0).position[0] == 10.0

    def test_multi_segment(self):
        path = CameraPath([
            CameraKeyframe(position=(0, 0, 0), target=(0, 0, -1)),
            CameraKeyframe(position=(4, 0, 0), target=(4, 0, -1)),
            CameraKeyframe(position=(4, 4, 0), target=(4, 4, -1)),
        ])
        assert path.pose(0.75).position[1] == pytest.approx(2.0)

    def test_cameras_count_and_lens(self):
        path = CameraPath([
            CameraKeyframe(position=(0, 0, 5), target=(0, 0, 0)),
            CameraKeyframe(position=(0, 0, 3), target=(0, 0, -2)),
        ])
        template = make_camera()
        cameras = path.cameras(template, 5)
        assert len(cameras) == 5
        assert all(camera.fov_y == template.fov_y for camera in cameras)

    def test_single_frame_is_path_start(self):
        path = CameraPath([
            CameraKeyframe(position=(0, 0, 5), target=(0, 0, 0)),
            CameraKeyframe(position=(0, 0, 3), target=(0, 0, -2)),
        ])
        cameras = path.cameras(make_camera(), 1)
        assert np.allclose(cameras[0].position, [0, 0, 5])

    def test_validation(self):
        with pytest.raises(ValueError):
            CameraPath([CameraKeyframe(position=(0, 0, 0), target=(0, 0, -1))])
        path = CameraPath([
            CameraKeyframe(position=(0, 0, 0), target=(0, 0, -1)),
            CameraKeyframe(position=(1, 0, 0), target=(1, 0, -1)),
        ])
        with pytest.raises(ValueError):
            path.pose(1.5)
        with pytest.raises(ValueError):
            path.cameras(make_camera(), 0)


class TestPathFactories:
    def test_walk_forward_moves_along_view(self):
        camera = make_camera()
        path = walk_forward(6.0)(camera)
        end = path.pose(1.0)
        moved = np.asarray(end.position) - camera.position
        assert np.dot(moved, camera.forward) == pytest.approx(6.0)

    def test_strafe_is_perpendicular_to_view(self):
        camera = make_camera()
        path = strafe(4.0)(camera)
        start = np.asarray(path.pose(0.0).position)
        end = np.asarray(path.pose(1.0).position)
        motion = end - start
        assert np.linalg.norm(motion) == pytest.approx(4.0)
        assert abs(np.dot(motion, camera.forward)) < 1e-9

    def test_strafe_keeps_target(self):
        camera = make_camera()
        path = strafe(4.0)(camera)
        assert np.allclose(path.pose(0.0).target, camera.target)
        assert np.allclose(path.pose(1.0).target, camera.target)

    def test_orbit_preserves_distance(self):
        camera = make_camera()
        path = orbit(40.0)(camera)
        radius = np.linalg.norm(camera.position - camera.target)
        for t in (0.0, 0.5, 1.0):
            pose = path.pose(t)
            distance = np.linalg.norm(
                np.asarray(pose.position) - np.asarray(pose.target)
            )
            assert distance == pytest.approx(radius)

    def test_orbit_changes_position(self):
        camera = make_camera()
        path = orbit(40.0)(camera)
        start = np.asarray(path.pose(0.0).position)
        end = np.asarray(path.pose(1.0).position)
        assert not np.allclose(start, end)
