"""Tests for the Table II workload registry."""

import pytest

from repro.core import Design
from repro.workloads import WORKLOADS, workload_by_name, workload_names


class TestRegistry:
    def test_ten_benchmarks(self):
        # Table II: doom3 x3, fear x3, hl2 x2, riddick, wolfenstein.
        assert len(WORKLOADS) == 10

    def test_table2_games_present(self):
        games = {workload.game for workload in WORKLOADS}
        assert games == {"doom3", "fear", "hl2", "riddick", "wolfenstein"}

    def test_table2_resolutions(self):
        doom3 = [w for w in WORKLOADS if w.game == "doom3"]
        labels = {w.resolution_label for w in doom3}
        assert labels == {"1280x1024", "640x480", "320x240"}

    def test_libraries_match_table2(self):
        by_game = {w.game: w.library for w in WORKLOADS}
        assert by_game["doom3"] == "OpenGL"
        assert by_game["fear"] == "D3D"
        assert by_game["hl2"] == "D3D"
        assert by_game["riddick"] == "OpenGL"
        assert by_game["wolfenstein"] == "D3D"

    def test_lookup_by_name(self):
        workload = workload_by_name("hl2-640x480")
        assert workload.game == "hl2"
        with pytest.raises(KeyError):
            workload_by_name("quake3-640x480")

    def test_names_unique(self):
        names = workload_names()
        assert len(names) == len(set(names))


class TestWorkloadProperties:
    def test_sim_resolution_scaled(self):
        workload = workload_by_name("doom3-1280x1024")
        assert workload.sim_width == 1280 // workload.sim_scale
        assert workload.sim_height == 1024 // workload.sim_scale

    def test_higher_resolution_higher_aniso(self):
        high = workload_by_name("doom3-1280x1024")
        low = workload_by_name("doom3-320x240")
        assert high.max_anisotropy > low.max_anisotropy

    def test_tile_size_scaled(self):
        workload = workload_by_name("doom3-640x480")
        assert workload.sim_tile_size == max(2, 16 // workload.sim_scale)

    def test_trace_deterministic(self):
        workload = workload_by_name("riddick-640x480")
        _, first = workload.trace()
        _, second = workload.trace()
        assert first.num_fragments == second.num_fragments
        assert first.requests[0] == second.requests[0]

    def test_trace_covers_frame(self):
        workload = workload_by_name("riddick-640x480")
        _, trace = workload.trace()
        assert trace.num_fragments >= 0.5 * workload.sim_width * workload.sim_height


class TestDesignConfigBuilder:
    def test_design_config_wires_scales(self):
        workload = workload_by_name("doom3-640x480")
        config = workload.design_config(Design.A_TFIM)
        assert config.design is Design.A_TFIM
        assert config.angle_threshold_scale == float(workload.sim_scale)
        assert config.gddr5.bandwidth_gb_per_s < 128.0
        assert config.hmc.internal_bandwidth_gb_per_s > (
            config.hmc.external_bandwidth_gb_per_s
        )

    def test_bandwidth_ratios_preserved(self):
        workload = workload_by_name("doom3-640x480")
        config = workload.design_config(Design.B_PIM)
        assert config.hmc.external_bandwidth_gb_per_s / (
            config.gddr5.bandwidth_gb_per_s
        ) == pytest.approx(320.0 / 128.0)
        assert config.hmc.internal_bandwidth_gb_per_s / (
            config.hmc.external_bandwidth_gb_per_s
        ) == pytest.approx(512.0 / 320.0)

    def test_overrides_pass_through(self):
        workload = workload_by_name("doom3-640x480")
        config = workload.design_config(Design.A_TFIM, angle_threshold=0.5)
        assert config.angle_threshold == 0.5

    def test_scaled_caches_smaller_than_table1(self):
        workload = workload_by_name("doom3-640x480")
        gpu = workload.gpu_config()
        assert gpu.l1_cache.size_bytes < 16 * 1024
        assert gpu.l2_cache.size_bytes < 128 * 1024

    def test_cache_scales_with_sim_size(self):
        small = workload_by_name("doom3-320x240").gpu_config()
        large = workload_by_name("doom3-1280x1024").gpu_config()
        assert large.l2_cache.size_bytes > small.l2_cache.size_bytes
