"""Tests for procedural texture synthesis."""

import numpy as np
import pytest

from repro.workloads.textures import GENERATORS, ProceduralTextureLibrary


class TestGenerators:
    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    def test_output_shape_and_range(self, kind):
        data = GENERATORS[kind](64)
        assert data.shape == (64, 64, 4)
        assert data.min() >= 0.0
        assert data.max() <= 1.0

    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    def test_deterministic(self, kind):
        a = GENERATORS[kind](32, seed=5)
        b = GENERATORS[kind](32, seed=5)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    def test_seed_changes_content(self, kind):
        a = GENERATORS[kind](32, seed=1)
        b = GENERATORS[kind](32, seed=2)
        assert not np.array_equal(a, b)

    def test_checker_has_contrast(self):
        data = GENERATORS["checker"](32)
        assert data[:, :, 0].std() > 0.2

    def test_alpha_channel_is_opaque(self):
        for kind in GENERATORS:
            data = GENERATORS[kind](32)
            assert np.all(data[:, :, 3] == 1.0)


class TestLibrary:
    def test_sequential_ids(self):
        library = ProceduralTextureLibrary()
        first = library.create("checker", 32)
        second = library.create("brick", 32)
        assert first.texture_id == 0
        assert second.texture_id == 1

    def test_custom_start_id(self):
        library = ProceduralTextureLibrary(next_id=10)
        assert library.create("noise", 32).texture_id == 10

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            ProceduralTextureLibrary().create("marble", 32)

    def test_name_encodes_parameters(self):
        texture = ProceduralTextureLibrary().create("wood", 64, seed=9)
        assert texture.name == "wood-64-9"
