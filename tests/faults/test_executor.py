"""run_fanout scheduling: retries, pool rebuilds, timeouts, degradation.

The toy task functions live at module level so pool workers can import
them; each takes the trailing ``FaultContext`` argument the scheduler
passes, and uses ``ctx.attempt`` (or ``ctx is None``, which marks the
degraded in-process fallback) to decide deterministically whether to
misbehave -- no fault plan needed to exercise the executor itself.
"""

import os
import time

import pytest

from repro.faults import (
    FAST_RETRIES,
    FanoutTask,
    RetryPolicy,
    RunOutcome,
    run_fanout,
)


def _double(value, ctx=None):
    return value * 2


def _flaky(value, fail_below, ctx=None):
    if ctx is not None and ctx.attempt < fail_below:
        raise ValueError(f"attempt {ctx.attempt} fails")
    return value


def _always_fail(value, ctx=None):
    raise ValueError("always fails")


def _fail_in_pool(value, ctx=None):
    if ctx is not None:
        raise ValueError("fails on every pool attempt")
    return value * 10


def _crash_first(value, ctx=None):
    if ctx is not None and ctx.attempt == 0:
        os._exit(86)
    return value + 1


def _hang_first(value, ctx=None):
    if ctx is not None and ctx.attempt == 0:
        time.sleep(30.0)
    return value


def _record_completion(value, out_dir, ctx=None):
    stamp = time.monotonic()  # repro: noqa(REP108) -- test measures wall time
    with open(os.path.join(out_dir, f"done-{value}"), "w") as handle:
        handle.write(repr(stamp))
    return value


def _pause_then_return(value, seconds, ctx=None):
    time.sleep(seconds)
    return value


def _hang_once_marked(value, marker_dir, ctx=None):
    """Sleep 30 s on the first invocation ever, return instantly after.

    A file marker (not ``ctx.attempt``) decides, because a bystander
    requeue deliberately replays the same attempt index.
    """
    marker = os.path.join(marker_dir, f"ran-{value}")
    first = not os.path.exists(marker)
    with open(marker, "a"):
        pass
    if first and ctx is not None:
        time.sleep(30.0)
    return value


class TestHappyPath:
    def test_all_ok(self):
        tasks = [FanoutTask(key=i, fn=_double, args=(i,)) for i in range(5)]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {i: i * 2 for i in range(5)}
        assert report.all_ok
        assert report.outcome_counts()["ok"] == 5
        for task_report in report.tasks.values():
            assert task_report.attempts == 1
            assert task_report.retries == 0

    def test_empty_tasks(self):
        results, report = run_fanout([], jobs=2)
        assert results == {}
        assert report.tasks == {}

    def test_duplicate_keys_rejected(self):
        tasks = [
            FanoutTask(key="same", fn=_double, args=(1,)),
            FanoutTask(key="same", fn=_double, args=(2,)),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            run_fanout(tasks, jobs=2)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            run_fanout([FanoutTask(key=1, fn=_double, args=(1,))], jobs=0)


class TestRetries:
    def test_transient_failure_is_retried(self):
        tasks = [FanoutTask(key="k", fn=_flaky, args=(41, 1))]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {"k": 41}
        state = report.tasks["k"]
        assert state.outcome is RunOutcome.RETRIED
        assert state.retries == 1
        assert state.attempts == 2
        assert "fails" in state.error

    def test_mixed_batch_keeps_ok_labels(self):
        tasks = [
            FanoutTask(key="stable", fn=_double, args=(3,)),
            FanoutTask(key="flaky", fn=_flaky, args=(9, 2)),
        ]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {"stable": 6, "flaky": 9}
        assert report.outcome("stable") is RunOutcome.OK
        assert report.outcome("flaky") is RunOutcome.RETRIED


class TestDegradation:
    def test_exhausted_retries_degrade_to_serial(self):
        tasks = [FanoutTask(key="k", fn=_fail_in_pool, args=(7,))]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {"k": 70}
        state = report.tasks["k"]
        assert state.outcome is RunOutcome.DEGRADED
        assert state.degraded
        assert state.retries == FAST_RETRIES.max_attempts - 1

    def test_hopeless_task_fails_but_batch_survives(self):
        tasks = [
            FanoutTask(key="good", fn=_double, args=(1,)),
            FanoutTask(key="bad", fn=_always_fail, args=(1,)),
        ]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {"good": 2}
        assert report.outcome("bad") is RunOutcome.FAILED
        assert report.failed_keys == ["bad"]
        assert not report.all_ok

    def test_degrade_disabled_fails_fast(self):
        tasks = [FanoutTask(key="k", fn=_fail_in_pool, args=(7,))]
        results, report = run_fanout(
            tasks, jobs=2, policy=FAST_RETRIES, degrade=False
        )
        assert results == {}
        assert report.outcome("k") is RunOutcome.FAILED


class TestPoolBreakage:
    def test_worker_crash_is_survived(self):
        tasks = [FanoutTask(key=i, fn=_crash_first, args=(i,)) for i in range(3)]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {i: i + 1 for i in range(3)}
        assert report.pool_rebuilds >= 1
        for task_report in report.tasks.values():
            assert task_report.outcome in (RunOutcome.RETRIED, RunOutcome.OK)
        assert any(
            task_report.outcome is RunOutcome.RETRIED
            for task_report in report.tasks.values()
        )


class TestNonBlockingBackoff:
    def test_other_tasks_complete_during_backoff(self, tmp_path):
        """A long retry backoff must not stall the scheduling loop.

        ``lagging`` fails its first attempt and backs off 1.2 s; the
        fast tasks behind it in the queue must all complete well before
        that backoff elapses (the old scheduler slept inside
        ``handle_failure``, freezing submission and harvesting).
        """
        policy = RetryPolicy(
            max_attempts=2, base_delay=1.2, multiplier=1.0,
            max_delay=1.2, jitter=0.0,
        )
        tasks = [FanoutTask(key="lagging", fn=_flaky, args=(99, 1))] + [
            FanoutTask(
                key=f"fast-{i}", fn=_record_completion,
                args=(i, str(tmp_path)),
            )
            for i in range(4)
        ]
        started = time.monotonic()  # repro: noqa(REP108) -- asserting wall time
        results, report = run_fanout(tasks, jobs=2, policy=policy)
        elapsed = time.monotonic() - started  # repro: noqa(REP108) -- ditto
        assert results["lagging"] == 99
        assert report.tasks["lagging"].retries == 1
        # The retried task itself must wait out its 1.2 s backoff ...
        assert elapsed >= 1.2
        # ... but every fast task finished while it was waiting.
        for i in range(4):
            stamp = float((tmp_path / f"done-{i}").read_text())
            assert stamp - started < 1.0, f"fast-{i} stalled behind backoff"


class TestTimeouts:
    def test_hung_task_is_reclaimed(self):
        tasks = [FanoutTask(key="slow", fn=_hang_first, args=(5,))]
        started = time.monotonic()  # repro: noqa(REP108) -- asserting wall time
        results, report = run_fanout(
            tasks, jobs=1, policy=FAST_RETRIES, task_timeout=0.5
        )
        elapsed = time.monotonic() - started  # repro: noqa(REP108) -- ditto
        assert results == {"slow": 5}
        assert elapsed < 20.0  # did not wait out the 30 s hang
        state = report.tasks["slow"]
        assert state.timeouts == 1
        assert state.outcome is RunOutcome.RETRIED
        assert report.pool_rebuilds >= 1

    def test_bystander_requeue_is_not_a_retry(self, tmp_path):
        """A task requeued only because a *concurrent* task hung must
        finish ``OK``: no retry charged, no stale error string, the
        requeue counted in ``bystander_requeues`` instead.
        """
        tasks = [
            FanoutTask(
                key="slow", fn=_hang_once_marked,
                args=(5, str(tmp_path)),
            ),
            # Staggers the bystander's start 0.3 s behind "slow" so it
            # is mid-flight but clearly under budget at reclaim time.
            FanoutTask(key="pace", fn=_pause_then_return, args=(1, 0.3)),
            FanoutTask(
                key="bystander", fn=_hang_once_marked,
                args=(8, str(tmp_path)),
            ),
        ]
        results, report = run_fanout(
            tasks, jobs=2, policy=FAST_RETRIES, task_timeout=1.0
        )
        assert results == {"slow": 5, "pace": 1, "bystander": 8}
        bystander = report.tasks["bystander"]
        assert bystander.outcome is RunOutcome.OK
        assert bystander.retries == 0
        assert bystander.bystander_requeues == 1
        assert bystander.timeouts == 0
        assert bystander.error is None
        assert bystander.attempts == 2  # resubmitted at the same index
        slow = report.tasks["slow"]
        assert slow.outcome is RunOutcome.RETRIED
        assert slow.timeouts == 1
        assert report.total_retries == 1  # only "slow"; no inflation
        assert report.total_bystander_requeues == 1
        assert report.pool_rebuilds >= 1
