"""run_fanout scheduling: retries, pool rebuilds, timeouts, degradation.

The toy task functions live at module level so pool workers can import
them; each takes the trailing ``FaultContext`` argument the scheduler
passes, and uses ``ctx.attempt`` (or ``ctx is None``, which marks the
degraded in-process fallback) to decide deterministically whether to
misbehave -- no fault plan needed to exercise the executor itself.
"""

import os
import time

import pytest

from repro.faults import (
    FAST_RETRIES,
    FanoutTask,
    RetryPolicy,
    RunOutcome,
    run_fanout,
)


def _double(value, ctx=None):
    return value * 2


def _flaky(value, fail_below, ctx=None):
    if ctx is not None and ctx.attempt < fail_below:
        raise ValueError(f"attempt {ctx.attempt} fails")
    return value


def _always_fail(value, ctx=None):
    raise ValueError("always fails")


def _fail_in_pool(value, ctx=None):
    if ctx is not None:
        raise ValueError("fails on every pool attempt")
    return value * 10


def _crash_first(value, ctx=None):
    if ctx is not None and ctx.attempt == 0:
        os._exit(86)
    return value + 1


def _hang_first(value, ctx=None):
    if ctx is not None and ctx.attempt == 0:
        time.sleep(30.0)
    return value


class TestHappyPath:
    def test_all_ok(self):
        tasks = [FanoutTask(key=i, fn=_double, args=(i,)) for i in range(5)]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {i: i * 2 for i in range(5)}
        assert report.all_ok
        assert report.outcome_counts()["ok"] == 5
        for task_report in report.tasks.values():
            assert task_report.attempts == 1
            assert task_report.retries == 0

    def test_empty_tasks(self):
        results, report = run_fanout([], jobs=2)
        assert results == {}
        assert report.tasks == {}

    def test_duplicate_keys_rejected(self):
        tasks = [
            FanoutTask(key="same", fn=_double, args=(1,)),
            FanoutTask(key="same", fn=_double, args=(2,)),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            run_fanout(tasks, jobs=2)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            run_fanout([FanoutTask(key=1, fn=_double, args=(1,))], jobs=0)


class TestRetries:
    def test_transient_failure_is_retried(self):
        tasks = [FanoutTask(key="k", fn=_flaky, args=(41, 1))]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {"k": 41}
        state = report.tasks["k"]
        assert state.outcome is RunOutcome.RETRIED
        assert state.retries == 1
        assert state.attempts == 2
        assert "fails" in state.error

    def test_mixed_batch_keeps_ok_labels(self):
        tasks = [
            FanoutTask(key="stable", fn=_double, args=(3,)),
            FanoutTask(key="flaky", fn=_flaky, args=(9, 2)),
        ]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {"stable": 6, "flaky": 9}
        assert report.outcome("stable") is RunOutcome.OK
        assert report.outcome("flaky") is RunOutcome.RETRIED


class TestDegradation:
    def test_exhausted_retries_degrade_to_serial(self):
        tasks = [FanoutTask(key="k", fn=_fail_in_pool, args=(7,))]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {"k": 70}
        state = report.tasks["k"]
        assert state.outcome is RunOutcome.DEGRADED
        assert state.degraded
        assert state.retries == FAST_RETRIES.max_attempts - 1

    def test_hopeless_task_fails_but_batch_survives(self):
        tasks = [
            FanoutTask(key="good", fn=_double, args=(1,)),
            FanoutTask(key="bad", fn=_always_fail, args=(1,)),
        ]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {"good": 2}
        assert report.outcome("bad") is RunOutcome.FAILED
        assert report.failed_keys == ["bad"]
        assert not report.all_ok

    def test_degrade_disabled_fails_fast(self):
        tasks = [FanoutTask(key="k", fn=_fail_in_pool, args=(7,))]
        results, report = run_fanout(
            tasks, jobs=2, policy=FAST_RETRIES, degrade=False
        )
        assert results == {}
        assert report.outcome("k") is RunOutcome.FAILED


class TestPoolBreakage:
    def test_worker_crash_is_survived(self):
        tasks = [FanoutTask(key=i, fn=_crash_first, args=(i,)) for i in range(3)]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {i: i + 1 for i in range(3)}
        assert report.pool_rebuilds >= 1
        for task_report in report.tasks.values():
            assert task_report.outcome in (RunOutcome.RETRIED, RunOutcome.OK)
        assert any(
            task_report.outcome is RunOutcome.RETRIED
            for task_report in report.tasks.values()
        )


class TestTimeouts:
    def test_hung_task_is_reclaimed(self):
        tasks = [FanoutTask(key="slow", fn=_hang_first, args=(5,))]
        started = time.monotonic()  # repro: noqa(REP108) -- asserting wall time
        results, report = run_fanout(
            tasks, jobs=1, policy=FAST_RETRIES, task_timeout=0.5
        )
        elapsed = time.monotonic() - started  # repro: noqa(REP108) -- ditto
        assert results == {"slow": 5}
        assert elapsed < 20.0  # did not wait out the 30 s hang
        state = report.tasks["slow"]
        assert state.timeouts == 1
        assert state.outcome is RunOutcome.RETRIED
        assert report.pool_rebuilds >= 1
