"""run_fanout scheduling: retries, pool rebuilds, timeouts, degradation.

The toy task functions live at module level so pool workers can import
them; each takes the trailing ``FaultContext`` argument the scheduler
passes, and uses ``ctx.attempt`` (or ``ctx is None``, which marks the
degraded in-process fallback) to decide deterministically whether to
misbehave -- no fault plan needed to exercise the executor itself.
"""

import os
import time
from concurrent.futures import Future

import pytest

from repro.faults import (
    FAST_RETRIES,
    ExecutorBackend,
    FanoutTask,
    RetryPolicy,
    RunOutcome,
    run_fanout,
    stable_fraction,
    task_token,
)


def _double(value, ctx=None):
    return value * 2


def _flaky(value, fail_below, ctx=None):
    if ctx is not None and ctx.attempt < fail_below:
        raise ValueError(f"attempt {ctx.attempt} fails")
    return value


def _always_fail(value, ctx=None):
    raise ValueError("always fails")


def _fail_in_pool(value, ctx=None):
    if ctx is not None:
        raise ValueError("fails on every pool attempt")
    return value * 10


def _crash_first(value, ctx=None):
    if ctx is not None and ctx.attempt == 0:
        os._exit(86)
    return value + 1


def _hang_first(value, ctx=None):
    if ctx is not None and ctx.attempt == 0:
        time.sleep(30.0)
    return value


def _record_completion(value, out_dir, ctx=None):
    stamp = time.monotonic()  # repro: noqa(REP108) -- test measures wall time
    with open(os.path.join(out_dir, f"done-{value}"), "w") as handle:
        handle.write(repr(stamp))
    return value


def _pause_then_return(value, seconds, ctx=None):
    time.sleep(seconds)
    return value


def _hang_once_marked(value, marker_dir, ctx=None):
    """Sleep 30 s on the first invocation ever, return instantly after.

    A file marker (not ``ctx.attempt``) decides, because a bystander
    requeue deliberately replays the same attempt index.
    """
    marker = os.path.join(marker_dir, f"ran-{value}")
    first = not os.path.exists(marker)
    with open(marker, "a"):
        pass
    if first and ctx is not None:
        time.sleep(30.0)
    return value


class TestHappyPath:
    def test_all_ok(self):
        tasks = [FanoutTask(key=i, fn=_double, args=(i,)) for i in range(5)]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {i: i * 2 for i in range(5)}
        assert report.all_ok
        assert report.outcome_counts()["ok"] == 5
        for task_report in report.tasks.values():
            assert task_report.attempts == 1
            assert task_report.retries == 0

    def test_empty_tasks(self):
        results, report = run_fanout([], jobs=2)
        assert results == {}
        assert report.tasks == {}

    def test_duplicate_keys_rejected(self):
        tasks = [
            FanoutTask(key="same", fn=_double, args=(1,)),
            FanoutTask(key="same", fn=_double, args=(2,)),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            run_fanout(tasks, jobs=2)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            run_fanout([FanoutTask(key=1, fn=_double, args=(1,))], jobs=0)


class TestRetries:
    def test_transient_failure_is_retried(self):
        tasks = [FanoutTask(key="k", fn=_flaky, args=(41, 1))]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {"k": 41}
        state = report.tasks["k"]
        assert state.outcome is RunOutcome.RETRIED
        assert state.retries == 1
        assert state.attempts == 2
        assert "fails" in state.error

    def test_mixed_batch_keeps_ok_labels(self):
        tasks = [
            FanoutTask(key="stable", fn=_double, args=(3,)),
            FanoutTask(key="flaky", fn=_flaky, args=(9, 2)),
        ]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {"stable": 6, "flaky": 9}
        assert report.outcome("stable") is RunOutcome.OK
        assert report.outcome("flaky") is RunOutcome.RETRIED


class TestDegradation:
    def test_exhausted_retries_degrade_to_serial(self):
        tasks = [FanoutTask(key="k", fn=_fail_in_pool, args=(7,))]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {"k": 70}
        state = report.tasks["k"]
        assert state.outcome is RunOutcome.DEGRADED
        assert state.degraded
        assert state.retries == FAST_RETRIES.max_attempts - 1

    def test_hopeless_task_fails_but_batch_survives(self):
        tasks = [
            FanoutTask(key="good", fn=_double, args=(1,)),
            FanoutTask(key="bad", fn=_always_fail, args=(1,)),
        ]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {"good": 2}
        assert report.outcome("bad") is RunOutcome.FAILED
        assert report.failed_keys == ["bad"]
        assert not report.all_ok

    def test_degrade_disabled_fails_fast(self):
        tasks = [FanoutTask(key="k", fn=_fail_in_pool, args=(7,))]
        results, report = run_fanout(
            tasks, jobs=2, policy=FAST_RETRIES, degrade=False
        )
        assert results == {}
        assert report.outcome("k") is RunOutcome.FAILED


class TestPoolBreakage:
    def test_worker_crash_is_survived(self):
        tasks = [FanoutTask(key=i, fn=_crash_first, args=(i,)) for i in range(3)]
        results, report = run_fanout(tasks, jobs=2, policy=FAST_RETRIES)
        assert results == {i: i + 1 for i in range(3)}
        assert report.pool_rebuilds >= 1
        for task_report in report.tasks.values():
            assert task_report.outcome in (RunOutcome.RETRIED, RunOutcome.OK)
        assert any(
            task_report.outcome is RunOutcome.RETRIED
            for task_report in report.tasks.values()
        )


class TestNonBlockingBackoff:
    def test_other_tasks_complete_during_backoff(self, tmp_path):
        """A long retry backoff must not stall the scheduling loop.

        ``lagging`` fails its first attempt and backs off 1.2 s; the
        fast tasks behind it in the queue must all complete well before
        that backoff elapses (the old scheduler slept inside
        ``handle_failure``, freezing submission and harvesting).
        """
        policy = RetryPolicy(
            max_attempts=2, base_delay=1.2, multiplier=1.0,
            max_delay=1.2, jitter=0.0,
        )
        tasks = [FanoutTask(key="lagging", fn=_flaky, args=(99, 1))] + [
            FanoutTask(
                key=f"fast-{i}", fn=_record_completion,
                args=(i, str(tmp_path)),
            )
            for i in range(4)
        ]
        started = time.monotonic()  # repro: noqa(REP108) -- asserting wall time
        results, report = run_fanout(tasks, jobs=2, policy=policy)
        elapsed = time.monotonic() - started  # repro: noqa(REP108) -- ditto
        assert results["lagging"] == 99
        assert report.tasks["lagging"].retries == 1
        # The retried task itself must wait out its 1.2 s backoff ...
        assert elapsed >= 1.2
        # ... but every fast task finished while it was waiting.
        for i in range(4):
            stamp = float((tmp_path / f"done-{i}").read_text())
            assert stamp - started < 1.0, f"fast-{i} stalled behind backoff"


class _FakeClock:
    """Deterministic stand-in for the ``time`` module in the scheduler.

    ``wait`` (also faked) advances this clock by exactly its timeout, so
    the test can land the scheduler *precisely* on the reclaim deadline
    ``min(started) + task_timeout`` -- the boundary the old strict
    comparison busy-spun on.
    """

    def __init__(self, start=1000.0):
        self.now = start
        self.sleeps = []

    def monotonic(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += max(0.0, seconds)


class _HangFirstBackend(ExecutorBackend):
    """First submitted future never resolves; later ones succeed inline."""

    name = "fake-hang-first"

    def __init__(self):
        self.submissions = 0
        self.recoveries = []

    @property
    def capacity(self):
        return 1

    def submit(self, fn, args):
        self.submissions += 1
        future = Future()
        if self.submissions > 1:
            future.set_result(fn(*args))
        return future  # the first attempt hangs forever

    def domain_of(self, future):
        return 0

    def recover(self, domain):
        self.recoveries.append(domain)

    def shutdown(self):
        pass


class TestTimeoutBoundary:
    """Regression: a wake landing exactly on ``started + task_timeout``
    must reclaim the overdue task, not recompute a 0.0 wait timeout and
    busy-spin until the clock *strictly* exceeds the deadline.
    """

    def test_boundary_wake_reclaims_instead_of_spinning(self, monkeypatch):
        import repro.faults.executor as executor_mod

        clock = _FakeClock()
        wait_calls = {"total": 0, "zero_timeout": 0}

        def fake_wait(futures, timeout=None, return_when=None):
            wait_calls["total"] += 1
            if wait_calls["total"] > 25:
                raise AssertionError(
                    "scheduler busy-spun: wait() called more than 25 times"
                )
            done = {future for future in futures if future.done()}
            if done:
                return done, set(futures) - done
            assert timeout is not None, (
                "wait() would block forever on the hung future"
            )
            if timeout == 0.0:
                wait_calls["zero_timeout"] += 1
            clock.sleep(timeout)  # wake exactly at the deadline
            return set(), set(futures)

        monkeypatch.setattr(executor_mod, "time", clock)
        monkeypatch.setattr(executor_mod, "wait", fake_wait)

        backend = _HangFirstBackend()
        policy = RetryPolicy(
            max_attempts=2, base_delay=0.0, multiplier=1.0,
            max_delay=0.0, jitter=0.0,
        )
        start = clock.now
        results, report = run_fanout(
            [FanoutTask(key="k", fn=_double, args=(21,))],
            jobs=1, policy=policy, task_timeout=1.0, backend=backend,
        )

        assert results == {"k": 42}
        state = report.tasks["k"]
        assert state.outcome is RunOutcome.RETRIED
        assert state.timeouts == 1
        assert state.retries == 1
        assert state.attempts == 2
        assert report.pool_rebuilds == 1
        assert backend.recoveries == [0]
        # The reclaim happened on the boundary wake itself: the clock
        # advanced exactly one task_timeout, and no wait() call ever ran
        # with the degenerate 0.0 timeout the busy-spin produced.
        assert clock.now - start == pytest.approx(1.0)
        assert wait_calls["zero_timeout"] == 0
        assert wait_calls["total"] <= 3


class TestTokenIdentity:
    """Regression: ``str(key)`` collapsed int/str key pairs (``1`` vs
    ``"1"``) onto one token, so they shared a single fault schedule and
    retry-jitter stream.  ``task_token`` uses ``repr`` to keep them
    distinct.
    """

    def test_int_and_str_keys_get_distinct_tokens(self):
        assert task_token(1) == "1"
        assert task_token("1") == "'1'"
        assert task_token(1) != task_token("1")

    def test_report_tokens_disambiguated_in_fanout(self):
        tasks = [
            FanoutTask(key=1, fn=_double, args=(10,)),
            FanoutTask(key="1", fn=_double, args=(20,)),
        ]
        results, report = run_fanout(
            tasks, jobs=1, policy=FAST_RETRIES, backend="serial"
        )
        assert results == {1: 20, "1": 40}
        tokens = {key: state.token for key, state in report.tasks.items()}
        assert tokens[1] != tokens["1"]
        assert sorted(tokens.values()) == ["'1'", "1"]

    def test_distinct_tokens_draw_independent_fault_decisions(self):
        # The fault injector hashes (seed, site, token); a collapsed
        # token would force identical draws for every seed.  Distinct
        # repr tokens must disagree for *some* seed.
        site = "experiments.run"
        draws = [
            (
                stable_fraction(seed, site, task_token(1)),
                stable_fraction(seed, site, task_token("1")),
            )
            for seed in range(32)
        ]
        assert any(a != b for a, b in draws)
        # str() would have collapsed them: identical for every seed.
        assert all(
            stable_fraction(seed, site, str(1))
            == stable_fraction(seed, site, str("1"))
            for seed in range(32)
        )


class TestTimeouts:
    def test_hung_task_is_reclaimed(self):
        tasks = [FanoutTask(key="slow", fn=_hang_first, args=(5,))]
        started = time.monotonic()  # repro: noqa(REP108) -- asserting wall time
        results, report = run_fanout(
            tasks, jobs=1, policy=FAST_RETRIES, task_timeout=0.5
        )
        elapsed = time.monotonic() - started  # repro: noqa(REP108) -- ditto
        assert results == {"slow": 5}
        assert elapsed < 20.0  # did not wait out the 30 s hang
        state = report.tasks["slow"]
        assert state.timeouts == 1
        assert state.outcome is RunOutcome.RETRIED
        assert report.pool_rebuilds >= 1

    def test_bystander_requeue_is_not_a_retry(self, tmp_path):
        """A task requeued only because a *concurrent* task hung must
        finish ``OK``: no retry charged, no stale error string, the
        requeue counted in ``bystander_requeues`` instead.
        """
        tasks = [
            FanoutTask(
                key="slow", fn=_hang_once_marked,
                args=(5, str(tmp_path)),
            ),
            # Staggers the bystander's start 0.3 s behind "slow" so it
            # is mid-flight but clearly under budget at reclaim time.
            FanoutTask(key="pace", fn=_pause_then_return, args=(1, 0.3)),
            FanoutTask(
                key="bystander", fn=_hang_once_marked,
                args=(8, str(tmp_path)),
            ),
        ]
        results, report = run_fanout(
            tasks, jobs=2, policy=FAST_RETRIES, task_timeout=1.0
        )
        assert results == {"slow": 5, "pace": 1, "bystander": 8}
        bystander = report.tasks["bystander"]
        assert bystander.outcome is RunOutcome.OK
        assert bystander.retries == 0
        assert bystander.bystander_requeues == 1
        assert bystander.timeouts == 0
        assert bystander.error is None
        assert bystander.attempts == 2  # resubmitted at the same index
        slow = report.tasks["slow"]
        assert slow.outcome is RunOutcome.RETRIED
        assert slow.timeouts == 1
        assert report.total_retries == 1  # only "slow"; no inflation
        assert report.total_bystander_requeues == 1
        assert report.pool_rebuilds >= 1
