"""FaultPlan parsing, validation, and the deterministic decision source."""

import pytest

from repro.faults import ENV_FLAG, FaultPlan, stable_fraction


class TestStableFraction:
    def test_range_and_determinism(self):
        for token in ("a", "b", "doom3@0", ""):
            value = stable_fraction(7, "crash", token)
            assert 0.0 <= value < 1.0
            assert value == stable_fraction(7, "crash", token)

    def test_varies_with_each_component(self):
        base = stable_fraction(0, "site", "token")
        assert base != stable_fraction(1, "site", "token")
        assert base != stable_fraction(0, "other", "token")
        assert base != stable_fraction(0, "site", "other")

    def test_roughly_uniform(self):
        values = [
            stable_fraction(3, "u", str(index)) for index in range(2000)
        ]
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55
        assert sum(1 for v in values if v < 0.2) / len(values) == pytest.approx(
            0.2, abs=0.05
        )


class TestParse:
    def test_empty_spec_is_inactive(self):
        plan = FaultPlan.parse("")
        assert not plan.is_active
        assert plan == FaultPlan()

    def test_full_spec_with_aliases(self):
        plan = FaultPlan.parse(
            "seed=7, crash=0.2, fail=0.1, store=0.3, corrupt=0.4, "
            "slow=0.5, slow_seconds=1.5"
        )
        assert plan.seed == 7
        assert plan.crash_rate == 0.2
        assert plan.fail_rate == 0.1
        assert plan.store_error_rate == 0.3
        assert plan.corrupt_rate == 0.4
        assert plan.slow_rate == 0.5
        assert plan.slow_seconds == 1.5
        assert plan.is_active

    def test_long_form_keys(self):
        plan = FaultPlan.parse("crash_rate=0.5,store_error_rate=0.25")
        assert plan.crash_rate == 0.5
        assert plan.store_error_rate == 0.25

    def test_crash_on_index(self):
        plan = FaultPlan.parse("crash_on=3")
        assert plan.crash_on == 3
        assert plan.is_active

    def test_describe_parse_roundtrip(self):
        plan = FaultPlan.parse("seed=9,crash=0.2,corrupt=0.1,slow=0.3")
        assert FaultPlan.parse(plan.describe()) == plan

    @pytest.mark.parametrize(
        "spec",
        ["crash", "bogus=1", "crash=high", "seed=1.5"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_rate": 1.5},
            {"fail_rate": -0.1},
            {"slow_seconds": -1.0},
            {"crash_on": -2},
        ],
    )
    def test_out_of_range_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)


class TestFromEnv:
    def test_unset_returns_none(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert FaultPlan.from_env() is None

    def test_set_spec_parses(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "seed=4,fail=0.5")
        plan = FaultPlan.from_env()
        assert plan == FaultPlan(seed=4, fail_rate=0.5)

    def test_as_dict_is_json_safe(self):
        import json

        payload = FaultPlan(seed=2, crash_rate=0.1).as_dict()
        assert json.loads(json.dumps(payload)) == payload
