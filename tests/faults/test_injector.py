"""Process-wide injector activation, suppression, and injection sites."""

import pytest

from repro import faults
from repro.faults import (
    ENV_FLAG,
    FaultContext,
    FaultInjector,
    FaultPlan,
    InjectedFault,
)


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    monkeypatch.delenv(ENV_FLAG, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestActivation:
    def test_inactive_by_default(self):
        assert faults.active_injector() is None

    def test_activate_and_deactivate(self):
        injector = faults.activate(FaultPlan(fail_rate=1.0))
        assert faults.active_injector() is injector
        faults.deactivate()
        assert faults.active_injector() is None

    def test_resolved_lazily_from_env(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "seed=5,fail=1.0")
        faults.reset()
        injector = faults.active_injector()
        assert injector is not None
        assert injector.plan == FaultPlan(seed=5, fail_rate=1.0)

    def test_inactive_env_plan_resolves_to_none(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "seed=5")
        faults.reset()
        assert faults.active_injector() is None


class TestSuppress:
    def test_suppress_hides_the_injector(self):
        faults.activate(FaultPlan(fail_rate=1.0))
        with faults.suppress():
            assert faults.active_injector() is None
            assert faults.suppressed()
        assert faults.active_injector() is not None
        assert not faults.suppressed()

    def test_suppress_is_reentrant(self):
        faults.activate(FaultPlan(fail_rate=1.0))
        with faults.suppress():
            with faults.suppress():
                assert faults.active_injector() is None
            assert faults.active_injector() is None
        assert faults.active_injector() is not None


class TestEnterWorker:
    def test_marks_worker_and_fires_faults(self):
        faults.activate(FaultPlan(fail_rate=1.0))
        assert not faults.in_worker()
        ctx = FaultContext(index=0, attempt=0, token="t")
        with pytest.raises(InjectedFault):
            faults.enter_worker(ctx)
        assert faults.in_worker()

    def test_none_context_fires_nothing(self):
        faults.activate(FaultPlan(fail_rate=1.0))
        faults.enter_worker(None)  # must not raise

    def test_noop_while_suppressed(self):
        faults.activate(FaultPlan(fail_rate=1.0))
        ctx = FaultContext(index=0, attempt=0, token="t")
        with faults.suppress():
            faults.enter_worker(ctx)  # must not raise
            assert not faults.in_worker()


class TestInjectionSites:
    def test_fail_decisions_vary_per_attempt(self):
        injector = FaultInjector(FaultPlan(seed=11, fail_rate=0.5))
        decisions = {
            attempt: injector._fire("fail", f"key@{attempt}", 0.5)
            for attempt in range(8)
        }
        assert True in decisions.values()
        assert False in decisions.values()

    def test_store_should_fail_deterministic(self):
        injector = FaultInjector(FaultPlan(seed=3, store_error_rate=0.5))
        first = [injector.store_should_fail(str(k)) for k in range(16)]
        second = [injector.store_should_fail(str(k)) for k in range(16)]
        assert first == second
        assert any(first) and not all(first)

    def test_corrupt_payload_truncates(self):
        injector = FaultInjector(FaultPlan(corrupt_rate=1.0))
        payload = b"x" * 100
        corrupted = injector.corrupt_payload("key", payload)
        assert corrupted is not None
        assert len(corrupted) == 50

    def test_corrupt_payload_none_when_not_selected(self):
        injector = FaultInjector(FaultPlan(corrupt_rate=0.0))
        assert injector.corrupt_payload("key", b"data") is None

    def test_zero_rates_never_fire(self):
        injector = FaultInjector(FaultPlan())
        ctx = FaultContext(index=0, attempt=0, token="t")
        injector.on_task_start(ctx)  # no crash, no sleep, no raise
        assert not injector.store_should_fail("k")
