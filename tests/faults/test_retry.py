"""Backoff schedule properties of RetryPolicy."""

import pytest

from repro.faults import FAST_RETRIES, RetryPolicy


class TestDelay:
    def test_grows_geometrically_without_jitter(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=100.0, jitter=0.0
        )
        delays = [policy.delay(attempt) for attempt in range(4)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=10.0, max_delay=2.0, jitter=0.0
        )
        assert policy.delay(5) == 2.0

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.5)
        for token in ("a", "b", "c", "d"):
            for attempt in range(3):
                delay = policy.delay(attempt, token)
                assert 0.5 <= delay <= 1.5

    def test_jitter_is_deterministic_per_token_and_attempt(self):
        policy = RetryPolicy()
        assert policy.delay(1, "k") == policy.delay(1, "k")
        assert policy.delay(1, "k") != policy.delay(1, "other")
        assert policy.delay(1, "k") != policy.delay(2, "k")

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": 2.0},
        ],
    )
    def test_bad_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestFastRetries:
    def test_never_sleeps_but_keeps_budget(self):
        assert FAST_RETRIES.max_attempts == RetryPolicy().max_attempts
        for attempt in range(5):
            assert FAST_RETRIES.delay(attempt, "token") == 0.0
