"""Executor backends: serial, process-pool, work-stealing fault domains.

Toy task functions live at module level so pool workers can import
them; each takes the trailing ``FaultContext`` the scheduler passes.
"""

import os
import time

import pytest

from repro import faults
from repro.faults import (
    FAST_RETRIES,
    BackendBrokenError,
    FanoutTask,
    FaultPlan,
    InjectedCrash,
    ProcessPoolBackend,
    RunOutcome,
    SerialBackend,
    WorkStealingBackend,
    make_backend,
    run_fanout,
)


@pytest.fixture(autouse=True)
def clean_faults_state(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset()
    yield
    faults.reset()


def _double(value, ctx=None):
    return value * 2


def _entering_double(value, ctx=None):
    """Like a real pool worker: runs the injector's task-start faults."""
    faults.enter_worker(ctx)
    return value * 2


def _crash_first(value, ctx=None):
    if ctx is not None and ctx.attempt == 0:
        os._exit(86)
    return value + 1


def _sleep_attempt0(value, ctx=None):
    if ctx is not None and ctx.attempt == 0:
        time.sleep(1.0)
    return value


def _exit_now(value, ctx=None):
    os._exit(86)


class TestMakeBackend:
    def test_default_is_process_pool(self):
        backend = make_backend(None, jobs=3)
        try:
            assert isinstance(backend, ProcessPoolBackend)
            assert backend.capacity == 3
        finally:
            backend.shutdown()

    def test_named_backends(self):
        serial = make_backend("serial", jobs=4)
        assert isinstance(serial, SerialBackend)
        assert serial.capacity == 1
        stealing = make_backend("work-stealing", jobs=4, shards=2)
        try:
            assert isinstance(stealing, WorkStealingBackend)
            assert stealing.shards == 2
            assert stealing.capacity == 4
        finally:
            stealing.shutdown()

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert make_backend(backend, jobs=8) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            make_backend("carrier-pigeon", jobs=2)


class TestSerialBackend:
    def test_happy_path_matches_pool(self):
        tasks = [FanoutTask(key=i, fn=_double, args=(i,)) for i in range(4)]
        serial_results, serial_report = run_fanout(
            tasks, jobs=1, policy=FAST_RETRIES, backend="serial"
        )
        pool_results, pool_report = run_fanout(
            tasks, jobs=2, policy=FAST_RETRIES, backend="process-pool"
        )
        assert serial_results == pool_results == {i: i * 2 for i in range(4)}
        assert serial_report.all_ok and pool_report.all_ok
        assert serial_report.backend == "serial"
        assert pool_report.backend == "process-pool"

    def test_crash_fault_raises_in_process(self):
        # A crash fault must not kill the parent when the attempt runs
        # in-process: it surfaces as InjectedCrash and is retried at the
        # same (token, attempt) coordinates a pooled run would use.
        faults.activate(FaultPlan(seed=1, crash_on=0))
        tasks = [FanoutTask(key="k", fn=_entering_double, args=(21,))]
        results, report = run_fanout(
            tasks, jobs=1, policy=FAST_RETRIES, backend="serial"
        )
        assert results == {"k": 42}
        state = report.tasks["k"]
        assert state.outcome is RunOutcome.RETRIED
        assert state.retries == 1
        assert "InjectedCrash" in state.error

    def test_injected_crash_is_a_fault(self):
        assert issubclass(InjectedCrash, faults.InjectedFault)


class TestWorkStealingBackend:
    def test_routes_to_least_loaded_shard(self):
        backend = WorkStealingBackend(shards=2, jobs_per_shard=1)
        try:
            first = backend.submit(_double, (1, None))
            second = backend.submit(_double, (2, None))
            assert backend.domain_of(first) == 0
            assert backend.domain_of(second) == 1
            assert first.result() == 2 and second.result() == 4
            backend.release(first)
            third = backend.submit(_double, (3, None))
            assert backend.domain_of(third) == 0
            assert third.result() == 6
        finally:
            backend.shutdown()

    def test_crash_only_drains_its_own_domain(self):
        # Shard 0 hosts a crashing task, shard 1 a healthy sleeper.  The
        # sleeper's domain never breaks, so it completes on its first
        # and only attempt -- no retry, no bystander requeue.
        tasks = [
            FanoutTask(key="crashy", fn=_crash_first, args=(1,)),
            FanoutTask(key="steady", fn=_sleep_attempt0, args=(7,)),
        ]
        results, report = run_fanout(
            tasks, jobs=2, policy=FAST_RETRIES,
            backend=WorkStealingBackend(shards=2, jobs_per_shard=1),
        )
        assert results == {"crashy": 2, "steady": 7}
        steady = report.tasks["steady"]
        assert steady.outcome is RunOutcome.OK
        assert steady.attempts == 1
        assert steady.retries == 0
        assert steady.bystander_requeues == 0
        assert report.tasks["crashy"].outcome is RunOutcome.RETRIED
        assert report.pool_rebuilds == 1

    def test_single_domain_pool_drains_everything(self):
        # Contrast case: on the single-domain process pool the same
        # crash kills the sleeper's worker too, charging it a retry.
        tasks = [
            FanoutTask(key="crashy", fn=_crash_first, args=(1,)),
            FanoutTask(key="steady", fn=_sleep_attempt0, args=(7,)),
        ]
        results, report = run_fanout(
            tasks, jobs=2, policy=FAST_RETRIES, backend="process-pool"
        )
        assert results == {"crashy": 2, "steady": 7}
        steady = report.tasks["steady"]
        assert steady.attempts >= 2
        assert steady.retries >= 1

    def test_submit_on_broken_shard_raises_with_domain(self):
        backend = WorkStealingBackend(shards=2, jobs_per_shard=1)
        try:
            future = backend.submit(_exit_now, (0, None))
            with pytest.raises(Exception):
                future.result()
            backend.release(future)
            # Shard 0 is broken and still least-loaded; submitting to it
            # must identify the domain so the scheduler can recover it.
            with pytest.raises(BackendBrokenError) as excinfo:
                backend.submit(_double, (1, None))
            assert excinfo.value.domain == 0
            backend.recover(0)
            healed = backend.submit(_double, (5, None))
            assert healed.result() == 10
        finally:
            backend.shutdown()


class TestBackendMatrixToyTasks:
    def test_results_identical_across_backends(self):
        expected = {i: i * 2 for i in range(6)}
        for spec in ("serial", "process-pool", "work-stealing"):
            tasks = [
                FanoutTask(key=i, fn=_double, args=(i,)) for i in range(6)
            ]
            results, report = run_fanout(
                tasks, jobs=2, policy=FAST_RETRIES, backend=spec
            )
            assert results == expected, spec
            assert report.all_ok, spec
