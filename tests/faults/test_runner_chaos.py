"""Chaos tests: the real experiment grid under injected faults.

Each scenario runs a 4-point doom3 design grid through the parallel
``run_many`` path while a fault plan breaks workers, cache stores, or
cache entries -- and asserts the grid still completes with results
bit-identical to a clean serial run (``make chaos`` runs the same
proof over the full fast-workload grid from the command line).
"""

import pytest

from repro import faults
from repro.core import Design
from repro.core.angle import DEFAULT_THRESHOLD
from repro.experiments.runner import ExperimentRunner, RunKey
from repro.faults import ENV_FLAG, FAST_RETRIES, RunOutcome

WORKLOAD = "doom3-640x480"
KEYS = [
    RunKey(WORKLOAD, design, DEFAULT_THRESHOLD.effective_radians, True)
    for design in Design
]


def run_signature(run):
    return (
        run.frame_cycles,
        run.texture_cycles,
        run.external_texture_bytes,
        run.frame.num_requests,
    )


@pytest.fixture(scope="module")
def clean_signatures():
    with faults.suppress():
        runner = ExperimentRunner([WORKLOAD])
        results = runner.run_many(KEYS, jobs=1)
    return {key: run_signature(run) for key, run in results.items()}


@pytest.fixture(autouse=True)
def clean_faults_state(monkeypatch):
    monkeypatch.delenv(ENV_FLAG, raising=False)
    faults.reset()
    yield
    faults.reset()


def run_grid_under(spec, tmp_path, monkeypatch, jobs=2):
    """Activate ``spec`` (env + in-process) and run the grid in parallel."""
    monkeypatch.setenv(ENV_FLAG, spec)
    faults.reset()  # workers and parent resolve the plan from the env
    runner = ExperimentRunner(
        [WORKLOAD], cache_dir=tmp_path, retry_policy=FAST_RETRIES
    )
    results = runner.run_many(KEYS, jobs=jobs)
    return runner, results


class TestWorkerCrashes:
    def test_crash_mid_grid_completes_identically(
        self, tmp_path, monkeypatch, clean_signatures
    ):
        runner, results = run_grid_under(
            "seed=7,crash_on=0,crash=0.2", tmp_path, monkeypatch
        )
        assert set(results) == set(KEYS)
        for key in KEYS:
            assert run_signature(results[key]) == clean_signatures[key]
        report = runner.fanout_report()
        assert report.pool_rebuilds >= 1
        assert report.total_retries >= 1
        assert not report.failed_keys
        counts = report.outcome_counts()
        assert counts["failed"] == 0
        assert counts["retried"] + counts["degraded"] >= 1


class TestCacheFaults:
    def test_corrupt_entries_recompute(
        self, tmp_path, monkeypatch, clean_signatures
    ):
        runner, results = run_grid_under(
            "seed=7,corrupt=1.0", tmp_path, monkeypatch
        )
        assert set(results) == set(KEYS)
        for key in KEYS:
            assert run_signature(results[key]) == clean_signatures[key]
        # Every store was truncated, so every re-read failed its CRC.
        assert runner.fanout_report().outcome_counts()["failed"] == 0

    def test_store_failures_never_lose_results(
        self, tmp_path, monkeypatch, clean_signatures
    ):
        with pytest.warns(RuntimeWarning, match="cache store failed"):
            runner, results = run_grid_under(
                "seed=7,store=1.0", tmp_path, monkeypatch, jobs=1
            )
        assert set(results) == set(KEYS)
        for key in KEYS:
            assert run_signature(results[key]) == clean_signatures[key]
        assert runner.disk_cache.stats.stores == 0

    def test_injected_task_failures_degrade_but_complete(
        self, tmp_path, monkeypatch, clean_signatures
    ):
        runner, results = run_grid_under(
            "seed=7,fail=1.0", tmp_path, monkeypatch
        )
        assert set(results) == set(KEYS)
        for key in KEYS:
            assert run_signature(results[key]) == clean_signatures[key]
        report = runner.fanout_report()
        for key in KEYS:
            assert report.outcome(key) is RunOutcome.DEGRADED
        assert not report.failed_keys


class TestReporting:
    def test_clean_parallel_run_labels_everything_ok(
        self, tmp_path, clean_signatures
    ):
        runner = ExperimentRunner([WORKLOAD], cache_dir=tmp_path)
        results = runner.run_many(KEYS, jobs=2)
        report = runner.fanout_report()
        assert report.all_ok
        # trace task + one task per grid point
        assert len(report.tasks) == len(KEYS) + 1
        for key in KEYS:
            assert report.outcome(key) is RunOutcome.OK
            assert run_signature(results[key]) == clean_signatures[key]

    def test_serial_run_many_populates_report(self):
        runner = ExperimentRunner([WORKLOAD])
        runner.run_many(KEYS, jobs=1)
        report = runner.fanout_report()
        assert len(report.tasks) == len(KEYS)
        assert report.all_ok

    def test_manifest_embeds_plan_and_outcomes(
        self, tmp_path, monkeypatch
    ):
        from repro.obs.manifest import build_manifest

        monkeypatch.setenv(ENV_FLAG, "seed=7,fail=1.0")
        faults.reset()
        runner = ExperimentRunner(
            [WORKLOAD], cache_dir=tmp_path, retry_policy=FAST_RETRIES
        )
        runner.run_many(KEYS, jobs=2)
        manifest = build_manifest("test", config={}, runner=runner)
        assert manifest.faults["plan"]["fail_rate"] == 1.0
        fanout = manifest.faults["fanout"]
        assert fanout["outcomes"]["degraded"] == len(KEYS) + 1
        assert fanout["outcomes"]["failed"] == 0
        path = manifest.write(tmp_path / "chaos.manifest.json")
        from repro.obs.manifest import load_manifest

        assert load_manifest(path).faults == manifest.faults
