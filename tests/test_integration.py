"""End-to-end integration tests: the paper's qualitative claims.

These run the full stack (procedural scene -> rasterizer -> request
expansion -> design texture paths -> pipeline model -> energy) on the
fast workload and assert the *shapes* the paper reports, which is the
reproduction's actual contract.
"""

import math

import pytest

from repro.core import Design, simulate_frame
from repro.core.angle import THRESHOLD_SWEEP
from repro.energy import EnergyModel


class TestDesignOrderings:
    def test_atfim_beats_every_other_design_on_render(self, design_runs):
        baseline = design_runs[Design.BASELINE].frame
        atfim = design_runs[Design.A_TFIM].frame
        for design in (Design.BASELINE, Design.B_PIM, Design.S_TFIM):
            assert atfim.frame_cycles < design_runs[design].frame.frame_cycles

    def test_atfim_texture_speedup_band(self, design_runs):
        """Fig. 10: A-TFIM speeds up texture filtering substantially."""
        baseline = design_runs[Design.BASELINE].frame
        speedup = design_runs[Design.A_TFIM].frame.texture_speedup_over(baseline)
        assert speedup > 1.5

    def test_atfim_render_speedup_band(self, design_runs):
        """Fig. 11: overall speedup in the tens of percent (paper: 43%
        average, up to 65%)."""
        baseline = design_runs[Design.BASELINE].frame
        speedup = design_runs[Design.A_TFIM].frame.speedup_over(baseline)
        assert 1.2 < speedup < 2.0

    def test_bpim_modest_improvement(self, design_runs):
        """Fig. 5: B-PIM helps (bandwidth/latency) but far less than
        A-TFIM."""
        baseline = design_runs[Design.BASELINE].frame
        bpim = design_runs[Design.B_PIM].frame.speedup_over(baseline)
        atfim = design_runs[Design.A_TFIM].frame.speedup_over(baseline)
        assert 1.0 < bpim < atfim

    def test_stfim_not_better_than_bpim(self, design_runs):
        """Section IV: S-TFIM's gain over B-PIM is trivial to negative."""
        bpim = design_runs[Design.B_PIM].frame
        stfim = design_runs[Design.S_TFIM].frame
        assert stfim.frame_cycles >= 0.95 * bpim.frame_cycles


class TestTrafficShapes:
    def test_stfim_inflates_texture_traffic(self, design_runs):
        """Fig. 12: S-TFIM multiplies external texture traffic (paper
        average 2.79x, bars 2.07-6.37)."""
        baseline = design_runs[Design.BASELINE].frame.traffic.external_texture
        stfim = design_runs[Design.S_TFIM].frame.traffic.external_texture
        assert 2.0 < stfim / baseline < 8.0

    def test_atfim_traffic_near_baseline_at_default(self, design_runs):
        """Fig. 12: A-TFIM-001pi sits near the baseline."""
        baseline = design_runs[Design.BASELINE].frame.traffic.external_texture
        atfim = design_runs[Design.A_TFIM].frame.traffic.external_texture
        assert 0.6 < atfim / baseline < 1.5

    def test_texture_dominates_baseline_traffic(self, design_runs):
        """Fig. 2: texture fetches are the largest traffic class."""
        breakdown = design_runs[Design.BASELINE].frame.traffic.breakdown()
        assert breakdown["texture"] == max(breakdown.values())
        assert breakdown["texture"] > 0.4

    def test_tfim_designs_move_traffic_internal(self, design_runs):
        for design in (Design.S_TFIM, Design.A_TFIM):
            assert design_runs[design].frame.traffic.internal_total > 0
        assert design_runs[Design.BASELINE].frame.traffic.internal_total == 0


class TestThresholdSweep:
    @pytest.fixture(scope="class")
    def sweep(self, fast_workload, fast_workload_trace):
        scene, trace = fast_workload_trace
        runs = {}
        for threshold in THRESHOLD_SWEEP:
            config = fast_workload.design_config(
                Design.A_TFIM, angle_threshold=threshold.effective_radians
            )
            runs[threshold.label] = simulate_frame(scene, trace, config)
        return runs

    def test_speedup_monotone_in_threshold(self, sweep, design_runs):
        """Fig. 14: looser thresholds are never slower."""
        baseline = design_runs[Design.BASELINE].frame
        speedups = [
            sweep[t.label].frame.speedup_over(baseline) for t in THRESHOLD_SWEEP
        ]
        for tighter, looser in zip(speedups, speedups[1:]):
            assert looser >= tighter - 1e-9

    def test_traffic_monotone_in_threshold(self, sweep):
        """Fig. 12's threshold effect: looser thresholds fetch less."""
        traffic = [
            sweep[t.label].frame.traffic.external_texture
            for t in THRESHOLD_SWEEP
        ]
        for tighter, looser in zip(traffic, traffic[1:]):
            assert looser <= tighter + 1e-9

    def test_recalculations_monotone(self, sweep):
        recalcs = [
            sweep[t.label].path.parent_recalculations for t in THRESHOLD_SWEEP
        ]
        for tighter, looser in zip(recalcs, recalcs[1:]):
            assert looser <= tighter
        assert recalcs[-1] == 0  # no-recalculation

    def test_strictest_threshold_can_exceed_baseline_traffic(self, sweep,
                                                             design_runs):
        """Fig. 12: at strict thresholds recalculation can push A-TFIM
        traffic above baseline."""
        baseline = design_runs[Design.BASELINE].frame.traffic.external_texture
        strictest = sweep[THRESHOLD_SWEEP[0].label].frame.traffic.external_texture
        loosest = sweep[THRESHOLD_SWEEP[-1].label].frame.traffic.external_texture
        assert strictest > loosest
        assert loosest < baseline


class TestEnergyShapes:
    def test_fig13_orderings(self, design_runs):
        model = EnergyModel()
        totals = {
            design: model.frame_energy(design, run.frame).total
            for design, run in design_runs.items()
        }
        assert totals[Design.A_TFIM] < totals[Design.BASELINE]
        assert totals[Design.S_TFIM] > totals[Design.B_PIM]

    def test_atfim_energy_saving_band(self, design_runs):
        """Paper: ~22% less energy than baseline."""
        model = EnergyModel()
        baseline = model.frame_energy(
            Design.BASELINE, design_runs[Design.BASELINE].frame
        ).total
        atfim = model.frame_energy(
            Design.A_TFIM, design_runs[Design.A_TFIM].frame
        ).total
        assert 0.6 < atfim / baseline < 0.95


class TestWarmup:
    def test_warmup_reduces_cold_misses(self, fast_workload, fast_workload_trace):
        scene, trace = fast_workload_trace
        config = fast_workload.design_config(Design.BASELINE)
        cold = simulate_frame(scene, trace, config, warmup=False)
        warm = simulate_frame(scene, trace, config, warmup=True)
        assert warm.frame.cache_stats.l1_misses <= cold.frame.cache_stats.l1_misses
        assert warm.frame.traffic.external_texture <= (
            cold.frame.traffic.external_texture
        )

    def test_determinism(self, fast_workload, fast_workload_trace):
        scene, trace = fast_workload_trace
        config = fast_workload.design_config(Design.A_TFIM)
        first = simulate_frame(scene, trace, config)
        second = simulate_frame(scene, trace, config)
        assert first.frame.frame_cycles == second.frame.frame_cycles
        assert first.frame.traffic.external_texture == (
            second.frame.traffic.external_texture
        )
