"""Tests for the camera."""

import math

import numpy as np
import pytest

from repro.render.camera import Camera


def make_camera(**overrides):
    defaults = dict(
        position=np.array([0.0, 0.0, 5.0]),
        target=np.array([0.0, 0.0, 0.0]),
    )
    defaults.update(overrides)
    return Camera(**defaults)


class TestCamera:
    def test_forward_is_unit_toward_target(self):
        camera = make_camera()
        assert np.allclose(camera.forward, [0.0, 0.0, -1.0])

    def test_view_matrix_moves_camera_to_origin(self):
        camera = make_camera()
        eye = np.append(camera.position, 1.0)
        transformed = camera.view_matrix() @ eye
        assert np.allclose(transformed[:3], 0.0)

    def test_view_matrix_looks_down_negative_z(self):
        camera = make_camera()
        target = np.append(camera.target, 1.0)
        transformed = camera.view_matrix() @ target
        assert transformed[2] < 0

    def test_view_matrix_is_rigid(self):
        camera = make_camera(position=np.array([3.0, 4.0, 5.0]),
                             target=np.array([-1.0, 0.5, -2.0]))
        rotation = camera.view_matrix()[:3, :3]
        assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-12)

    def test_projection_centre_maps_to_origin(self):
        camera = make_camera()
        projection = camera.projection_matrix(aspect=1.0)
        point = projection @ np.array([0.0, 0.0, -10.0, 1.0])
        ndc = point[:3] / point[3]
        assert np.allclose(ndc[:2], 0.0)

    def test_projection_depth_range(self):
        camera = make_camera(near=1.0, far=100.0)
        projection = camera.projection_matrix(aspect=1.0)
        near_point = projection @ np.array([0.0, 0.0, -1.0, 1.0])
        far_point = projection @ np.array([0.0, 0.0, -100.0, 1.0])
        assert near_point[2] / near_point[3] == pytest.approx(-1.0)
        assert far_point[2] / far_point[3] == pytest.approx(1.0)

    def test_view_projection_shape(self):
        camera = make_camera()
        assert camera.view_projection(640, 480).shape == (4, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_camera(near=0.0)
        with pytest.raises(ValueError):
            make_camera(near=10.0, far=5.0)
        with pytest.raises(ValueError):
            make_camera(fov_y=0.0)
        with pytest.raises(ValueError):
            make_camera(target=np.array([0.0, 0.0, 5.0]))
        camera = make_camera()
        with pytest.raises(ValueError):
            camera.projection_matrix(aspect=0.0)
        with pytest.raises(ValueError):
            camera.view_projection(0, 480)
