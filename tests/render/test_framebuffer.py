"""Tests for the z-buffered framebuffer."""

import numpy as np
import pytest

from repro.render.framebuffer import Framebuffer


class TestFramebuffer:
    def test_initial_state(self):
        framebuffer = Framebuffer(4, 3)
        assert framebuffer.num_pixels == 12
        assert np.all(framebuffer.color == 0.0)
        assert np.all(np.isinf(framebuffer.depth))

    def test_depth_test_closer_passes(self):
        framebuffer = Framebuffer(4, 4)
        assert framebuffer.depth_test(0, 0, 5.0)
        framebuffer.write(0, 0, 5.0, np.ones(4))
        assert framebuffer.depth_test(0, 0, 3.0)
        assert not framebuffer.depth_test(0, 0, 7.0)

    def test_equal_depth_fails(self):
        framebuffer = Framebuffer(4, 4)
        framebuffer.write(0, 0, 5.0, np.ones(4))
        assert not framebuffer.depth_test(0, 0, 5.0)

    def test_write_updates_color_and_depth(self):
        framebuffer = Framebuffer(4, 4)
        color = np.array([0.2, 0.4, 0.6, 1.0])
        framebuffer.write(2, 1, 3.0, color)
        assert np.allclose(framebuffer.color[1, 2], color)
        assert framebuffer.depth[1, 2] == 3.0

    def test_counters(self):
        framebuffer = Framebuffer(4, 4)
        framebuffer.depth_test(0, 0, 1.0)
        framebuffer.write(0, 0, 1.0, np.ones(4))
        framebuffer.depth_test(0, 0, 2.0)
        assert framebuffer.depth_tests == 2
        assert framebuffer.depth_passes == 1

    def test_clear(self):
        framebuffer = Framebuffer(4, 4)
        framebuffer.write(0, 0, 1.0, np.ones(4))
        framebuffer.clear()
        assert np.all(framebuffer.color == 0.0)
        assert np.all(np.isinf(framebuffer.depth))
        assert framebuffer.depth_tests == 0

    def test_rgb_image_drops_alpha(self):
        framebuffer = Framebuffer(4, 4)
        assert framebuffer.rgb_image().shape == (4, 4, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Framebuffer(0, 4)
