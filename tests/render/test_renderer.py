"""Tests for whole-frame rendering under the sampling modes."""

import numpy as np
import pytest

from repro.quality import psnr
from repro.render.renderer import Renderer, SamplingMode
from tests.conftest import make_tiny_scene


@pytest.fixture(scope="module")
def tiny():
    return make_tiny_scene()


@pytest.fixture(scope="module")
def renderer():
    return Renderer(width=32, height=24, tile_size=4, max_anisotropy=8)


@pytest.fixture(scope="module")
def exact_image(tiny, renderer):
    scene, camera = tiny
    return renderer.render(scene, camera, SamplingMode.EXACT).image


class TestRenderModes:
    def test_exact_produces_nonempty_image(self, exact_image):
        assert exact_image.shape == (24, 32, 3)
        assert exact_image.max() > 0.0

    def test_reordered_matches_exact_bitwise(self, tiny, renderer, exact_image):
        # The architectural claim of section V-B, at frame granularity.
        scene, camera = tiny
        reordered = renderer.render(scene, camera, SamplingMode.REORDERED).image
        np.testing.assert_allclose(reordered, exact_image, atol=1e-12)

    def test_isotropic_differs_on_anisotropic_scene(self, tiny, renderer,
                                                    exact_image):
        scene, camera = tiny
        isotropic = renderer.render(scene, camera, SamplingMode.ISOTROPIC).image
        assert not np.allclose(isotropic, exact_image)

    def test_atfim_quality_monotone_in_threshold(self, tiny, renderer,
                                                 exact_image):
        scene, camera = tiny
        strict = renderer.render(
            scene, camera, SamplingMode.ATFIM, angle_threshold=0.0
        ).image
        loose = renderer.render(
            scene, camera, SamplingMode.ATFIM, angle_threshold=10.0
        ).image
        assert psnr(exact_image, strict) >= psnr(exact_image, loose)

    def test_atfim_threshold_sweep_strictly_monotone(self, tiny, renderer,
                                                     exact_image):
        # The paper's Fig. 15 shape: quality falls as the threshold
        # loosens, and stays a usable approximation throughout.
        scene, camera = tiny
        values = []
        for threshold in (0.0, 0.05, 10.0):
            image = renderer.render(
                scene, camera, SamplingMode.ATFIM, angle_threshold=threshold
            ).image
            values.append(psnr(exact_image, image))
        assert values[0] > values[1] > values[2]
        assert all(10.0 < value < 99.0 for value in values)

    def test_atfim_counts_reuse_and_recalc(self, tiny, renderer):
        scene, camera = tiny
        output = renderer.render(
            scene, camera, SamplingMode.ATFIM, angle_threshold=0.05
        )
        assert output.parent_recalculations > 0
        assert output.parent_reuses > 0

    def test_trace_only_matches_render_request_count(self, tiny, renderer):
        scene, camera = tiny
        traced = renderer.trace_only(scene, camera)
        rendered = renderer.render(scene, camera, SamplingMode.EXACT)
        assert traced.trace.num_fragments == rendered.trace.num_fragments

    def test_trace_carries_tile_size(self, tiny, renderer):
        scene, camera = tiny
        assert renderer.trace_only(scene, camera).trace.tile_size == 4

    def test_deterministic(self, tiny, renderer, exact_image):
        scene, camera = tiny
        again = renderer.render(scene, camera, SamplingMode.EXACT).image
        np.testing.assert_array_equal(again, exact_image)
