"""Tests for the rasterizer: coverage, depth, derivatives, clipping."""

import math

import numpy as np
import pytest

from repro.render.camera import Camera
from repro.render.framebuffer import Framebuffer
from repro.render.raster import Rasterizer
from repro.render.scene import Scene
from repro.workloads.textures import ProceduralTextureLibrary


def make_scene():
    scene = Scene()
    library = ProceduralTextureLibrary()
    scene.add_texture(library.create("checker", 64, seed=1))
    scene.add_texture(library.create("brick", 64, seed=2))
    return scene


def facing_camera(distance=10.0):
    return Camera(
        position=np.array([0.0, 0.0, distance]),
        target=np.array([0.0, 0.0, 0.0]),
        fov_y=math.radians(60.0),
    )


def add_fullscreen_wall(scene, texture_id=0, z=0.0, half=100.0):
    scene.add_quad(
        [(-half, -half, z), (half, -half, z), (half, half, z), (-half, half, z)],
        texture_id,
        uv_scale=8.0,
    )


class TestCoverage:
    def test_fullscreen_wall_covers_every_pixel_once(self):
        scene = make_scene()
        add_fullscreen_wall(scene)
        framebuffer = Framebuffer(16, 12)
        rasterizer = Rasterizer(tile_size=4)
        fragments = rasterizer.rasterize_scene(scene, facing_camera(), framebuffer)
        covered = {(f.x, f.y) for f, _ in fragments}
        assert len(fragments) == 16 * 12
        assert len(covered) == 16 * 12

    def test_offscreen_triangle_generates_nothing(self):
        scene = make_scene()
        scene.add_quad(
            [(100, 100, 0), (101, 100, 0), (101, 101, 0), (100, 101, 0)], 0
        )
        framebuffer = Framebuffer(16, 12)
        rasterizer = Rasterizer()
        fragments = rasterizer.rasterize_scene(scene, facing_camera(), framebuffer)
        assert fragments == []

    def test_stats_recorded(self):
        scene = make_scene()
        add_fullscreen_wall(scene)
        framebuffer = Framebuffer(8, 8)
        rasterizer = Rasterizer(tile_size=4)
        rasterizer.rasterize_scene(scene, facing_camera(), framebuffer)
        assert rasterizer.stats.triangles_submitted == 2
        assert rasterizer.stats.fragments_generated >= 64


class TestDepth:
    def test_early_z_kills_occluded_fragments(self):
        scene = make_scene()
        add_fullscreen_wall(scene, texture_id=0, z=0.0)   # near (drawn first)
        add_fullscreen_wall(scene, texture_id=1, z=-5.0)  # far (behind)
        framebuffer = Framebuffer(8, 8)
        rasterizer = Rasterizer(tile_size=4)
        fragments = rasterizer.rasterize_scene(scene, facing_camera(), framebuffer)
        # The far wall is drawn after the near wall and should be fully
        # early-Z culled.
        assert all(f.texture_id == 0 for f, _ in fragments)
        assert rasterizer.stats.fragments_early_z_killed == 64

    def test_overdraw_when_far_drawn_first(self):
        scene = make_scene()
        add_fullscreen_wall(scene, texture_id=1, z=-5.0)  # far first
        add_fullscreen_wall(scene, texture_id=0, z=0.0)   # near second
        framebuffer = Framebuffer(8, 8)
        rasterizer = Rasterizer(tile_size=4)
        fragments = rasterizer.rasterize_scene(scene, facing_camera(), framebuffer)
        # Both walls shade: 2x the pixels (immediate-mode overdraw).
        assert len(fragments) == 2 * 64


class TestDerivatives:
    def test_face_on_wall_has_unit_texel_density(self):
        # A wall whose texture maps n texels across m pixels should have
        # |du/dx| ~ n/m, independent of position.
        scene = make_scene()
        half = 10.0
        scene.add_quad(
            [(-half, -half, 0), (half, -half, 0), (half, half, 0), (-half, half, 0)],
            0,
            uv_scale=1.0,
        )
        width = 32
        framebuffer = Framebuffer(width, 32)
        rasterizer = Rasterizer()
        camera = Camera(
            position=np.array([0.0, 0.0, 10.0 / math.tan(math.radians(30.0))]),
            target=np.array([0.0, 0.0, 0.0]),
            fov_y=math.radians(60.0),
        )
        fragments = rasterizer.rasterize_scene(scene, camera, framebuffer)
        # 64 texels across ~32 pixels -> du/dx ~ 2 texels/pixel.
        centre = [f for f, _ in fragments if abs(f.x - 16) < 4 and abs(f.y - 16) < 4]
        assert centre
        for fragment in centre:
            assert fragment.dudx == pytest.approx(2.0, rel=0.2)
            assert abs(fragment.dvdx) < 0.2

    def test_grazing_floor_is_anisotropic(self):
        scene = make_scene()
        scene.add_quad(
            [(-20, 0, 5), (20, 0, 5), (20, 0, -200), (-20, 0, -200)],
            0,
            uv_scale=16.0,
        )
        camera = Camera(
            position=np.array([0.0, 1.0, 6.0]),
            target=np.array([0.0, 0.0, -50.0]),
        )
        framebuffer = Framebuffer(32, 24)
        rasterizer = Rasterizer(max_anisotropy=16)
        results = rasterizer.rasterize_scene(scene, camera, framebuffer)
        anisotropies = [request.footprint.anisotropy for _, request in results]
        assert max(anisotropies) > 2.0

    def test_camera_angle_face_on_vs_grazing(self):
        scene = make_scene()
        add_fullscreen_wall(scene)  # facing the camera
        framebuffer = Framebuffer(8, 8)
        rasterizer = Rasterizer()
        results = rasterizer.rasterize_scene(scene, facing_camera(), framebuffer)
        angles = [f.camera_angle for f, _ in results]
        assert max(angles) < math.radians(45.0)


class TestClipping:
    def test_triangle_behind_camera_culled(self):
        scene = make_scene()
        add_fullscreen_wall(scene, z=20.0)  # behind the camera at z=10
        framebuffer = Framebuffer(8, 8)
        rasterizer = Rasterizer()
        fragments = rasterizer.rasterize_scene(scene, facing_camera(), framebuffer)
        assert fragments == []
        assert rasterizer.stats.triangles_clipped_away == 2

    def test_plane_crossing_near_plane_is_clipped_not_culled(self):
        # A floor passing under the camera crosses the near plane; it
        # must still produce fragments (sub-triangles), not vanish.
        scene = make_scene()
        scene.add_quad(
            [(-20, 0, 20), (20, 0, 20), (20, 0, -200), (-20, 0, -200)],
            0,
            uv_scale=4.0,
        )
        camera = Camera(
            position=np.array([0.0, 1.0, 0.0]),
            target=np.array([0.0, 0.0, -50.0]),
        )
        framebuffer = Framebuffer(16, 12)
        rasterizer = Rasterizer()
        fragments = rasterizer.rasterize_scene(scene, camera, framebuffer)
        assert len(fragments) > 0

    def test_requests_carry_tiles(self):
        scene = make_scene()
        add_fullscreen_wall(scene)
        framebuffer = Framebuffer(16, 16)
        rasterizer = Rasterizer(tile_size=4)
        results = rasterizer.rasterize_scene(scene, facing_camera(), framebuffer)
        tiles = {(request.tile_x, request.tile_y) for _, request in results}
        assert len(tiles) == 16  # 4x4 tiles

    def test_validation(self):
        with pytest.raises(ValueError):
            Rasterizer(tile_size=0)
        with pytest.raises(ValueError):
            Rasterizer(max_anisotropy=0)
