"""Tests for scenes and textured triangles."""

import numpy as np
import pytest

from repro.render.scene import Scene, TexturedTriangle
from repro.workloads.textures import ProceduralTextureLibrary


def make_scene_with_texture():
    scene = Scene()
    texture = ProceduralTextureLibrary().create("checker", 32, seed=1)
    scene.add_texture(texture)
    return scene, texture


class TestTexturedTriangle:
    def test_normal_unit_length(self):
        triangle = TexturedTriangle(
            vertices=np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float),
            uvs=np.zeros((3, 2)),
            texture_id=0,
        )
        assert np.linalg.norm(triangle.normal) == pytest.approx(1.0)
        assert np.allclose(triangle.normal, [0, 0, 1])

    def test_degenerate_triangle_rejected_on_normal(self):
        triangle = TexturedTriangle(
            vertices=np.array([[0, 0, 0], [1, 0, 0], [2, 0, 0]], dtype=float),
            uvs=np.zeros((3, 2)),
            texture_id=0,
        )
        with pytest.raises(ValueError):
            _ = triangle.normal

    def test_centroid(self):
        triangle = TexturedTriangle(
            vertices=np.array([[0, 0, 0], [3, 0, 0], [0, 3, 0]], dtype=float),
            uvs=np.zeros((3, 2)),
            texture_id=0,
        )
        assert np.allclose(triangle.centroid, [1, 1, 0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TexturedTriangle(
                vertices=np.zeros((3, 2)), uvs=np.zeros((3, 2)), texture_id=0
            )
        with pytest.raises(ValueError):
            TexturedTriangle(
                vertices=np.zeros((3, 3)), uvs=np.zeros((2, 2)), texture_id=0
            )
        with pytest.raises(ValueError):
            TexturedTriangle(
                vertices=np.zeros((3, 3)), uvs=np.zeros((3, 2)), texture_id=-1
            )


class TestScene:
    def test_add_quad_creates_two_triangles(self):
        scene, texture = make_scene_with_texture()
        scene.add_quad(
            [(0, 0, 0), (1, 0, 0), (1, 1, 0), (0, 1, 0)], texture.texture_id
        )
        assert len(scene.triangles) == 2
        assert scene.num_vertices == 6

    def test_quad_uv_tiling(self):
        scene, texture = make_scene_with_texture()
        scene.add_quad(
            [(0, 0, 0), (1, 0, 0), (1, 1, 0), (0, 1, 0)],
            texture.texture_id,
            uv_scale=4.0,
        )
        all_uvs = np.concatenate([t.uvs for t in scene.triangles])
        assert all_uvs.max() == pytest.approx(4.0)

    def test_unknown_texture_rejected(self):
        scene = Scene()
        with pytest.raises(ValueError):
            scene.add_quad([(0, 0, 0), (1, 0, 0), (1, 1, 0), (0, 1, 0)], 99)

    def test_duplicate_texture_rejected(self):
        scene, texture = make_scene_with_texture()
        with pytest.raises(ValueError):
            scene.add_texture(texture)

    def test_quad_needs_four_corners(self):
        scene, texture = make_scene_with_texture()
        with pytest.raises(ValueError):
            scene.add_quad([(0, 0, 0), (1, 0, 0)], texture.texture_id)

    def test_mipmap_chain_cached(self):
        scene, texture = make_scene_with_texture()
        chain_a = scene.mipmap_chain(texture.texture_id)
        chain_b = scene.mipmap_chain(texture.texture_id)
        assert chain_a is chain_b

    def test_mipmap_chain_unknown_texture(self):
        scene = Scene()
        with pytest.raises(KeyError):
            scene.mipmap_chain(5)

    def test_texture_bytes(self):
        scene, texture = make_scene_with_texture()
        assert scene.texture_bytes == 32 * 32 * 4
