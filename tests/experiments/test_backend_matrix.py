"""Cross-backend bit-identity on a real (small) design grid.

The chaos gate's contract, extended across executor backends: whatever
schedules the work -- in-process serial, one process pool, or several
work-stealing shards -- and whatever faults fire along the way, the
simulation results must be bit-identical.  Each backend gets its own
disk cache root so agreement is proven by recomputation, not by one
backend reading another's cached artefacts.
"""

import pytest

from repro import faults
from repro.core import Design
from repro.core.angle import DEFAULT_THRESHOLD
from repro.experiments.runner import ExperimentRunner, RunKey
from repro.faults import FAST_RETRIES, BACKEND_NAMES, FaultPlan, RunOutcome

WORKLOAD = "riddick-640x480"

GRID = [
    RunKey(WORKLOAD, design, DEFAULT_THRESHOLD.effective_radians, True)
    for design in (Design.BASELINE, Design.S_TFIM, Design.A_TFIM)
]

CHAOS_SPEC = "seed=7,crash=0.2,fail=0.2,corrupt=0.2,store=0.1"


@pytest.fixture(autouse=True)
def clean_faults_state(monkeypatch):
    monkeypatch.delenv(faults.ENV_FLAG, raising=False)
    faults.reset()
    yield
    faults.reset()


def _signature(run):
    return (
        run.frame_cycles,
        run.texture_cycles,
        run.external_texture_bytes,
        run.frame.num_requests,
    )


def _run_grid(tmp_path, backend, label, jobs=2):
    runner = ExperimentRunner(
        (WORKLOAD,),
        cache_dir=tmp_path / f"cache-{label}",
        retry_policy=FAST_RETRIES,
    )
    results = runner.run_many(GRID, jobs=jobs, backend=backend)
    return results, runner.fanout_report()


class TestBackendMatrix:
    def test_all_backends_bit_identical_clean(self, tmp_path):
        signatures = {}
        for backend in BACKEND_NAMES:
            results, report = _run_grid(tmp_path, backend, backend)
            assert set(results) == set(GRID), f"{backend} dropped keys"
            assert report.backend == backend
            signatures[backend] = {
                key: _signature(run) for key, run in results.items()
            }
        serial = signatures["serial"]
        for backend in BACKEND_NAMES[1:]:
            assert signatures[backend] == serial, (
                f"{backend} diverged from serial"
            )

    def test_all_backends_bit_identical_under_faults(self, tmp_path,
                                                     monkeypatch):
        with faults.suppress():
            clean, _ = _run_grid(tmp_path, "serial", "clean")
        clean_signatures = {
            key: _signature(run) for key, run in clean.items()
        }
        monkeypatch.setenv(faults.ENV_FLAG, CHAOS_SPEC)
        for backend in BACKEND_NAMES:
            faults.activate(FaultPlan.parse(CHAOS_SPEC))
            try:
                results, report = _run_grid(
                    tmp_path, backend, f"faulted-{backend}"
                )
            finally:
                faults.reset()
            assert set(results) == set(GRID), f"{backend} dropped keys"
            faulted = {key: _signature(run) for key, run in results.items()}
            assert faulted == clean_signatures, (
                f"{backend} diverged under faults"
            )
            counts = report.outcome_counts()
            assert counts.get(RunOutcome.FAILED.value, 0) == 0

    def test_explicit_backend_forces_fanout_even_serially(self, tmp_path):
        """``backend=`` routes jobs=1 through run_fanout, not the
        in-process shortcut -- the report proves which path ran."""
        results, report = _run_grid(tmp_path, "serial", "forced", jobs=1)
        assert set(results) == set(GRID)
        assert report.backend == "serial"
        assert all(
            task.attempts >= 1 for task in report.tasks.values()
        )
