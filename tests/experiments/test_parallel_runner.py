"""Disk cache, parallel fan-out, and cache-stat exposure of the runner."""

import pickle

import pytest

from repro.core import Design
from repro.core.angle import DEFAULT_THRESHOLD
from repro.experiments.cache import CacheStats, DiskCache, source_version
from repro.experiments.report import _cache_section, grid_keys
from repro.experiments.runner import ExperimentRunner, RunKey
from repro.workloads import workload_by_name

WORKLOAD = "doom3-640x480"
DESIGNS = (Design.BASELINE, Design.A_TFIM)
KEYS = [
    RunKey(WORKLOAD, design, DEFAULT_THRESHOLD.effective_radians, True)
    for design in DESIGNS
]


def run_signature(run):
    return (
        run.frame_cycles,
        run.texture_cycles,
        run.external_texture_bytes,
        run.frame.num_requests,
    )


@pytest.fixture(scope="module")
def serial_results():
    runner = ExperimentRunner([WORKLOAD])
    return {key: run_signature(run) for key, run in runner.run_many(KEYS, jobs=1).items()}


class TestSourceVersion:
    def test_stable_and_short(self):
        first = source_version()
        assert first == source_version()
        assert len(first) == 16
        int(first, 16)  # valid hex


class TestDiskCache:
    def test_roundtrip_and_stats(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        key = cache.key("unit", payload=123)
        hit, value = cache.load(key)
        assert not hit and value is None
        cache.store(key, {"answer": 42})
        hit, value = cache.load(key)
        assert hit and value == {"answer": 42}
        assert cache.stats == CacheStats(hits=1, misses=1, stores=1, errors=0)
        assert cache.entries() == 1
        assert cache.total_bytes() > 0

    def test_key_depends_on_payload_and_category(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        assert cache.key("a", x=1) != cache.key("a", x=2)
        assert cache.key("a", x=1) != cache.key("b", x=1)
        assert cache.key("a", x=1) == cache.key("a", x=1)

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        key = cache.key("unit", payload=1)
        cache.store(key, [1, 2, 3])
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        hit, value = cache.load(key)
        assert not hit and value is None
        assert cache.stats.errors == 1
        cache.store(key, [1, 2, 3])  # recompute path overwrites
        assert cache.load(key) == (True, [1, 2, 3])

    def test_env_var_resolves_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "from-env"))
        cache = DiskCache()
        assert cache.root == tmp_path / "from-env"

    def test_get_or_compute(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        key = cache.key("unit", payload=9)
        calls = []
        assert cache.get_or_compute(key, lambda: calls.append(1) or "v") == "v"
        assert cache.get_or_compute(key, lambda: calls.append(1) or "v") == "v"
        assert len(calls) == 1


class TestRunnerDiskCache:
    def test_rerun_is_served_from_disk(self, tmp_path, serial_results):
        cold = ExperimentRunner([WORKLOAD], cache_dir=tmp_path)
        workload = cold.workloads[0]
        first = cold.run(workload, Design.A_TFIM)
        assert cold.cache_stats().disk_stores > 0

        warm = ExperimentRunner([WORKLOAD], cache_dir=tmp_path)
        second = warm.run(warm.workloads[0], Design.A_TFIM)
        stats = warm.cache_stats()
        assert stats.disk_hits >= 1
        assert stats.disk_entries > 0
        assert stats.disk_bytes > 0
        assert run_signature(first) == run_signature(second)
        assert run_signature(second) == serial_results[
            RunKey(WORKLOAD, Design.A_TFIM, DEFAULT_THRESHOLD.effective_radians, True)
        ]

    def test_energy_roundtrips_through_disk(self, tmp_path):
        first = ExperimentRunner([WORKLOAD], cache_dir=tmp_path)
        e1 = first.energy(first.workloads[0], Design.BASELINE)
        second = ExperimentRunner([WORKLOAD], cache_dir=tmp_path)
        e2 = second.energy(second.workloads[0], Design.BASELINE)
        assert second.cache_stats().disk_hits >= 1
        assert e1.total == e2.total

    def test_memo_counters_advance(self):
        runner = ExperimentRunner([WORKLOAD])
        workload = runner.workloads[0]
        runner.run(workload, Design.BASELINE)
        misses = runner.memo_misses
        assert misses > 0
        runner.run(workload, Design.BASELINE)
        assert runner.memo_hits >= 1
        assert runner.memo_misses == misses


class TestRunMany:
    def test_parallel_matches_serial(self, tmp_path, serial_results):
        runner = ExperimentRunner([WORKLOAD], cache_dir=tmp_path)
        results = runner.run_many(KEYS, jobs=2)
        assert set(results) == set(KEYS)
        for key in KEYS:
            assert run_signature(results[key]) == serial_results[key]

    def test_results_memoised_after_fan_out(self, tmp_path):
        runner = ExperimentRunner([WORKLOAD], cache_dir=tmp_path)
        runner.run_many(KEYS, jobs=2)
        hits_before = runner.memo_hits
        again = runner.run_many(KEYS, jobs=2)
        assert set(again) == set(KEYS)
        assert runner.memo_hits == hits_before + len(KEYS)

    def test_parallel_without_disk_cache_uses_scratch(self, serial_results):
        runner = ExperimentRunner([WORKLOAD])
        assert runner.disk_cache is None
        results = runner.run_many(KEYS, jobs=2)
        for key in KEYS:
            assert run_signature(results[key]) == serial_results[key]


class TestReportIntegration:
    def test_grid_keys_cover_designs_and_sweep(self):
        runner = ExperimentRunner([WORKLOAD])
        keys = grid_keys(runner)
        assert len(keys) == len(set(keys))
        designs = {key.design for key in keys}
        assert designs == set(Design)
        assert any(not key.aniso_enabled for key in keys)
        assert any(not key.consolidation_enabled for key in keys)
        assert any(key.mtu_share > 1 for key in keys)
        thresholds = {key.angle_threshold for key in keys}
        assert len(thresholds) > 1

    def test_cache_section_renders_stats(self):
        runner = ExperimentRunner([WORKLOAD])
        section = _cache_section(runner)
        assert "Runner cache statistics" in section
        assert "memoisation hits" in section
        assert "REPRO_CACHE_DIR" in section  # hint shown when no disk cache


class TestArtefactsPickle:
    def test_design_run_pickles(self, serial_results):
        # run_many workers ship DesignRun objects across process
        # boundaries; guard that they stay picklable.
        runner = ExperimentRunner([WORKLOAD])
        run = runner.run(runner.workloads[0], Design.BASELINE)
        clone = pickle.loads(pickle.dumps(run))
        assert run_signature(clone) == run_signature(run)


class TestCacheRobustnessContracts:
    def test_framed_entry_bitflip_fails_crc_and_counts_as_miss(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        key = cache.key("unit", payload="crc")
        cache.store(key, {"value": 7})
        path = cache._path(key)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload bit under the checksum
        path.write_bytes(bytes(data))
        hit, value = cache.load(key)
        assert not hit and value is None
        assert cache.stats.errors == 1
        assert cache.stats.misses == 1

    def test_legacy_unframed_entry_still_loads(self, tmp_path):
        import pickle

        cache = DiskCache(root=tmp_path)
        key = cache.key("unit", payload="legacy")
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps([4, 5, 6]))  # pre-CRC format
        assert cache.load(key) == (True, [4, 5, 6])

    def test_store_safe_survives_store_failure(self, tmp_path, monkeypatch):
        import os as os_module

        cache = DiskCache(root=tmp_path)
        key = cache.key("unit", payload="fragile")

        def refuse(*_args, **_kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(os_module, "replace", refuse)
        with pytest.warns(RuntimeWarning, match="cache store failed"):
            assert cache.store_safe(key, "value") is False
        assert cache.stats.errors == 1
        assert cache.stats.stores == 0

    def test_get_or_compute_returns_value_when_store_fails(
        self, tmp_path, monkeypatch
    ):
        import os as os_module

        cache = DiskCache(root=tmp_path)
        key = cache.key("unit", payload="compute")

        def refuse(*_args, **_kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(os_module, "replace", refuse)
        with pytest.warns(RuntimeWarning, match="continuing with the computed"):
            assert cache.get_or_compute(key, lambda: "computed") == "computed"
        assert cache.stats.errors == 1


class TestMemoCountingParity:
    def test_serial_and_parallel_memo_misses_agree(self, tmp_path):
        serial = ExperimentRunner([WORKLOAD], cache_dir=tmp_path / "serial")
        serial.run_many(KEYS, jobs=1)
        parallel = ExperimentRunner([WORKLOAD], cache_dir=tmp_path / "parallel")
        parallel.run_many(KEYS, jobs=2)
        assert serial.memo_misses == parallel.memo_misses == len(KEYS)
        assert serial.memo_hits == parallel.memo_hits == 0

    def test_rerun_hits_agree_across_branches(self, tmp_path):
        serial = ExperimentRunner([WORKLOAD], cache_dir=tmp_path / "serial")
        serial.run_many(KEYS, jobs=1)
        serial.run_many(KEYS, jobs=1)
        parallel = ExperimentRunner([WORKLOAD], cache_dir=tmp_path / "parallel")
        parallel.run_many(KEYS, jobs=2)
        parallel.run_many(KEYS, jobs=2)
        assert serial.memo_hits == parallel.memo_hits == len(KEYS)
        assert serial.memo_misses == parallel.memo_misses == len(KEYS)
