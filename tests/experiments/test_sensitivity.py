"""Tests for the fitted-constant sensitivity study."""

import pytest

from repro.experiments import sensitivity
from repro.experiments.common import FigureData


class TestOrderingsHold:
    def make(self, a, b, s):
        data = FigureData(
            figure="sens", title="t", columns=["b_pim", "s_tfim", "a_tfim"]
        )
        data.add_row("row", b_pim=b, s_tfim=s, a_tfim=a)
        return data

    def test_paper_shape_passes(self):
        assert sensitivity.orderings_hold(self.make(a=1.5, b=1.2, s=0.9))

    def test_stfim_winning_fails(self):
        assert not sensitivity.orderings_hold(self.make(a=1.5, b=1.2, s=1.3))

    def test_atfim_losing_fails(self):
        assert not sensitivity.orderings_hold(self.make(a=1.1, b=1.2, s=0.9))


class TestSweeps:
    """One compact real sweep: orderings robust on the fast workload."""

    def test_overlap_sweep_keeps_orderings(self):
        data = sensitivity.overlap_factor(
            "riddick-640x480", factors=(0.3, 0.8)
        )
        assert sensitivity.orderings_hold(data)
        assert len(data.rows) == 2

    def test_latency_hiding_sweep_keeps_orderings(self):
        data = sensitivity.latency_hiding(
            "riddick-640x480", depths=(16, 128)
        )
        assert sensitivity.orderings_hold(data)
