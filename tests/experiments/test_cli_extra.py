"""Tests for the render/verbose CLI paths."""

from pathlib import Path

from repro.cli import main


class TestRenderCommand:
    def test_render_writes_ppm(self, tmp_path, capsys):
        output = tmp_path / "frame.ppm"
        assert main([
            "render", "riddick-640x480", "--output", str(output)
        ]) == 0
        data = output.read_bytes()
        assert data.startswith(b"P6\n")
        # 80x60 RGB payload after the header.
        header_end = data.index(b"255\n") + 4
        assert len(data) - header_end == 80 * 60 * 3

    def test_render_atfim_mode(self, tmp_path):
        output = tmp_path / "atfim.ppm"
        assert main([
            "render", "riddick-640x480", "--mode", "atfim",
            "--threshold", "0.05", "--output", str(output)
        ]) == 0
        assert output.exists()

    def test_render_differs_between_modes(self, tmp_path):
        exact = tmp_path / "exact.ppm"
        isotropic = tmp_path / "iso.ppm"
        main(["render", "riddick-640x480", "--output", str(exact)])
        main(["render", "riddick-640x480", "--mode", "isotropic",
              "--output", str(isotropic)])
        assert exact.read_bytes() != isotropic.read_bytes()


class TestVerboseSimulate:
    def test_verbose_prints_summaries(self, capsys):
        assert main(["simulate", "riddick-640x480", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "stages:" in out
        assert "texture latency:" in out
