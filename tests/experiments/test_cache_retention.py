"""DiskCache retention policies: temp-file reaping, LRU eviction,
and source-version namespacing.

These policies exist for the job server, where one cache outlives many
jobs and becomes a shared artifact store.  Mtime-based recency is
exercised with *fixed* epoch timestamps (``os.utime``), never the wall
clock, so ordering assertions are deterministic.
"""

import os

import pytest

from repro.experiments.cache import (
    TEMP_REAP_AGE_SECONDS,
    DiskCache,
    source_version,
)

OLD_EPOCH = 1_000_000.0
"""An mtime far older than any reap age gate or test runtime."""


def _store(cache, tag, mtime=None, payload="value"):
    """Store one entry keyed by ``tag``; pin its mtime if given."""
    key = cache.key("retention-test", tag=tag)
    cache.store(key, {"tag": tag, "payload": payload})
    path = cache._path(key)
    if mtime is not None:
        os.utime(path, (mtime, mtime))
    return key, path


def _orphan_tmp(cache, name, mtime=None):
    """Plant a ``*.tmp`` file as a crashed mid-store writer leaves it."""
    shard = cache.base_dir / "ab"
    shard.mkdir(parents=True, exist_ok=True)
    path = shard / f"{name}.tmp"
    path.write_bytes(b"torn partial write from a dead worker")
    if mtime is not None:
        os.utime(path, (mtime, mtime))
    return path


class TestTempFileReaper:
    def test_orphan_older_than_age_gate_is_reaped(self, tmp_path):
        """Regression: a worker dying between ``NamedTemporaryFile`` and
        ``os.replace`` leaked its temp file forever -- ``entries()``
        never saw it, so nothing ever removed it.
        """
        cache = DiskCache(root=tmp_path)
        key, entry_path = _store(cache, "survivor")
        stale = _orphan_tmp(cache, "dead-worker", mtime=OLD_EPOCH)
        fresh = _orphan_tmp(cache, "live-writer")  # current mtime

        reaped = cache.reap_temp_files()

        assert reaped == 1
        assert not stale.exists()
        assert fresh.exists(), "a live writer's temp file must survive"
        assert entry_path.exists(), "real entries are never reaped"
        assert cache.stats.reaped_temp_files == 1
        hit, value = cache.load(key)
        assert hit and value["tag"] == "survivor"

    def test_age_gate_is_parameterizable(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        fresh = _orphan_tmp(cache, "fresh")
        assert cache.reap_temp_files() == 0  # default gate spares it
        assert cache.reap_temp_files(max_age=0.0) == 1
        assert not fresh.exists()
        assert TEMP_REAP_AGE_SECONDS > 0

    def test_reaper_descends_namespace_directories(self, tmp_path):
        cache = DiskCache.versioned(root=tmp_path)
        stale = _orphan_tmp(cache, "dead-namespaced", mtime=OLD_EPOCH)
        assert stale.parent.parent == tmp_path / source_version()
        assert cache.reap_temp_files() == 1
        assert not stale.exists()


class TestLruEviction:
    def test_oldest_entries_evicted_until_under_budget(self, tmp_path):
        cache = DiskCache(root=tmp_path, max_bytes=1)
        _key_a, path_a = _store(cache, "a", mtime=OLD_EPOCH)
        _key_b, path_b = _store(cache, "b", mtime=OLD_EPOCH + 100)
        _key_c, path_c = _store(cache, "c", mtime=OLD_EPOCH + 200)
        sizes = {p: p.stat().st_size for p in (path_a, path_b, path_c)}

        budget = sizes[path_b] + sizes[path_c]
        evicted = cache.evict(max_bytes=budget)

        assert evicted == 1
        assert not path_a.exists(), "least-recently-used entry goes first"
        assert path_b.exists() and path_c.exists()
        assert cache.total_bytes() <= budget
        assert cache.stats.evictions == 1

    def test_load_refreshes_recency(self, tmp_path):
        """A cache hit must count as use: under ``max_bytes`` the entry's
        mtime is refreshed, so a hot entry outlives a colder newer one.
        """
        cache = DiskCache(root=tmp_path, max_bytes=1 << 20)
        key_hot, path_hot = _store(cache, "hot", mtime=OLD_EPOCH)
        _key_cold, path_cold = _store(cache, "cold", mtime=OLD_EPOCH + 100)

        hit, _value = cache.load(key_hot)
        assert hit
        assert path_hot.stat().st_mtime > OLD_EPOCH + 100

        cache.evict(max_bytes=path_hot.stat().st_size)
        assert path_hot.exists(), "the just-used entry must survive"
        assert not path_cold.exists()

    def test_no_budget_means_no_eviction(self, tmp_path):
        cache = DiskCache(root=tmp_path)  # max_bytes=None
        _store(cache, "kept", mtime=OLD_EPOCH)
        assert cache.evict() == 0
        assert cache.entries() == 1

    def test_store_does_not_evict(self, tmp_path):
        """Retention is the owner's job (the server runs one LRU pass per
        job); ``store`` itself never rescans or trims the tree, so a
        fan-out of stores may transiently overshoot the budget.
        """
        cache = DiskCache(root=tmp_path, max_bytes=1)
        for tag in ("a", "b", "c"):
            _store(cache, tag, mtime=OLD_EPOCH)
        assert cache.entries() == 3
        assert cache.total_bytes() > cache.max_bytes
        assert cache.stats.evictions == 0
        assert cache.evict() >= 2  # the explicit pass enforces the budget
        assert cache.total_bytes() <= cache.max_bytes

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            DiskCache(root=tmp_path, max_bytes=-1)


class TestNamespacing:
    def test_versioned_cache_partitions_by_source_version(self, tmp_path):
        cache = DiskCache.versioned(root=tmp_path)
        assert cache.namespace == source_version()
        assert cache.base_dir == tmp_path / source_version()
        _key, path = _store(cache, "entry")
        assert cache.base_dir in path.parents

    def test_flat_cache_base_dir_is_root(self, tmp_path):
        cache = DiskCache(root=tmp_path)
        assert cache.base_dir == tmp_path

    def test_worker_cache_on_base_dir_shares_the_partition(self, tmp_path):
        """Pool workers open a flat cache rooted at the parent's
        ``base_dir``; the same key must resolve to the same file.
        """
        parent = DiskCache.versioned(root=tmp_path)
        key, _path = _store(parent, "shared")
        worker = DiskCache(root=parent.base_dir)
        hit, value = worker.load(key)
        assert hit and value["tag"] == "shared"

    def test_foreign_namespaces_evict_before_own_entries(self, tmp_path):
        """Entries under a different source version can never be hit by
        this cache (keys embed the version), so eviction drops them
        first -- even when they are *newer* than this cache's entries.
        """
        cache = DiskCache.versioned(root=tmp_path, max_bytes=1)
        _key, own_path = _store(cache, "own", mtime=OLD_EPOCH)

        foreign_shard = tmp_path / "0123456789abcdef" / "ab"
        foreign_shard.mkdir(parents=True)
        foreign_path = foreign_shard / ("f" * 64 + ".pkl")
        foreign_path.write_bytes(b"stale-version artefact")
        os.utime(foreign_path, (OLD_EPOCH + 500, OLD_EPOCH + 500))

        evicted = cache.evict(max_bytes=own_path.stat().st_size)

        assert evicted == 1
        assert not foreign_path.exists(), "foreign namespace goes first"
        assert own_path.exists()

    def test_budget_spans_the_whole_root_tree(self, tmp_path):
        cache = DiskCache.versioned(root=tmp_path, max_bytes=1)
        _store(cache, "one", mtime=OLD_EPOCH)
        _store(cache, "two", mtime=OLD_EPOCH + 100)
        assert cache.evict(max_bytes=0) == 2
        assert cache.entries() == 0
