"""DiskCache robustness under concurrent mutation and failing stores.

``run_many`` workers replace and evict entries while the parent process
reports cache statistics; these tests simulate the races the cache must
tolerate (vanished entries, vanished shards, stores that fail mid-way).
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

import pytest

from repro.experiments.cache import DiskCache


@pytest.fixture
def cache(tmp_path):
    return DiskCache(root=tmp_path / "cache")


def _populate(cache: DiskCache, count: int) -> list:
    keys = [cache.key("unit", index=i) for i in range(count)]
    for index, key in enumerate(keys):
        cache.store(key, {"index": index})
    return keys


class TestIntrospectionUnderConcurrentDeletion:
    def test_entries_and_bytes_on_missing_root(self, cache):
        assert cache.entries() == 0
        assert cache.total_bytes() == 0

    def test_entries_counts_stored_values(self, cache):
        _populate(cache, 3)
        assert cache.entries() == 3
        assert cache.total_bytes() > 0

    def test_vanished_entry_between_glob_and_stat(self, cache, monkeypatch):
        """A worker replacing an entry can unlink it between the listing
        and the ``stat`` call; total_bytes must skip it, not crash."""
        _populate(cache, 3)
        paths = list(cache._entry_paths())
        victim = paths[1]
        original_stat = Path.stat
        raced = []

        def racing_stat(self, *args, **kwargs):
            if self == victim and not raced:
                raced.append(True)
                os.unlink(self)
            return original_stat(self, *args, **kwargs)

        monkeypatch.setattr(Path, "stat", racing_stat)
        assert cache.total_bytes() > 0
        monkeypatch.undo()
        assert cache.entries() == 2

    def test_vanished_shard_directory(self, cache):
        keys = _populate(cache, 4)
        shard = cache._path(keys[0]).parent
        shutil.rmtree(shard)
        remaining = cache.entries()
        assert remaining == 4 - len(
            [k for k in keys if cache._path(k).parent == shard]
        )
        assert cache.total_bytes() >= 0

    def test_shard_replaced_by_file(self, cache):
        """A non-directory where a shard is expected is skipped."""
        keys = _populate(cache, 2)
        shard = cache._path(keys[0]).parent
        shutil.rmtree(shard)
        shard.write_text("not a directory")
        assert cache.entries() >= 0
        assert cache.total_bytes() >= 0

    def test_load_after_eviction_is_a_miss(self, cache):
        keys = _populate(cache, 1)
        os.unlink(cache._path(keys[0]))
        hit, value = cache.load(keys[0])
        assert not hit and value is None
        assert cache.stats.misses == 1


class TestStoreFailure:
    def test_original_exception_survives_consumed_temp_file(
        self, cache, monkeypatch
    ):
        """``os.replace`` can consume the temp file and still fail (full
        or vanishing filesystem); the cleanup unlink must not mask the
        original error with FileNotFoundError."""
        key = cache.key("unit", index=0)
        cache._path(key).parent.mkdir(parents=True, exist_ok=True)

        class DiskFull(OSError):
            pass

        def consuming_replace(src, dst):
            os.unlink(src)  # the temp file is gone...
            raise DiskFull("no space left on device")  # ...and it failed

        monkeypatch.setattr(os, "replace", consuming_replace)
        with pytest.raises(DiskFull, match="no space left"):
            cache.store(key, {"value": 1})
        assert cache.stats.stores == 0

    def test_failed_store_leaves_no_temp_files(self, cache, monkeypatch):
        key = cache.key("unit", index=0)

        def failing_replace(src, dst):
            raise OSError("replace failed")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError, match="replace failed"):
            cache.store(key, {"value": 1})
        shard = cache._path(key).parent
        assert list(shard.glob("*.tmp")) == []

    def test_store_succeeds_normally_after_failure(self, cache):
        key = cache.key("unit", index=0)
        cache.store(key, {"value": 41})
        hit, value = cache.load(key)
        assert hit and value == {"value": 41}


class TestParallelWarmRunWithEviction:
    def test_run_many_with_concurrent_eviction(self, tmp_path):
        """A warm parallel ``run_many`` while another process evicts
        cache entries must complete (misses are recomputed, vanished
        introspection paths are tolerated)."""
        from repro.core import Design
        from repro.experiments.runner import (
            FAST_WORKLOADS,
            ExperimentRunner,
            RunKey,
        )

        cache_dir = tmp_path / "cache"
        names = FAST_WORKLOADS[:2]
        keys = [
            RunKey(name, design, 0.0314159, True)
            for name in names
            for design in (Design.BASELINE, Design.A_TFIM)
        ]
        warmer = ExperimentRunner(names, cache_dir=cache_dir)
        warm_results = warmer.run_many(keys, jobs=2)
        assert len(warm_results) == len(keys)

        # Evict half the entries mid-flight: delete every other shard
        # before a second runner consults the warm cache.
        cache = DiskCache(root=cache_dir)
        shards = sorted(p for p in cache_dir.iterdir() if p.is_dir())
        for shard in shards[::2]:
            shutil.rmtree(shard)

        rerun = ExperimentRunner(names, cache_dir=cache_dir)
        results = rerun.run_many(keys, jobs=2)
        assert len(results) == len(keys)
        stats = rerun.cache_stats()  # introspection over the mutated tree
        assert stats.disk_entries >= 0
        assert stats.disk_bytes >= 0


class TestKeyCanonicalization:
    """Keys must be process-independent; reject what cannot be."""

    def test_plain_object_payload_rejected(self, cache):
        # A default object repr embeds its address -- different per
        # process.  The old ``default=str`` fallback silently produced
        # a per-process key; now it is a hard error naming the path.
        with pytest.raises(TypeError, match=r"payload\.marker"):
            cache.key("unit", marker=object())

    def test_nested_offender_named_by_path(self, cache):
        with pytest.raises(TypeError, match=r"payload\.grid\[1\]\.design"):
            cache.key(
                "unit",
                grid=[{"design": "ok"}, {"design": object()}],
            )

    def test_non_string_mapping_key_rejected(self, cache):
        with pytest.raises(TypeError, match="non-string"):
            cache.key("unit", table={1: "a"})

    def test_non_finite_float_rejected(self, cache):
        with pytest.raises(TypeError, match="non-finite"):
            cache.key("unit", threshold=float("nan"))

    def test_canonical_payloads_are_stable(self, cache):
        first = cache.key(
            "unit",
            workload="doom3-640x480",
            threshold=0.0314159,
            aniso=True,
            axes=("hmc", "hbm"),
            nested={"link_scale": [0.5, 1.0]},
        )
        second = cache.key(
            "unit",
            workload="doom3-640x480",
            threshold=0.0314159,
            aniso=True,
            axes=["hmc", "hbm"],  # tuple and list canonicalize alike
            nested={"link_scale": [0.5, 1.0]},
        )
        assert first == second
