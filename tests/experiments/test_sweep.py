"""Sweep definitions: products, sampling, canonicalization, surfaces."""

import json

import pytest

from repro.core import Design
from repro.core.angle import DEFAULT_THRESHOLD
from repro.experiments.runner import ExperimentRunner
from repro.experiments.sweep import (
    SURFACE_HEADING,
    SweepDefinition,
    SweepPoint,
    SweepRecord,
    SweepResult,
    run_sweep,
    surface_markdown,
    update_experiments_md,
)

WORKLOAD = "riddick-640x480"


def tiny_definition(**overrides):
    settings = dict(
        name="tiny",
        workloads=(WORKLOAD,),
        designs=(Design.S_TFIM, Design.A_TFIM),
        thresholds=(0.005, 0.0314159),
        memory_backends=("hmc", "nearbank"),
        link_scales=(0.5, 1.0),
    )
    settings.update(overrides)
    return SweepDefinition(**settings)


class TestDefinition:
    def test_size_and_product_order(self):
        definition = tiny_definition()
        points = definition.points()
        assert len(points) == definition.size == 2 * 2 * 2 * 2
        # Axis-major: the last axis (link scale) varies fastest.
        assert points[0].link_bandwidth_scale == 0.5
        assert points[1].link_bandwidth_scale == 1.0
        assert points[0].memory_backend == points[1].memory_backend == "hmc"
        assert len({point.token for point in points}) == len(points)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="thresholds"):
            tiny_definition(thresholds=())

    def test_sample_is_deterministic_and_order_preserving(self):
        definition = tiny_definition()
        first = definition.sample(5, seed=3)
        again = definition.sample(5, seed=3)
        assert [p.token for p in first] == [p.token for p in again]
        universe = [p.token for p in definition.points()]
        positions = [universe.index(p.token) for p in first]
        assert positions == sorted(positions)

    def test_sample_varies_with_seed(self):
        definition = tiny_definition()
        assert {p.token for p in definition.sample(5, seed=1)} != {
            p.token for p in definition.sample(5, seed=2)
        }

    def test_sample_clamps_to_universe(self):
        definition = tiny_definition()
        assert definition.sample(10_000) == definition.points()

    def test_sample_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            tiny_definition().sample(0)


class TestCanonicalization:
    def test_baseline_collapses_every_pim_axis(self):
        point = SweepPoint(WORKLOAD, Design.BASELINE, 0.005, "nearbank", 0.25)
        key = point.run_key()
        assert key.memory_backend == "hmc"
        assert key.link_bandwidth_scale == 1.0
        assert key.angle_threshold == DEFAULT_THRESHOLD.effective_radians

    def test_stfim_collapses_threshold_only(self):
        point = SweepPoint(WORKLOAD, Design.S_TFIM, 0.005, "hbm", 0.25)
        key = point.run_key()
        assert key.angle_threshold == DEFAULT_THRESHOLD.effective_radians
        assert key.memory_backend == "hbm"
        assert key.link_bandwidth_scale == 0.25

    def test_atfim_keeps_every_axis(self):
        point = SweepPoint(WORKLOAD, Design.A_TFIM, 0.005, "hbm", 0.25)
        key = point.run_key()
        assert key.angle_threshold == 0.005
        assert key.memory_backend == "hbm"
        assert key.link_bandwidth_scale == 0.25

    def test_product_collapses_onto_fewer_runs(self):
        definition = tiny_definition()
        points = definition.points()
        keys = {point.run_key() for point in points}
        # 8 A-TFIM keys (2 thresholds x 2 backends x 2 scales) +
        # 4 S-TFIM keys (threshold collapsed).
        assert len(keys) == 12 < len(points)


def _fake_result(records):
    return SweepResult(
        definition=tiny_definition(),
        records=records,
        executor_backend="serial",
        unique_runs=len(records),
    )


def _record(design, threshold, speedup, backend="hmc", link=1.0):
    return SweepRecord(
        point=SweepPoint(WORKLOAD, design, threshold, backend, link),
        render_speedup=speedup,
        texture_traffic_ratio=0.5,
        signature=(1.0, 2.0, 3.0, 4),
    )


class TestSurface:
    def test_crossover_is_first_threshold_beating_stfim(self):
        result = _fake_result([
            _record(Design.S_TFIM, 0.005, 0.8),
            _record(Design.A_TFIM, 0.005, 0.6),
            _record(Design.A_TFIM, 0.01, 0.9),
            _record(Design.A_TFIM, 0.02, 1.4),
        ])
        (cell,) = result.surface()
        assert cell["crossover_threshold"] == 0.01
        assert cell["stfim_mean_speedup"] == pytest.approx(0.8)
        assert cell["points"] == 4

    def test_no_crossover_inside_range(self):
        result = _fake_result([
            _record(Design.S_TFIM, 0.005, 2.0),
            _record(Design.A_TFIM, 0.005, 0.5),
        ])
        (cell,) = result.surface()
        assert cell["crossover_threshold"] is None

    def test_without_stfim_crossover_is_vs_baseline(self):
        result = _fake_result([
            _record(Design.A_TFIM, 0.005, 0.5),
            _record(Design.A_TFIM, 0.01, 1.2),
        ])
        (cell,) = result.surface()
        assert cell["stfim_mean_speedup"] is None
        assert cell["crossover_threshold"] == 0.01

    def test_cells_keyed_by_backend_and_link_scale(self):
        result = _fake_result([
            _record(Design.A_TFIM, 0.005, 1.0, backend="hmc", link=1.0),
            _record(Design.A_TFIM, 0.005, 1.0, backend="hmc", link=2.0),
            _record(Design.A_TFIM, 0.005, 1.0, backend="hbm", link=1.0),
        ])
        cells = result.surface()
        assert [(c["memory_backend"], c["link_bandwidth_scale"])
                for c in cells] == [("hbm", 1.0), ("hmc", 1.0), ("hmc", 2.0)]

    def test_markdown_renders_every_cell(self):
        result = _fake_result([
            _record(Design.S_TFIM, 0.005, 0.8),
            _record(Design.A_TFIM, 0.01, 1.4),
        ])
        text = surface_markdown(result)
        assert text.startswith(SURFACE_HEADING)
        assert "| hmc | 1 | 0.80 | 1.40 | 0.01 |" in text


class TestRunSweep:
    def test_tiny_sweep_end_to_end(self, tmp_path):
        definition = tiny_definition(
            thresholds=(0.0314159,), memory_backends=("hmc",),
            link_scales=(1.0,),
        )
        result = run_sweep(definition, cache_dir=tmp_path / "cache")
        assert result.num_points == 2
        assert not result.missing
        # 2 design keys + 1 shared baseline.
        assert result.unique_runs == 3
        for record in result.records:
            assert record.render_speedup > 0
            assert record.signature[3] > 0
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["points"] == 2
        assert payload["surface"]

    def test_duplicate_canonical_points_share_one_run(self, tmp_path):
        definition = tiny_definition(
            designs=(Design.S_TFIM,), thresholds=(0.005, 0.0314159),
            memory_backends=("hmc",), link_scales=(1.0,),
        )
        runner = ExperimentRunner((WORKLOAD,), cache_dir=tmp_path / "cache")
        result = run_sweep(definition, runner=runner)
        # Two sweep points, but S-TFIM ignores the threshold: one design
        # run + one baseline.
        assert result.num_points == 2
        assert result.unique_runs == 2
        tokens = {record.point.token for record in result.records}
        assert len(tokens) == 2
        signatures = {record.signature for record in result.records}
        assert len(signatures) == 1

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError, match="no points"):
            run_sweep(tiny_definition(), points=[])


class TestExperimentsUpdate:
    SECTION = SURFACE_HEADING + "\n\nbody line\n"

    def test_creates_missing_file(self, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        update_experiments_md(self.SECTION, path)
        assert path.read_text() == self.SECTION

    def test_appends_when_section_absent(self, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        path.write_text("# Title\n\n## Other\n\nstuff\n")
        update_experiments_md(self.SECTION, path)
        text = path.read_text()
        assert text.startswith("# Title\n\n## Other\n\nstuff\n")
        assert text.endswith(self.SECTION)

    def test_replaces_existing_section_preserving_neighbours(self, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        path.write_text(
            "# Title\n\n" + SURFACE_HEADING + "\n\nstale numbers\n\n"
            "## After\n\nkept\n"
        )
        update_experiments_md(self.SECTION, path)
        text = path.read_text()
        assert "stale numbers" not in text
        assert "body line" in text
        assert "## After\n\nkept\n" in text
        assert text.count(SURFACE_HEADING) == 1
