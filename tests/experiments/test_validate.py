"""Unit tests for the paper-claims validation checkers."""

import pytest

from repro.experiments.common import FigureData
from repro.experiments.validate import (
    CheckResult,
    check_fig10,
    check_fig12,
    check_fig13,
    check_fig14,
    summarize,
    validate,
)


def fig10_data(atfim=3.5, stfim=0.8, bpim=1.1):
    data = FigureData(
        figure="fig10", title="t",
        columns=["baseline", "b_pim", "s_tfim", "a_tfim_001pi"],
    )
    data.add_row("w", baseline=1.0, b_pim=bpim, s_tfim=stfim,
                 a_tfim_001pi=atfim)
    return data


class TestCheckers:
    def test_fig10_passes_on_paper_shape(self):
        results = check_fig10(fig10_data())
        assert all(result.passed for result in results)

    def test_fig10_fails_when_stfim_wins(self):
        results = check_fig10(fig10_data(atfim=0.9, stfim=1.5))
        assert not all(result.passed for result in results)

    def test_fig12_ordering_checks(self):
        data = FigureData(
            figure="fig12", title="t",
            columns=["baseline", "b_pim", "s_tfim", "a_tfim_001pi",
                     "a_tfim_005pi"],
        )
        data.add_row("w", baseline=1.0, b_pim=1.0, s_tfim=3.0,
                     a_tfim_001pi=1.0, a_tfim_005pi=0.7)
        assert all(result.passed for result in check_fig12(data))

    def test_fig13_fails_when_atfim_wastes_energy(self):
        data = FigureData(
            figure="fig13", title="t",
            columns=["baseline", "b_pim", "s_tfim", "a_tfim_001pi"],
        )
        data.add_row("w", baseline=1.0, b_pim=0.9, s_tfim=1.2,
                     a_tfim_001pi=1.1)
        assert not all(result.passed for result in check_fig13(data))

    def test_fig14_monotonicity(self):
        data = FigureData(figure="fig14", title="t", columns=["a", "b", "c"])
        data.add_row("w", a=1.3, b=1.4, c=1.45)
        assert check_fig14(data)[0].passed
        bad = FigureData(figure="fig14", title="t", columns=["a", "b", "c"])
        bad.add_row("w", a=1.5, b=1.2, c=1.3)
        assert not check_fig14(bad)[0].passed


class TestDispatch:
    def test_validate_routes_by_figure_id(self):
        results = validate(fig10_data())
        assert results
        assert all(result.figure == "fig10" for result in results)

    def test_unknown_figure_returns_empty(self):
        data = FigureData(figure="figZZ", title="t", columns=["a"])
        assert validate(data) == []

    def test_summarize(self):
        results = [
            CheckResult(figure="f", claim="a", passed=True, detail=""),
            CheckResult(figure="f", claim="b", passed=False, detail=""),
        ]
        assert summarize(results) == "1/2 paper claims hold"

    def test_str_formats_status(self):
        result = CheckResult(figure="f", claim="c", passed=True, detail="d")
        assert str(result).startswith("[PASS]")
