"""Tests for the memoising experiment runner."""

import pytest

from repro.core import Design
from repro.core.angle import THRESHOLD_001PI, THRESHOLD_005PI
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(["riddick-640x480"])


class TestRunner:
    def test_workload_subset(self, runner):
        assert [w.name for w in runner.workloads] == ["riddick-640x480"]

    def test_run_memoised(self, runner):
        workload = runner.workloads[0]
        first = runner.run(workload, Design.BASELINE)
        second = runner.run(workload, Design.BASELINE)
        assert first is second

    def test_distinct_thresholds_distinct_runs(self, runner):
        workload = runner.workloads[0]
        a = runner.run(workload, Design.A_TFIM, THRESHOLD_001PI)
        b = runner.run(workload, Design.A_TFIM, THRESHOLD_005PI)
        assert a is not b

    def test_trace_memoised(self, runner):
        workload = runner.workloads[0]
        assert runner.trace(workload) is runner.trace(workload)

    def test_speedup_ratios_relative_to_baseline(self, runner):
        workload = runner.workloads[0]
        assert runner.render_speedup(workload, Design.BASELINE) == 1.0
        assert runner.texture_speedup(workload, Design.BASELINE) == 1.0
        assert runner.texture_traffic_ratio(workload, Design.BASELINE) == 1.0
        assert runner.energy_ratio(workload, Design.BASELINE) == 1.0

    def test_energy_memoised(self, runner):
        workload = runner.workloads[0]
        assert runner.energy(workload, Design.B_PIM) is (
            runner.energy(workload, Design.B_PIM)
        )

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            ExperimentRunner(["not-a-game"])
