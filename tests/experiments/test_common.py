"""Tests for the figure-data containers."""

import pytest

from repro.experiments.common import FigureData, geometric_mean


def make_figure():
    data = FigureData(
        figure="figX", title="Test", columns=["a", "b"],
    )
    data.add_row("w1", a=1.0, b=2.0)
    data.add_row("w2", a=3.0, b=4.0)
    return data


class TestFigureData:
    def test_add_row_requires_all_columns(self):
        data = FigureData(figure="f", title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            data.add_row("w", a=1.0)

    def test_column_extraction(self):
        data = make_figure()
        assert data.column("a") == [1.0, 3.0]

    def test_mean_and_max(self):
        data = make_figure()
        assert data.mean("a") == 2.0
        assert data.maximum("b") == 4.0

    def test_mean_empty_rejected(self):
        data = FigureData(figure="f", title="t", columns=["a"])
        with pytest.raises(ValueError):
            data.mean("a")

    def test_row_lookup(self):
        data = make_figure()
        assert data.row("w2").get("b") == 4.0
        with pytest.raises(KeyError):
            data.row("missing")
        with pytest.raises(KeyError):
            data.row("w1").get("zzz")

    def test_format_table_contains_everything(self):
        table = make_figure().format_table()
        for token in ("workload", "a", "b", "w1", "w2", "3.000"):
            assert token in table

    def test_format_table_aligned(self):
        lines = make_figure().format_table().splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_summary_line(self):
        line = make_figure().summary_line("a")
        assert "mean 2.000" in line


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([3.0]) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
