"""Tests for the CLI and the EXPERIMENTS.md report generator."""

import pytest

from repro.cli import main
from repro.experiments.report import _carried_sections, generate
from repro.experiments.sweep import SURFACE_HEADING


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "doom3-1280x1024" in out

    def test_fig_fast(self, capsys):
        assert main(["fig", "overhead"]) == 0
        out = capsys.readouterr().out
        assert "parent_buffer_kb" in out

    def test_fig_unknown(self, capsys):
        assert main(["fig", "99"]) == 1

    def test_simulate(self, capsys):
        assert main(["simulate", "riddick-640x480"]) == 0
        out = capsys.readouterr().out
        for design in ("baseline", "b-pim", "s-tfim", "a-tfim"):
            assert design in out


class TestReport:
    def test_generate_fast_without_quality(self):
        text = generate(
            workload_names=["riddick-640x480"],
            include_quality=False,
            include_ablations=False,
        )
        assert "Table I" in text
        assert "fig10" in text
        assert "fig14" in text
        assert "sec7e" in text
        assert "riddick-640x480" in text


class TestCarriedSections:
    """Regeneration must not clobber the sweep crossover surface."""

    def test_missing_file_and_missing_section(self, tmp_path):
        assert _carried_sections(tmp_path / "absent.md") == ""
        plain = tmp_path / "plain.md"
        plain.write_text("# Report\n\n## Table I\n\ndata\n")
        assert _carried_sections(plain) == ""

    def test_extracts_trailing_surface_section(self, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        section = f"{SURFACE_HEADING}\n\n| a | b |\n|---|---|\n| 1 | 2 |\n"
        path.write_text(
            "# Report\n\n## Table I\n\ndata\n\n---\nGenerated in 1 s.\n\n"
            + section
        )
        assert _carried_sections(path) == section

    def test_stops_at_next_heading(self, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        section = f"{SURFACE_HEADING}\n\nsurface rows\n"
        path.write_text("# Report\n\n" + section + "\n## Later section\n\nx\n")
        assert _carried_sections(path) == section
