"""Tests for the paper-numbers registry."""

import pytest

from repro.experiments.paper import (
    PAPER,
    STFIM_TRAFFIC_BARS,
    stat,
    within_factor,
)


class TestRegistry:
    def test_headline_numbers(self):
        assert stat("atfim_texture_speedup").mean == 3.97
        assert stat("atfim_texture_speedup").best == 6.4
        assert stat("atfim_render_speedup").mean == 1.43
        assert stat("stfim_traffic").mean == 2.79
        assert stat("atfim_energy").mean == 0.78

    def test_stfim_bars_cover_table2(self):
        from repro.workloads import workload_names

        assert set(STFIM_TRAFFIC_BARS) == set(workload_names())

    def test_stfim_bars_average_near_quoted_mean(self):
        values = list(STFIM_TRAFFIC_BARS.values())
        mean = sum(values) / len(values)
        assert mean == pytest.approx(stat("stfim_traffic").mean, abs=1.0)

    def test_unknown_stat_rejected(self):
        with pytest.raises(KeyError):
            stat("warp_drive_speedup")

    def test_every_stat_described(self):
        for name, value in PAPER.items():
            assert value.description, name


class TestWithinFactor:
    def test_exact_match(self):
        assert within_factor(3.97, "atfim_texture_speedup")

    def test_half_is_within_2x(self):
        assert within_factor(2.0, "atfim_texture_speedup", factor=2.0)

    def test_quarter_is_outside_2x(self):
        assert not within_factor(0.9, "atfim_texture_speedup", factor=2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            within_factor(1.0, "atfim_texture_speedup", factor=0.5)
