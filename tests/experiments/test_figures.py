"""Tests for the per-figure experiment modules (fast workload subset)."""

import pytest

from repro.experiments import (
    ablations,
    fig02,
    fig04,
    fig05,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    overhead_analysis,
    tables,
)
from repro.experiments.runner import ExperimentRunner

SUBSET = ["doom3-640x480", "riddick-640x480"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(SUBSET)


class TestFig02:
    def test_shares_sum_to_one(self, runner):
        data = fig02.run(runner)
        for row in data.rows:
            assert sum(row.values.values()) == pytest.approx(1.0)

    def test_texture_is_dominant(self, runner):
        data = fig02.run(runner)
        for row in data.rows:
            assert row.get("texture") == max(row.values.values())


class TestFig04:
    def test_disabling_aniso_speeds_up_and_saves_traffic(self, runner):
        data = fig04.run(runner)
        for row in data.rows:
            assert row.get("texture_speedup") >= 1.0
            assert row.get("normalized_traffic") <= 1.0


class TestFig05:
    def test_bpim_positive(self, runner):
        data = fig05.run(runner)
        for row in data.rows:
            assert row.get("render_speedup") > 1.0


class TestFig10:
    def test_atfim_wins_texture(self, runner):
        data = fig10.run(runner)
        for row in data.rows:
            assert row.get("a_tfim_001pi") > row.get("s_tfim")
            assert row.get("baseline") == 1.0


class TestFig11:
    def test_atfim_wins_render(self, runner):
        data = fig11.run(runner)
        for row in data.rows:
            assert row.get("a_tfim_001pi") > max(
                row.get("b_pim"), row.get("s_tfim"), 1.0
            )


class TestFig12:
    def test_stfim_traffic_inflated(self, runner):
        data = fig12.run(runner)
        for row in data.rows:
            assert row.get("s_tfim") > 1.5
            assert row.get("a_tfim_005pi") <= row.get("a_tfim_001pi")


class TestFig13:
    def test_atfim_saves_energy(self, runner):
        data = fig13.run(runner)
        for row in data.rows:
            assert row.get("a_tfim_001pi") < 1.0


class TestFig14:
    def test_speedup_monotone_across_thresholds(self, runner):
        data = fig14.run(runner)
        for row in data.rows:
            values = [row.values[column] for column in data.columns]
            for tighter, looser in zip(values, values[1:]):
                assert looser >= tighter - 1e-9


class TestOverhead:
    def test_reports_paper_numbers(self):
        data = overhead_analysis.run()
        assert data.row("parent_buffer_kb").get("value") == pytest.approx(
            1.41, abs=0.01
        )
        assert data.row("hmc_area_fraction").get("value") == pytest.approx(
            0.0318, abs=0.001
        )


class TestTables:
    def test_table1_contains_key_parameters(self):
        text = tables.format_table1()
        assert "16" in text
        assert "320 GB/s" in text
        assert "512 GB/s" in text
        assert "128 GB/s" in text

    def test_table2_lists_all_games(self):
        text = tables.format_table2()
        for game in ("doom3", "fear", "hl2", "riddick", "wolfenstein"):
            assert game in text


class TestAblations:
    def test_mtu_sharing_not_faster(self, runner):
        data = ablations.mtu_sharing(runner, share_ratios=(1, 4))
        for row in data.rows:
            assert row.get("share_4") <= row.get("share_1") * 1.05

    def test_consolidation_helps_or_neutral(self, runner):
        data = ablations.consolidation(runner)
        for row in data.rows:
            assert row.get("with_consolidation") >= (
                row.get("without_consolidation") * 0.95
            )

    def test_aniso_cap_grows_texel_demand(self):
        data = ablations.anisotropy_cap("riddick-640x480", caps=(2, 8))
        texels = data.column("texels_per_request")
        assert texels[1] > texels[0]
