"""Tests for latency records and histograms."""

import pytest

from repro.sim.events import LatencyHistogram, LatencyRecord, makespan


class TestLatencyRecord:
    def test_latency(self):
        record = LatencyRecord(issue_cycle=10.0, complete_cycle=35.0)
        assert record.latency == 25.0

    def test_completion_before_issue_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecord(issue_cycle=10.0, complete_cycle=5.0)

    def test_zero_latency_allowed(self):
        assert LatencyRecord(1.0, 1.0).latency == 0.0


class TestLatencyHistogram:
    def test_mean_and_max(self):
        hist = LatencyHistogram("lat")
        for value in (2.0, 4.0, 6.0):
            hist.observe(value)
        assert hist.mean == pytest.approx(4.0)
        assert hist.max_latency == 6.0
        assert hist.count == 3

    def test_empty_mean(self):
        assert LatencyHistogram("lat").mean == 0.0

    def test_bucketing_powers_of_two(self):
        hist = LatencyHistogram("lat")
        hist.observe(0.5)   # bucket 0 (< 1)
        hist.observe(1.5)   # >= 1, < 2 -> bucket 1
        hist.observe(3.0)   # >= 2, < 4 -> bucket 2
        assert hist.buckets[0] == 1
        assert hist.buckets[1] == 1
        assert hist.buckets[2] == 1

    def test_huge_latency_lands_in_last_bucket(self):
        hist = LatencyHistogram("lat", num_buckets=4)
        hist.observe(1e12)
        assert hist.buckets[-1] == 1

    def test_negative_latency_rejected(self):
        hist = LatencyHistogram("lat")
        with pytest.raises(ValueError):
            hist.observe(-1.0)

    def test_percentile_bound(self):
        hist = LatencyHistogram("lat")
        for _ in range(99):
            hist.observe(1.0)
        hist.observe(1000.0)
        median_bound = hist.percentile_bucket_upper_bound(0.5)
        tail_bound = hist.percentile_bucket_upper_bound(1.0)
        assert median_bound <= 2.0
        assert tail_bound >= 1000.0

    def test_percentile_validation(self):
        hist = LatencyHistogram("lat")
        with pytest.raises(ValueError):
            hist.percentile_bucket_upper_bound(0.0)
        assert hist.percentile_bucket_upper_bound(0.5) == 0.0  # empty


class TestMakespan:
    def test_latest_completion(self):
        records = [LatencyRecord(0.0, 5.0), LatencyRecord(2.0, 9.0)]
        assert makespan(records) == 9.0

    def test_empty(self):
        assert makespan([]) == 0.0
