"""Tests for the O(1) histogram bucket index.

The histogram used to scan bucket thresholds linearly; the closed-form
``bit_length`` index must assign every latency to exactly the bucket the
scan did.
"""

from __future__ import annotations

import pytest

from repro.sim.latency import LatencyHistogram, bucket_index


def _linear_scan_bucket(latency: float, num_buckets: int) -> int:
    """The original implementation: walk the power-of-two thresholds."""
    index = 0
    threshold = 1.0
    while latency >= threshold and index < num_buckets - 1:
        index += 1
        threshold *= 2.0
    return index


class TestBucketIndexRegression:
    @pytest.mark.parametrize("num_buckets", [2, 4, 24])
    def test_matches_linear_scan_on_integer_latencies(self, num_buckets):
        for latency in range(0, 4096):
            assert bucket_index(float(latency), num_buckets) == (
                _linear_scan_bucket(float(latency), num_buckets)
            ), latency

    @pytest.mark.parametrize(
        "latency",
        [0.0, 0.25, 0.999, 1.0, 1.5, 2.0, 3.999, 4.0, 1023.5, 1024.0, 1e12],
    )
    def test_matches_linear_scan_on_float_latencies(self, latency):
        assert bucket_index(latency, 24) == _linear_scan_bucket(latency, 24)

    def test_exact_powers_of_two_open_a_new_bucket(self):
        for exponent in range(0, 20):
            latency = float(2**exponent)
            assert bucket_index(latency, 24) == exponent + 1
            # Just below the boundary stays in the previous bucket.
            assert bucket_index(latency - 0.5, 24) == exponent

    def test_sub_cycle_latencies_land_in_bucket_zero(self):
        assert bucket_index(0.0, 24) == 0
        assert bucket_index(0.999, 24) == 0

    def test_saturates_at_last_bucket(self):
        assert bucket_index(1e18, 4) == 3

    def test_histogram_uses_the_same_assignment(self):
        hist = LatencyHistogram("lat", num_buckets=8)
        for latency in (0.5, 1.5, 3.0, 100.0, 1e9):
            hist.observe(latency)
        expected = [0] * 8
        for latency in (0.5, 1.5, 3.0, 100.0, 1e9):
            expected[_linear_scan_bucket(latency, 8)] += 1
        assert hist.buckets == expected
