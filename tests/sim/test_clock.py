"""Tests for the simulation clock and frequency conversions."""

import pytest

from repro.sim.clock import ClockDomain, SimClock, bytes_per_cycle


class TestSimClock:
    def test_starts_at_zero(self):
        clock = SimClock()
        assert clock.now == 0.0
        assert clock.elapsed == 0.0

    def test_advance_moves_now_and_high_water(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0
        assert clock.elapsed == 10.0

    def test_advance_backwards_rejected(self):
        clock = SimClock()
        clock.advance_to(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_advance_to_same_cycle_allowed(self):
        clock = SimClock()
        clock.advance_to(5.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_observe_completion_does_not_move_now(self):
        clock = SimClock()
        clock.advance_to(3.0)
        clock.observe_completion(100.0)
        assert clock.now == 3.0
        assert clock.elapsed == 100.0

    def test_observe_completion_in_past_keeps_high_water(self):
        clock = SimClock()
        clock.observe_completion(50.0)
        clock.observe_completion(10.0)
        assert clock.elapsed == 50.0

    def test_reset(self):
        clock = SimClock()
        clock.advance_to(10.0)
        clock.observe_completion(90.0)
        clock.reset()
        assert clock.now == 0.0
        assert clock.elapsed == 0.0


class TestClockDomain:
    def test_identity_when_same_frequency(self):
        domain = ClockDomain(name="gpu", frequency_ghz=1.0)
        assert domain.to_reference_cycles(100.0) == 100.0
        assert domain.from_reference_cycles(100.0) == 100.0

    def test_faster_domain_cycles_shrink_in_reference(self):
        # 1.25 GHz memory cycles are shorter than 1 GHz GPU cycles.
        domain = ClockDomain(name="mem", frequency_ghz=1.25)
        assert domain.to_reference_cycles(125.0) == pytest.approx(100.0)

    def test_round_trip(self):
        domain = ClockDomain(name="mem", frequency_ghz=1.25)
        assert domain.from_reference_cycles(
            domain.to_reference_cycles(37.0)
        ) == pytest.approx(37.0)

    def test_seconds(self):
        domain = ClockDomain(name="gpu", frequency_ghz=1.0)
        assert domain.seconds(1e9) == pytest.approx(1.0)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            ClockDomain(name="bad", frequency_ghz=0.0)
        with pytest.raises(ValueError):
            ClockDomain(name="bad", frequency_ghz=1.0, reference_ghz=-1.0)


class TestBytesPerCycle:
    def test_table1_gddr5(self):
        # 128 GB/s at 1 GHz is exactly 128 bytes per cycle.
        assert bytes_per_cycle(128.0, 1.0) == 128.0

    def test_scales_with_frequency(self):
        assert bytes_per_cycle(128.0, 2.0) == 64.0

    def test_zero_bandwidth_allowed(self):
        assert bytes_per_cycle(0.0) == 0.0

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            bytes_per_cycle(-1.0)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            bytes_per_cycle(10.0, 0.0)
