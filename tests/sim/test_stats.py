"""Tests for counters, accumulators and stat groups."""

import pytest

from repro.sim.stats import Accumulator, Counter, StatGroup


class TestCounter:
    def test_add_default_one(self):
        counter = Counter("events")
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5

    def test_negative_add_rejected(self):
        counter = Counter("events")
        with pytest.raises(ValueError):
            counter.add(-1.0)

    def test_nan_add_rejected(self):
        # nan < 0 is False, so the sign guard alone would accept NaN and
        # poison the counter for every later report.
        counter = Counter("events")
        with pytest.raises(ValueError, match="non-finite"):
            counter.add(float("nan"))
        assert counter.value == 0.0

    def test_infinite_add_rejected(self):
        counter = Counter("events")
        counter.add(2.0)
        with pytest.raises(ValueError, match="non-finite"):
            counter.add(float("inf"))
        assert counter.value == 2.0

    def test_reset(self):
        counter = Counter("events")
        counter.add(4)
        counter.reset()
        assert counter.value == 0.0


class TestAccumulator:
    def test_mean_min_max(self):
        acc = Accumulator("lat")
        for sample in (1.0, 3.0, 5.0):
            acc.observe(sample)
        assert acc.mean == pytest.approx(3.0)
        assert acc.minimum == 1.0
        assert acc.maximum == 5.0
        assert acc.count == 3

    def test_empty_mean_is_zero(self):
        assert Accumulator("lat").mean == 0.0

    def test_nan_observe_rejected_state_unchanged(self):
        # A NaN sample fails every ordered comparison, so it would leave
        # minimum/maximum at their +/-inf identities with count > 0 --
        # and flatten() would then leak inf into reports.
        acc = Accumulator("lat")
        acc.observe(2.0)
        with pytest.raises(ValueError, match="non-finite"):
            acc.observe(float("nan"))
        assert acc.count == 1
        assert acc.total == 2.0
        assert acc.minimum == 2.0
        assert acc.maximum == 2.0

    @pytest.mark.parametrize("bad", [float("inf"), float("-inf")])
    def test_infinite_observe_rejected(self, bad):
        acc = Accumulator("lat")
        with pytest.raises(ValueError, match="non-finite"):
            acc.observe(bad)
        assert acc.count == 0
        assert acc.minimum_or_none is None

    def test_flatten_never_emits_inf_after_rejection(self):
        import math

        group = StatGroup("g")
        acc = group.accumulator("lat")
        with pytest.raises(ValueError):
            acc.observe(float("nan"))
        assert all(
            value is None or math.isfinite(value)
            for value in group.as_dict().values()
        )

    def test_merge(self):
        left = Accumulator("lat")
        right = Accumulator("lat")
        left.observe(2.0)
        right.observe(4.0)
        right.observe(6.0)
        left.merge(right)
        assert left.count == 3
        assert left.mean == pytest.approx(4.0)
        assert left.maximum == 6.0

    def test_merge_empty_keeps_bounds(self):
        left = Accumulator("lat")
        left.observe(1.0)
        left.merge(Accumulator("lat"))
        assert left.minimum == 1.0
        assert left.maximum == 1.0

    def test_merge_two_empties_reports_none_bounds(self):
        left = Accumulator("lat")
        left.merge(Accumulator("lat"))
        assert left.count == 0
        assert left.minimum_or_none is None
        assert left.maximum_or_none is None

    def test_merge_into_empty_adopts_other_bounds(self):
        left = Accumulator("lat")
        right = Accumulator("lat")
        right.observe(2.0)
        right.observe(8.0)
        left.merge(right)
        assert left.minimum == 2.0
        assert left.maximum == 8.0

    def test_empty_as_dict_is_json_safe(self):
        import json

        acc = Accumulator("lat")
        payload = acc.as_dict()
        assert payload["min"] is None
        assert payload["max"] is None
        # Would raise on inf with allow_nan=False; the whole point.
        encoded = json.loads(json.dumps(payload, allow_nan=False))
        assert encoded["count"] == 0.0

    def test_reset_then_report_none_bounds(self):
        acc = Accumulator("lat")
        acc.observe(3.0)
        acc.reset()
        assert acc.minimum_or_none is None
        assert acc.maximum_or_none is None

    def test_populated_as_dict_has_bounds(self):
        acc = Accumulator("lat")
        acc.observe(1.0)
        acc.observe(5.0)
        payload = acc.as_dict()
        assert payload["min"] == 1.0
        assert payload["max"] == 5.0

    def test_reset(self):
        acc = Accumulator("lat")
        acc.observe(9.0)
        acc.reset()
        assert acc.count == 0
        assert acc.total == 0.0


class TestStatGroup:
    def test_counter_identity_per_name(self):
        group = StatGroup("gpu")
        assert group.counter("hits") is group.counter("hits")

    def test_flatten_paths(self):
        root = StatGroup("gpu")
        root.counter("frames").add(1)
        child = root.child("tex")
        child.counter("hits").add(10)
        child.accumulator("lat").observe(4.0)
        flat = root.as_dict()
        assert flat["gpu.frames"] == 1.0
        assert flat["gpu.tex.hits"] == 10.0
        assert flat["gpu.tex.lat.mean"] == 4.0
        assert flat["gpu.tex.lat.count"] == 1.0
        assert flat["gpu.tex.lat.min"] == 4.0
        assert flat["gpu.tex.lat.max"] == 4.0

    def test_flatten_empty_accumulator_omits_bounds(self):
        root = StatGroup("gpu")
        root.accumulator("lat")
        flat = root.as_dict()
        assert flat["gpu.lat.count"] == 0.0
        assert "gpu.lat.min" not in flat
        assert "gpu.lat.max" not in flat

    def test_nested_children(self):
        root = StatGroup("a")
        root.child("b").child("c").counter("x").add(2)
        assert root.as_dict()["a.b.c.x"] == 2.0

    def test_adopt_grafts_group_under_its_own_name(self):
        root = StatGroup("run")
        memory = StatGroup("memory")
        memory.counter("reads").add(9)
        assert root.adopt(memory) is memory
        assert root.as_dict()["run.memory.reads"] == 9.0

    def test_adopt_replaces_same_named_child(self):
        root = StatGroup("run")
        root.child("memory").counter("reads").add(1)
        fresh = StatGroup("memory")
        fresh.counter("reads").add(5)
        root.adopt(fresh)
        assert root.as_dict()["run.memory.reads"] == 5.0

    def test_reset_recurses(self):
        root = StatGroup("a")
        root.counter("x").add(5)
        root.child("b").counter("y").add(7)
        root.reset()
        assert root.as_dict()["a.x"] == 0.0
        assert root.as_dict()["a.b.y"] == 0.0
