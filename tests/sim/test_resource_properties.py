"""Property-based tests for the resource-occupancy servers."""

from hypothesis import given, settings, strategies as st

from repro.sim.resources import BandwidthServer, RequestQueue, ThroughputUnit

sizes = st.lists(st.integers(1, 4096), min_size=1, max_size=60)
arrivals = st.lists(st.floats(0, 1000), min_size=1, max_size=60)


class TestBandwidthServerProperties:
    @settings(max_examples=100, deadline=None)
    @given(sizes=sizes)
    def test_throughput_never_exceeds_rate(self, sizes):
        """Total service time is at least total bytes / rate."""
        server = BandwidthServer(name="s", bytes_per_cycle=32.0, latency=0.0)
        last_ready = 0.0
        for nbytes in sizes:
            last_ready = server.access(0.0, nbytes)
        assert last_ready >= sum(sizes) / 32.0 - 1e-9

    @settings(max_examples=100, deadline=None)
    @given(sizes=sizes)
    def test_completions_monotone_for_simultaneous_arrivals(self, sizes):
        server = BandwidthServer(name="s", bytes_per_cycle=16.0, latency=5.0)
        completions = [server.access(0.0, nbytes) for nbytes in sizes]
        assert completions == sorted(completions)

    @settings(max_examples=100, deadline=None)
    @given(sizes=sizes, latency=st.floats(0, 100))
    def test_ready_never_before_arrival_plus_minimum(self, sizes, latency):
        server = BandwidthServer(name="s", bytes_per_cycle=64.0, latency=latency)
        for index, nbytes in enumerate(sizes):
            arrival = float(index)
            ready = server.access(arrival, nbytes)
            assert ready >= arrival + nbytes / 64.0 + latency - 1e-9

    @settings(max_examples=50, deadline=None)
    @given(sizes=sizes)
    def test_busy_cycles_equal_work(self, sizes):
        server = BandwidthServer(name="s", bytes_per_cycle=8.0)
        for nbytes in sizes:
            server.access(0.0, nbytes)
        assert server.busy_cycles == sum(sizes) / 8.0
        assert server.total_bytes == float(sum(sizes))


class TestThroughputUnitProperties:
    @settings(max_examples=100, deadline=None)
    @given(ops=st.lists(st.integers(1, 64), min_size=1, max_size=40))
    def test_issue_slots_never_overlap(self, ops):
        unit = ThroughputUnit(name="u", ops_per_cycle=4.0, pipeline_depth=2.0)
        previous_issue_end = 0.0
        for count in ops:
            completion = unit.issue(0.0, count)
            issue_end = completion - unit.pipeline_depth
            assert issue_end >= previous_issue_end - 1e-9
            previous_issue_end = issue_end
        assert unit.total_ops == sum(ops)


class TestRequestQueueProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        arrivals=st.lists(st.floats(0, 50), min_size=2, max_size=60),
        capacity=st.integers(1, 16),
    )
    def test_admission_never_precedes_arrival(self, arrivals, capacity):
        queue = RequestQueue(name="q", capacity=capacity, drain_rate=1.0)
        for arrival in sorted(arrivals):
            admitted = queue.enqueue(arrival)
            assert admitted >= arrival - 1e-9

    @settings(max_examples=100, deadline=None)
    @given(count=st.integers(1, 100), capacity=st.integers(1, 8))
    def test_burst_admission_rate_bounded_by_drain(self, count, capacity):
        """A burst of simultaneous arrivals is admitted no faster than
        the drain rate once the buffer fills."""
        queue = RequestQueue(name="q", capacity=capacity, drain_rate=1.0)
        last_admitted = 0.0
        for _ in range(count):
            last_admitted = queue.enqueue(0.0)
        expected_minimum = max(0, count - capacity)
        assert last_admitted >= expected_minimum - 1e-9
