"""Tests for the resource-occupancy servers."""

import pytest

from repro.sim.resources import BandwidthServer, RequestQueue, ThroughputUnit


class TestBandwidthServer:
    def test_single_access_pays_occupancy_plus_latency(self):
        server = BandwidthServer(name="bus", bytes_per_cycle=64.0, latency=10.0)
        ready = server.access(arrival=0.0, nbytes=128)
        assert ready == pytest.approx(2.0 + 10.0)

    def test_back_to_back_accesses_queue(self):
        server = BandwidthServer(name="bus", bytes_per_cycle=64.0, latency=0.0)
        first = server.access(0.0, 64)
        second = server.access(0.0, 64)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_idle_gap_not_charged(self):
        server = BandwidthServer(name="bus", bytes_per_cycle=64.0, latency=0.0)
        server.access(0.0, 64)
        ready = server.access(100.0, 64)
        assert ready == pytest.approx(101.0)

    def test_latency_is_pipelined_not_occupancy(self):
        # Two accesses: the second starts when the first's *occupancy*
        # ends, not when its latency ends.
        server = BandwidthServer(name="bus", bytes_per_cycle=64.0, latency=50.0)
        first = server.access(0.0, 64)
        second = server.access(0.0, 64)
        assert first == pytest.approx(51.0)
        assert second == pytest.approx(52.0)

    def test_zero_byte_access_pays_only_latency(self):
        server = BandwidthServer(name="bus", bytes_per_cycle=64.0, latency=7.0)
        assert server.access(3.0, 0) == pytest.approx(10.0)

    def test_total_accounting(self):
        server = BandwidthServer(name="bus", bytes_per_cycle=32.0)
        server.access(0.0, 64)
        server.access(0.0, 32)
        assert server.total_bytes == 96.0
        assert server.total_requests == 2
        assert server.busy_cycles == pytest.approx(3.0)

    def test_utilization(self):
        server = BandwidthServer(name="bus", bytes_per_cycle=64.0)
        server.access(0.0, 640)
        assert server.utilization(elapsed=20.0) == pytest.approx(0.5)
        assert server.utilization(elapsed=0.0) == 0.0

    def test_peek_does_not_consume(self):
        server = BandwidthServer(name="bus", bytes_per_cycle=64.0, latency=1.0)
        peeked = server.peek_ready(0.0, 64)
        assert server.total_requests == 0
        assert server.access(0.0, 64) == pytest.approx(peeked)

    def test_negative_size_rejected(self):
        server = BandwidthServer(name="bus", bytes_per_cycle=64.0)
        with pytest.raises(ValueError):
            server.access(0.0, -1)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            BandwidthServer(name="bad", bytes_per_cycle=0.0)

    def test_reset(self):
        server = BandwidthServer(name="bus", bytes_per_cycle=64.0)
        server.access(0.0, 128)
        server.reset()
        assert server.total_bytes == 0.0
        assert server.next_free == 0.0


class TestThroughputUnit:
    def test_issue_rate_limits_throughput(self):
        unit = ThroughputUnit(name="alu", ops_per_cycle=4.0, pipeline_depth=0.0)
        first = unit.issue(0.0, ops=8)
        second = unit.issue(0.0, ops=4)
        assert first == pytest.approx(2.0)
        assert second == pytest.approx(3.0)

    def test_pipeline_depth_added_to_completion(self):
        unit = ThroughputUnit(name="alu", ops_per_cycle=1.0, pipeline_depth=5.0)
        assert unit.issue(0.0, ops=1) == pytest.approx(6.0)

    def test_zero_ops_is_noop_with_depth(self):
        unit = ThroughputUnit(name="alu", ops_per_cycle=2.0, pipeline_depth=3.0)
        assert unit.issue(10.0, ops=0) == pytest.approx(13.0)
        assert unit.next_issue == 10.0

    def test_op_accounting(self):
        unit = ThroughputUnit(name="alu", ops_per_cycle=2.0)
        unit.issue(0.0, ops=10)
        assert unit.total_ops == 10
        assert unit.busy_cycles == pytest.approx(5.0)

    def test_negative_ops_rejected(self):
        unit = ThroughputUnit(name="alu", ops_per_cycle=1.0)
        with pytest.raises(ValueError):
            unit.issue(0.0, ops=-1)

    def test_reset(self):
        unit = ThroughputUnit(name="alu", ops_per_cycle=1.0)
        unit.issue(0.0, ops=4)
        unit.reset()
        assert unit.total_ops == 0
        assert unit.next_issue == 0.0


class TestRequestQueue:
    def test_admission_immediate_when_empty(self):
        queue = RequestQueue(name="q", capacity=4, drain_rate=1.0)
        assert queue.enqueue(5.0) == pytest.approx(5.0)

    def test_backpressure_when_full(self):
        queue = RequestQueue(name="q", capacity=2, drain_rate=1.0)
        for _ in range(2):
            queue.enqueue(0.0)
        # The third arrival must wait for the head to drain.
        admitted = queue.enqueue(0.0)
        assert admitted > 0.0

    def test_stall_cycles_accumulate(self):
        queue = RequestQueue(name="q", capacity=1, drain_rate=1.0)
        queue.enqueue(0.0)
        queue.enqueue(0.0)
        queue.enqueue(0.0)
        assert queue.total_stall_cycles > 0.0
        assert queue.total_enqueued == 3

    def test_no_stall_when_arrivals_spread_out(self):
        queue = RequestQueue(name="q", capacity=4, drain_rate=1.0)
        for cycle in range(10):
            assert queue.enqueue(float(cycle * 2)) == pytest.approx(cycle * 2)
        assert queue.total_stall_cycles == 0.0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            RequestQueue(name="q", capacity=0)
        with pytest.raises(ValueError):
            RequestQueue(name="q", capacity=1, drain_rate=0.0)

    def test_reset(self):
        queue = RequestQueue(name="q", capacity=1, drain_rate=1.0)
        queue.enqueue(0.0)
        queue.enqueue(0.0)
        queue.reset()
        assert queue.total_enqueued == 0
        assert queue.total_stall_cycles == 0.0
        assert queue.enqueue(0.0) == pytest.approx(0.0)
