"""Tests for PSNR (the paper's quality metric)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.quality import PSNR_IDENTICAL_CAP, mse, psnr
from repro.quality.psnr import IMPERCEPTIBLE_PSNR


def make_image(seed=0, shape=(16, 16, 3)):
    return np.random.default_rng(seed).random(shape)


class TestMse:
    def test_identical_is_zero(self):
        image = make_image()
        assert mse(image, image) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 0.5)
        assert mse(a, b) == pytest.approx(0.25)

    def test_symmetry(self):
        a, b = make_image(1), make_image(2)
        assert mse(a, b) == pytest.approx(mse(b, a))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((0, 2)), np.zeros((0, 2)))


class TestPsnr:
    def test_identical_capped_at_99(self):
        # The paper: "the PSNR of the baseline is 99 (comparing two
        # identical images)".
        image = make_image()
        assert psnr(image, image) == PSNR_IDENTICAL_CAP

    def test_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.1)
        # mse = 0.01 -> psnr = 10 * log10(1/0.01) = 20 dB.
        assert psnr(a, b) == pytest.approx(20.0)

    def test_more_noise_lower_psnr(self):
        reference = make_image(3)
        small = reference + 0.001
        large = np.clip(reference + 0.1, 0, 1)
        assert psnr(reference, small) > psnr(reference, large)

    @given(scale=st.floats(1e-4, 0.5))
    def test_monotone_in_uniform_error(self, scale):
        reference = np.full((8, 8), 0.5)
        less = psnr(reference, reference + scale / 2)
        more = psnr(reference, reference + scale)
        assert less >= more

    def test_imperceptible_threshold_documented(self):
        assert IMPERCEPTIBLE_PSNR == 70.0

    def test_tiny_error_capped(self):
        image = make_image()
        almost = image + 1e-12
        assert psnr(image, almost) == PSNR_IDENTICAL_CAP

    def test_peak_validation(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((2, 2)), peak=0.0)


class TestSsim:
    def test_identical_is_one(self):
        from repro.quality import ssim

        image = make_image(shape=(16, 16, 3))
        assert ssim(image, image) == pytest.approx(1.0)

    def test_noise_below_one(self):
        from repro.quality import ssim

        reference = make_image(5)
        noisy = np.clip(reference + 0.2 * make_image(6), 0, 1)
        assert ssim(reference, noisy) < 0.999

    def test_grayscale_input(self):
        from repro.quality import ssim

        image = make_image(shape=(16, 16))
        assert ssim(image, image) == pytest.approx(1.0)

    def test_window_too_large_rejected(self):
        from repro.quality import ssim

        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((4, 4)), radius=3)

    def test_shape_mismatch_rejected(self):
        from repro.quality import ssim

        with pytest.raises(ValueError):
            ssim(np.zeros((16, 16)), np.zeros((16, 17)))
