"""Tests for the texture-compression design option (section VIII)."""

import pytest

from repro.core import Design, simulate_frame


class TestCompressionOption:
    @pytest.fixture(scope="class")
    def pair(self, fast_workload, fast_workload_trace):
        scene, trace = fast_workload_trace
        plain = simulate_frame(
            scene, trace,
            fast_workload.design_config(Design.BASELINE),
        )
        compressed = simulate_frame(
            scene, trace,
            fast_workload.design_config(
                Design.BASELINE, texture_compression=True
            ),
        )
        return plain, compressed

    def test_compression_cuts_texture_traffic(self, pair):
        plain, compressed = pair
        assert compressed.frame.traffic.external_texture < (
            plain.frame.traffic.external_texture
        )

    def test_compression_never_slows_the_frame(self, pair):
        plain, compressed = pair
        assert compressed.frame.frame_cycles <= plain.frame.frame_cycles * 1.02

    def test_compression_orthogonal_to_atfim(self, fast_workload,
                                             fast_workload_trace):
        """Section VIII: 'our work is orthogonal to these texture
        compression techniques' -- the two combine.  A-TFIM's external
        traffic is offload-package-dominated (packages carry coordinates
        and filtered values, not raw texels), so compression shows up in
        the *internal* child-texel fetches.
        """
        scene, trace = fast_workload_trace
        atfim = simulate_frame(
            scene, trace, fast_workload.design_config(Design.A_TFIM)
        )
        both = simulate_frame(
            scene, trace,
            fast_workload.design_config(Design.A_TFIM, texture_compression=True),
        )
        assert both.frame.traffic.internal_total < 0.5 * (
            atfim.frame.traffic.internal_total
        )
        assert both.frame.traffic.external_texture == pytest.approx(
            atfim.frame.traffic.external_texture, rel=0.02
        )

    def test_compression_affects_stfim_internal_traffic(self, fast_workload,
                                                        fast_workload_trace):
        scene, trace = fast_workload_trace
        plain = simulate_frame(
            scene, trace, fast_workload.design_config(Design.S_TFIM)
        )
        compressed = simulate_frame(
            scene, trace,
            fast_workload.design_config(Design.S_TFIM, texture_compression=True),
        )
        assert compressed.frame.traffic.internal_total < (
            plain.frame.traffic.internal_total
        )
        # The live-texture packages themselves are not compressible:
        # external S-TFIM traffic is package-dominated and stays put.
        assert compressed.frame.traffic.external_texture == pytest.approx(
            plain.frame.traffic.external_texture
        )
