"""Tests for the camera-angle threshold definitions."""

import math

import pytest

from repro.core.angle import (
    DEFAULT_THRESHOLD,
    THRESHOLD_001PI,
    THRESHOLD_005PI,
    THRESHOLD_0005PI,
    THRESHOLD_NO_RECALC,
    THRESHOLD_SWEEP,
    AngleThreshold,
)


class TestAngleThreshold:
    def test_default_is_001pi(self):
        assert DEFAULT_THRESHOLD is THRESHOLD_001PI
        assert DEFAULT_THRESHOLD.radians == pytest.approx(0.01 * math.pi)
        # The paper calls this 1.8 degrees.
        assert DEFAULT_THRESHOLD.degrees == pytest.approx(1.8)

    def test_0005pi_is_09_degrees(self):
        assert THRESHOLD_0005PI.degrees == pytest.approx(0.9)

    def test_005pi_is_9_degrees(self):
        assert THRESHOLD_005PI.degrees == pytest.approx(9.0)

    def test_no_recalc_has_no_finite_threshold(self):
        assert THRESHOLD_NO_RECALC.radians is None
        assert THRESHOLD_NO_RECALC.degrees is None
        assert THRESHOLD_NO_RECALC.effective_radians == math.pi

    def test_sweep_ordered_strictest_first(self):
        values = [threshold.effective_radians for threshold in THRESHOLD_SWEEP]
        assert values == sorted(values)
        assert len(THRESHOLD_SWEEP) == 5

    def test_labels_match_paper(self):
        labels = [threshold.label for threshold in THRESHOLD_SWEEP]
        assert labels == [
            "A-TFIM-0005pi",
            "A-TFIM-001pi",
            "A-TFIM-005pi",
            "A-TFIM-01pi",
            "A-TFIM-no",
        ]

    def test_str(self):
        assert str(THRESHOLD_001PI) == "A-TFIM-001pi"
