"""Tests for the camera-angle threshold definitions."""

import math

import pytest

from repro.core.angle import (
    DEFAULT_THRESHOLD,
    THRESHOLD_001PI,
    THRESHOLD_005PI,
    THRESHOLD_0005PI,
    THRESHOLD_NO_RECALC,
    THRESHOLD_SWEEP,
    AngleThreshold,
)


class TestAngleThreshold:
    def test_default_is_001pi(self):
        assert DEFAULT_THRESHOLD is THRESHOLD_001PI
        assert DEFAULT_THRESHOLD.radians == pytest.approx(0.01 * math.pi)
        # The paper calls this 1.8 degrees.
        assert DEFAULT_THRESHOLD.degrees == pytest.approx(1.8)

    def test_0005pi_is_09_degrees(self):
        assert THRESHOLD_0005PI.degrees == pytest.approx(0.9)

    def test_005pi_is_9_degrees(self):
        assert THRESHOLD_005PI.degrees == pytest.approx(9.0)

    def test_no_recalc_has_no_finite_threshold(self):
        assert THRESHOLD_NO_RECALC.radians is None
        assert THRESHOLD_NO_RECALC.degrees is None
        assert THRESHOLD_NO_RECALC.effective_radians == math.pi

    def test_sweep_ordered_strictest_first(self):
        values = [threshold.effective_radians for threshold in THRESHOLD_SWEEP]
        assert values == sorted(values)
        assert len(THRESHOLD_SWEEP) == 5

    def test_labels_match_paper(self):
        labels = [threshold.label for threshold in THRESHOLD_SWEEP]
        assert labels == [
            "A-TFIM-0005pi",
            "A-TFIM-001pi",
            "A-TFIM-005pi",
            "A-TFIM-01pi",
            "A-TFIM-no",
        ]

    def test_str(self):
        assert str(THRESHOLD_001PI) == "A-TFIM-001pi"


class TestDegreeRadianRoundTrips:
    def test_every_finite_threshold_round_trips(self):
        for threshold in THRESHOLD_SWEEP:
            if threshold.radians is None:
                continue
            assert math.radians(threshold.degrees) == pytest.approx(
                threshold.radians
            )
            assert math.degrees(threshold.radians) == pytest.approx(
                threshold.degrees
            )

    def test_zero_degrees_is_zero_radians(self):
        zero = AngleThreshold(label="zero", radians=0.0)
        assert zero.degrees == pytest.approx(0.0)
        assert zero.effective_radians == 0.0

    def test_ninety_degrees_is_half_pi(self):
        right = AngleThreshold(label="right", radians=math.pi / 2)
        assert right.degrees == pytest.approx(90.0)
        assert math.radians(right.degrees) == pytest.approx(math.pi / 2)


class TestReusePredicate:
    def test_difference_within_threshold_reuses(self):
        assert DEFAULT_THRESHOLD.reuse_allowed(0.005 * math.pi)

    def test_difference_beyond_threshold_recalculates(self):
        assert not DEFAULT_THRESHOLD.reuse_allowed(0.02 * math.pi)

    def test_boundary_difference_reuses(self):
        # Exactly at the threshold: reuse (the check is <=).
        assert DEFAULT_THRESHOLD.reuse_allowed(DEFAULT_THRESHOLD.radians)

    def test_zero_difference_always_reuses(self):
        for threshold in THRESHOLD_SWEEP:
            assert threshold.reuse_allowed(0.0)

    def test_sign_of_difference_does_not_matter(self):
        assert DEFAULT_THRESHOLD.reuse_allowed(-0.005 * math.pi)
        assert not DEFAULT_THRESHOLD.reuse_allowed(-0.02 * math.pi)

    def test_zero_threshold_only_reuses_identical_angles(self):
        zero = AngleThreshold(label="zero", radians=0.0)
        assert zero.reuse_allowed(0.0)
        assert not zero.reuse_allowed(1e-9)

    def test_no_recalculation_reuses_everything(self):
        for difference in (0.0, 0.5 * math.pi, math.pi, -math.pi):
            assert THRESHOLD_NO_RECALC.reuse_allowed(difference)

    def test_strictness_ordering(self):
        # A difference of 2 degrees: rejected by the two strictest
        # settings, accepted by the looser ones.
        difference = math.radians(2.0)
        decisions = [
            threshold.reuse_allowed(difference) for threshold in THRESHOLD_SWEEP
        ]
        assert decisions == [False, False, True, True, True]
