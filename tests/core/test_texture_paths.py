"""Tests for the four designs' texture paths (unit level).

The integration-level orderings live in tests/test_integration.py; here
each path's mechanics are exercised on hand-built requests.
"""

import math

import pytest

from repro.core.atfim import AtfimPath
from repro.core.baseline import GpuFilteringPath
from repro.core.designs import Design, DesignConfig
from repro.core.expansion import RequestExpander
from repro.core.stfim import StfimPath
from repro.memory.traffic import TrafficClass, TrafficMeter
from repro.render.scene import Scene
from repro.texture.lod import compute_footprint
from repro.texture.requests import TextureRequest
from repro.workloads.textures import ProceduralTextureLibrary


@pytest.fixture(scope="module")
def scene():
    scene = Scene()
    scene.add_texture(ProceduralTextureLibrary().create("checker", 64, seed=1))
    return scene


def expand(scene, u=20.0, v=20.0, probes=4, lod=1.5, angle=0.4):
    minor = 2.0 ** lod
    footprint = compute_footprint(minor * probes, 0.0, 0.0, minor)
    request = TextureRequest(
        pixel_x=0, pixel_y=0, texture_id=0, u=u, v=v,
        footprint=footprint, camera_angle=angle,
    )
    return RequestExpander(scene).expand(request)


class TestBaselinePath:
    def test_wrong_design_rejected(self):
        with pytest.raises(ValueError):
            GpuFilteringPath(DesignConfig(design=Design.S_TFIM), TrafficMeter())

    def test_serve_advances_time(self, scene):
        traffic = TrafficMeter()
        path = GpuFilteringPath(DesignConfig(design=Design.BASELINE), traffic)
        completion = path.serve(0, 10.0, expand(scene))
        assert completion > 10.0

    def test_activity_counts_texels(self, scene):
        traffic = TrafficMeter()
        path = GpuFilteringPath(DesignConfig(design=Design.BASELINE), traffic)
        expanded = expand(scene)
        path.serve(0, 0.0, expanded)
        activity = path.activity()
        assert activity.gpu_texture.address_ops == expanded.num_conventional_texels
        assert activity.gpu_texture.filter_ops == expanded.num_conventional_texels
        assert activity.gpu_texture.requests == 1
        assert activity.memory_texture.address_ops == 0

    def test_traffic_only_on_misses(self, scene):
        traffic = TrafficMeter()
        path = GpuFilteringPath(DesignConfig(design=Design.BASELINE), traffic)
        expanded = expand(scene)
        path.serve(0, 0.0, expanded)
        first = traffic.external_texture
        assert first > 0
        path.serve(0, 100.0, expanded)
        assert traffic.external_texture == first

    def test_bpim_uses_hmc(self, scene):
        traffic = TrafficMeter()
        path = GpuFilteringPath(DesignConfig(design=Design.B_PIM), traffic)
        path.serve(0, 0.0, expand(scene))
        assert path.hmc is not None
        assert path.hmc.external_reads > 0

    def test_reset_for_measurement(self, scene):
        traffic = TrafficMeter()
        path = GpuFilteringPath(DesignConfig(design=Design.BASELINE), traffic)
        expanded = expand(scene)
        path.serve(0, 0.0, expanded)
        path.reset_for_measurement()
        assert path.activity().gpu_texture.address_ops == 0
        # Cache contents survive: the re-served request misses nowhere.
        traffic.reset()
        path.serve(0, 0.0, expanded)
        assert traffic.external_texture == 0.0


class TestStfimPath:
    def test_every_request_pays_packages(self, scene):
        traffic = TrafficMeter()
        config = DesignConfig(design=Design.S_TFIM)
        path = StfimPath(config, traffic)
        expanded = expand(scene)
        path.serve(0, 0.0, expanded)
        per_request = traffic.external_texture
        path.serve(0, 100.0, expanded)
        # No caches: the second identical request pays the same again.
        assert traffic.external_texture == pytest.approx(2 * per_request)
        expected = (
            config.packets.texture_request_bytes
            + config.packets.texture_response_bytes(1)
        )
        assert per_request == pytest.approx(expected)

    def test_internal_reads_happen(self, scene):
        traffic = TrafficMeter()
        path = StfimPath(DesignConfig(design=Design.S_TFIM), traffic)
        path.serve(0, 0.0, expand(scene))
        assert path.hmc.internal_reads > 0
        assert traffic.internal_total > 0

    def test_merge_window_coalesces_repeats(self, scene):
        traffic = TrafficMeter()
        path = StfimPath(DesignConfig(design=Design.S_TFIM), traffic)
        expanded = expand(scene)
        path.serve(0, 0.0, expanded)
        reads_first = path.hmc.internal_reads
        path.serve(0, 1.0, expanded)
        # Identical request right behind: all its lines merge.
        assert path.hmc.internal_reads == reads_first
        assert path.merge_windows[0].merged > 0

    def test_mtu_sharing_routes_clusters(self, scene):
        traffic = TrafficMeter()
        path = StfimPath(
            DesignConfig(design=Design.S_TFIM, mtu_share=4), traffic
        )
        assert len(path.mtus) == 4
        path.serve(0, 0.0, expand(scene))
        path.serve(3, 0.0, expand(scene))
        assert path.mtus[0].activity.requests == 2

    def test_activity_is_memory_side(self, scene):
        traffic = TrafficMeter()
        path = StfimPath(DesignConfig(design=Design.S_TFIM), traffic)
        path.serve(0, 0.0, expand(scene))
        activity = path.activity()
        assert activity.memory_texture.address_ops > 0
        assert activity.gpu_texture.address_ops == 0

    def test_wrong_design_rejected(self):
        with pytest.raises(ValueError):
            StfimPath(DesignConfig(design=Design.BASELINE), TrafficMeter())


class TestAtfimPath:
    def make_path(self, threshold=0.01 * math.pi, **overrides):
        traffic = TrafficMeter()
        config = DesignConfig(
            design=Design.A_TFIM, angle_threshold=threshold, **overrides
        )
        return AtfimPath(config, traffic), traffic

    def test_cold_miss_offloads_package(self, scene):
        path, traffic = self.make_path()
        path.serve(0, 0.0, expand(scene))
        assert path.offload_packages == 1
        assert path.parent_cold_misses > 0
        assert traffic.external_texture > 0

    def test_warm_same_angle_reuses_without_offload(self, scene):
        path, traffic = self.make_path()
        expanded = expand(scene, angle=0.4)
        path.serve(0, 0.0, expanded)
        packages_before = path.offload_packages
        path.serve(0, 100.0, expanded)
        assert path.offload_packages == packages_before
        assert path.parent_reuses > 0

    def test_angle_change_forces_recalculation(self, scene):
        path, traffic = self.make_path()
        path.serve(0, 0.0, expand(scene, angle=0.1))
        packages_before = path.offload_packages
        path.serve(0, 100.0, expand(scene, angle=1.2))
        assert path.offload_packages > packages_before
        assert path.parent_recalculations > 0

    def test_looser_threshold_fewer_recalcs(self, scene):
        def recalcs(threshold):
            path, _ = self.make_path(threshold=threshold)
            for index, angle in enumerate(
                [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
            ):
                path.serve(0, index * 100.0, expand(scene, angle=angle))
            return path.parent_recalculations

        assert recalcs(math.pi) <= recalcs(0.01 * math.pi)

    def test_isotropic_parents_skip_angle_check(self, scene):
        path, _ = self.make_path()
        expanded = expand(scene, probes=1, lod=0.0, angle=0.1)
        path.serve(0, 0.0, expanded)
        path.serve(0, 100.0, expand(scene, probes=1, lod=0.0, angle=1.4))
        # Isotropic fetches carry no angle tag: no recalculations.
        assert path.parent_recalculations == 0

    def test_children_fetched_internally(self, scene):
        path, traffic = self.make_path()
        path.serve(0, 0.0, expand(scene, probes=8))
        assert path.child_texels_generated > 0
        assert traffic.internal_total > 0
        assert path.hmc.internal_reads > 0

    def test_consolidation_reduces_child_lines(self, scene):
        on_path, _ = self.make_path(consolidation_enabled=True)
        off_path, _ = self.make_path(consolidation_enabled=False)
        expanded = expand(scene, probes=8, lod=2.0)
        on_path.serve(0, 0.0, expanded)
        off_path.serve(0, 0.0, expanded)
        assert on_path.child_lines_fetched <= off_path.child_lines_fetched

    def test_recalculation_rate(self, scene):
        path, _ = self.make_path()
        assert path.recalculation_rate() == 0.0
        path.serve(0, 0.0, expand(scene, angle=0.1))
        path.serve(0, 100.0, expand(scene, angle=1.2))
        assert 0.0 < path.recalculation_rate() < 1.0

    def test_gpu_side_work_is_parent_sized(self, scene):
        path, _ = self.make_path()
        expanded = expand(scene, probes=8)
        path.serve(0, 0.0, expanded)
        activity = path.activity()
        assert activity.gpu_texture.address_ops == expanded.num_parent_texels
        # Parents sharing a cache line are covered by one fill, so the
        # in-memory expansion covers at most every parent's children.
        assert 0 < activity.memory_texture.address_ops <= (
            expanded.total_child_texels
        )

    def test_wrong_design_rejected(self):
        with pytest.raises(ValueError):
            AtfimPath(DesignConfig(design=Design.BASELINE), TrafficMeter())
