"""Tests for shared path machinery: merge windows and cache hierarchy."""

import math

import pytest

from repro.core.designs import Design, DesignConfig
from repro.core.paths import (
    CacheHierarchy,
    Gddr5Interface,
    HmcExternalInterface,
    ReadMergeWindow,
)
from repro.memory.gddr5 import Gddr5Memory
from repro.memory.hmc import HybridMemoryCube
from repro.memory.packets import PacketSpec
from repro.memory.traffic import TrafficClass, TrafficMeter
from repro.texture.cache import CacheAccessResult


class TestReadMergeWindow:
    def test_miss_then_merge(self):
        window = ReadMergeWindow(capacity=4)
        assert window.lookup(64) is None
        window.insert(64, ready=10.0)
        assert window.lookup(64) == 10.0
        assert window.merged == 1

    def test_lru_eviction(self):
        window = ReadMergeWindow(capacity=2)
        window.insert(0, 1.0)
        window.insert(64, 2.0)
        window.insert(128, 3.0)  # evicts 0
        assert window.lookup(0) is None
        assert window.lookup(64) == 2.0

    def test_lookup_refreshes_lru(self):
        window = ReadMergeWindow(capacity=2)
        window.insert(0, 1.0)
        window.insert(64, 2.0)
        window.lookup(0)
        window.insert(128, 3.0)  # evicts 64, not 0
        assert window.lookup(0) == 1.0
        assert window.lookup(64) is None

    def test_reset(self):
        window = ReadMergeWindow()
        window.insert(0, 1.0)
        window.lookup(0)
        window.reset()
        assert window.lookup(0) is None
        assert window.merged == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReadMergeWindow(capacity=0)


class TestMemoryInterfaces:
    def test_gddr5_interface_accounts_traffic(self):
        traffic = TrafficMeter()
        interface = Gddr5Interface(Gddr5Memory(), PacketSpec(), traffic)
        interface.read_line(0.0, 0)
        assert traffic.external_texture == interface.line_traffic_bytes()
        assert interface.line_traffic_bytes() == 96.0

    def test_hmc_interface_accounts_traffic(self):
        traffic = TrafficMeter()
        interface = HmcExternalInterface(HybridMemoryCube(), PacketSpec(), traffic)
        interface.read_line(0.0, 0)
        assert traffic.external_texture == 96.0


class TestCacheHierarchy:
    def make(self):
        config = DesignConfig(design=Design.BASELINE)
        traffic = TrafficMeter()
        hierarchy = CacheHierarchy(config, traffic)
        memory = Gddr5Interface(Gddr5Memory(), PacketSpec(), traffic)
        return hierarchy, memory, traffic

    def test_miss_goes_to_memory_once(self):
        hierarchy, memory, traffic = self.make()
        hierarchy.lookup(0, 0.0, 0, memory)
        first_bytes = traffic.external_texture
        hierarchy.lookup(0, 0.0, 0, memory)
        assert traffic.external_texture == first_bytes  # L1 hit, no refetch

    def test_l2_serves_other_clusters(self):
        hierarchy, memory, traffic = self.make()
        hierarchy.lookup(0, 0.0, 0, memory)     # cluster 0 fills L1+L2
        bytes_after_fill = traffic.external_texture
        hierarchy.lookup(1, 0.0, 0, memory)     # cluster 1: L1 miss, L2 hit
        assert traffic.external_texture == bytes_after_fill
        stats = hierarchy.stats()
        assert stats.l2_hits >= 1

    def test_probe_classifies_without_timing(self):
        hierarchy, _, _ = self.make()
        assert hierarchy.probe(0, 0) is CacheAccessResult.MISS
        assert hierarchy.probe(0, 0) is CacheAccessResult.HIT

    def test_probe_angle_miss_forces_recalculation(self):
        hierarchy, _, _ = self.make()
        threshold = 0.01 * math.pi
        hierarchy.probe(0, 0, angle=0.1, angle_threshold=threshold)
        result = hierarchy.probe(0, 0, angle=1.0, angle_threshold=threshold)
        assert result is CacheAccessResult.ANGLE_MISS

    def test_reset_for_measurement_keeps_contents(self):
        hierarchy, memory, traffic = self.make()
        hierarchy.lookup(0, 0.0, 0, memory)
        hierarchy.reset_for_measurement()
        stats_before = hierarchy.stats()
        assert stats_before.l1_accesses == 0
        # Contents survived: the next access hits.
        assert hierarchy.probe(0, 0) is CacheAccessResult.HIT
