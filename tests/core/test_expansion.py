"""Tests for request expansion -- and its agreement with the functional
sampler, which ties the cycle model's texel counts to the renderer's."""

import numpy as np
import pytest

from repro.core.expansion import RequestExpander
from repro.render.scene import Scene
from repro.texture.lod import compute_footprint
from repro.texture.requests import TextureRequest
from repro.texture.sampling import TextureSampler
from repro.workloads.textures import ProceduralTextureLibrary


@pytest.fixture(scope="module")
def scene():
    scene = Scene()
    library = ProceduralTextureLibrary()
    scene.add_texture(library.create("checker", 64, seed=1))
    return scene


def make_request(u=20.0, v=20.0, probes=4, lod=1.5):
    minor = 2.0 ** lod
    footprint = compute_footprint(minor * probes, 0.0, 0.0, minor)
    return TextureRequest(
        pixel_x=0, pixel_y=0, texture_id=0, u=u, v=v,
        footprint=footprint, camera_angle=0.4,
    )


class TestExpansion:
    def test_conventional_texel_count(self, scene):
        expander = RequestExpander(scene)
        expanded = expander.expand(make_request(probes=4, lod=1.5))
        # 4 probes x (4 + 4) trilinear taps.
        assert expanded.num_conventional_texels == 32

    def test_parent_count_two_levels(self, scene):
        expander = RequestExpander(scene)
        expanded = expander.expand(make_request(lod=1.5))
        assert expanded.num_parent_texels == 8

    def test_parent_count_single_level(self, scene):
        expander = RequestExpander(scene)
        expanded = expander.expand(make_request(probes=1, lod=0.0))
        assert expanded.num_parent_texels == 4

    def test_children_per_parent_equal_probes(self, scene):
        expander = RequestExpander(scene)
        expanded = expander.expand(make_request(probes=4))
        for parent in expanded.parents:
            assert parent.num_children == 4
        assert expanded.total_child_texels == 32

    def test_unique_child_lines_deduplicated(self, scene):
        expander = RequestExpander(scene)
        expanded = expander.expand(make_request(probes=8))
        raw = sum(len(p.child_line_addresses) for p in expanded.parents)
        assert len(expanded.unique_child_lines) <= raw

    def test_lines_are_aligned(self, scene):
        expander = RequestExpander(scene)
        expanded = expander.expand(make_request())
        for line in expanded.conventional_lines:
            assert line % 64 == 0
        for parent in expanded.parents:
            assert parent.line_address % 64 == 0

    def test_matches_functional_sampler_lines(self, scene):
        """Cross-validation: the architectural expansion touches exactly
        the texels the functional sampler reads."""
        expander = RequestExpander(scene)
        chain = scene.mipmap_chain(0)
        sampler = TextureSampler(chain)
        for probes, lod, u, v in [(1, 0.0, 5.0, 5.0), (4, 1.5, 20.0, 11.0),
                                  (8, 2.3, 40.0, 33.0)]:
            request = make_request(u=u, v=v, probes=probes, lod=lod)
            expanded = expander.expand(request)
            result = sampler.sample(request.footprint, u, v, record=True)
            functional_lines = {
                expander.address_map.texel_line(chain, level, x, y)
                for level, x, y in result.texels
            }
            assert functional_lines == set(expanded.conventional_lines)

    def test_isotropic_expansion_collapses(self, scene):
        expander = RequestExpander(scene)
        request = make_request(probes=8, lod=1.5)
        expanded = expander.expand_isotropic(request)
        # Anisotropy disabled: only the 8 trilinear taps remain.
        assert expanded.num_conventional_texels == 8
        for parent in expanded.parents:
            assert parent.num_children == 1

    def test_isotropic_fewer_texels_than_full(self, scene):
        expander = RequestExpander(scene)
        request = make_request(probes=8)
        full = expander.expand(request)
        isotropic = expander.expand_isotropic(request)
        assert isotropic.num_conventional_texels < full.num_conventional_texels
