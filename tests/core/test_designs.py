"""Tests for the design enum and configuration."""

import math

import pytest

from repro.core.designs import Design, DesignConfig


class TestDesign:
    def test_four_designs(self):
        assert len(list(Design)) == 4

    def test_hmc_usage(self):
        assert not Design.BASELINE.uses_hmc
        assert Design.B_PIM.uses_hmc
        assert Design.S_TFIM.uses_hmc
        assert Design.A_TFIM.uses_hmc

    def test_in_memory_filtering(self):
        assert not Design.BASELINE.filters_in_memory
        assert not Design.B_PIM.filters_in_memory
        assert Design.S_TFIM.filters_in_memory
        assert Design.A_TFIM.filters_in_memory


class TestDesignConfig:
    def test_default_threshold_is_001pi(self):
        config = DesignConfig()
        assert config.angle_threshold == pytest.approx(0.01 * math.pi)

    def test_effective_threshold_scales(self):
        config = DesignConfig(angle_threshold=0.1, angle_threshold_scale=8.0)
        assert config.effective_angle_threshold == pytest.approx(0.8)

    def test_with_design_preserves_rest(self):
        config = DesignConfig(angle_threshold=0.2, mtu_share=2)
        other = config.with_design(Design.A_TFIM)
        assert other.design is Design.A_TFIM
        assert other.angle_threshold == 0.2
        assert other.mtu_share == 2

    def test_with_threshold(self):
        config = DesignConfig(design=Design.A_TFIM)
        other = config.with_threshold(0.5)
        assert other.angle_threshold == 0.5
        assert other.design is Design.A_TFIM

    def test_external_bandwidth_depends_on_design(self):
        baseline = DesignConfig(design=Design.BASELINE)
        pim = DesignConfig(design=Design.B_PIM)
        assert baseline.external_bytes_per_cycle == pytest.approx(128.0)
        assert pim.external_bytes_per_cycle == pytest.approx(320.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignConfig(angle_threshold=-0.1)
        with pytest.raises(ValueError):
            DesignConfig(angle_threshold_scale=0.0)
        with pytest.raises(ValueError):
            DesignConfig(mtu_share=0)
        with pytest.raises(ValueError):
            DesignConfig(mtu_share=32)  # more than clusters
