"""Tests for multi-frame sequence simulation."""

import pytest

from repro.core import Design, simulate_sequence
from repro.workloads import workload_by_name
from repro.workloads.animation import walk_forward


@pytest.fixture(scope="module")
def sequence_setup():
    workload = workload_by_name("riddick-640x480")
    built = workload.build()
    renderer = workload.make_renderer()
    path = walk_forward(3.0)(built.camera)
    cameras = path.cameras(built.camera, 3)
    traces = [renderer.trace_only(built.scene, camera).trace for camera in cameras]
    return workload, built.scene, traces


class TestSimulateSequence:
    def test_frame_count(self, sequence_setup):
        workload, scene, traces = sequence_setup
        result = simulate_sequence(
            scene, traces, workload.design_config(Design.BASELINE)
        )
        assert result.num_frames == 3
        assert result.total_cycles == sum(
            frame.frame_cycles for frame in result.frames
        )

    def test_caches_warm_across_frames(self, sequence_setup):
        """Later frames reuse earlier frames' texels: their texture
        traffic drops relative to the cold first frame."""
        workload, scene, traces = sequence_setup
        # Hold the camera still: frames 2..n should be nearly free.
        still = [traces[0]] * 3
        result = simulate_sequence(
            scene, still, workload.design_config(Design.BASELINE)
        )
        first = result.frames[0].traffic.external_texture
        second = result.frames[1].traffic.external_texture
        assert second < first

    def test_per_frame_traffic_attribution(self, sequence_setup):
        workload, scene, traces = sequence_setup
        result = simulate_sequence(
            scene, traces, workload.design_config(Design.BASELINE)
        )
        total = result.total_external_texture_bytes
        assert total == pytest.approx(
            sum(frame.traffic.external_texture for frame in result.frames)
        )
        assert all(
            frame.traffic.external_texture >= 0 for frame in result.frames
        )

    def test_atfim_beats_baseline_over_sequence(self, sequence_setup):
        workload, scene, traces = sequence_setup
        baseline = simulate_sequence(
            scene, traces, workload.design_config(Design.BASELINE)
        )
        atfim = simulate_sequence(
            scene, traces, workload.design_config(Design.A_TFIM)
        )
        assert atfim.speedup_over(baseline) > 1.0

    def test_camera_motion_causes_angle_recalcs(self, sequence_setup):
        """Section V-C's scenario: the same parent texels revisited from
        new camera angles across frames force recalculation."""
        workload, scene, traces = sequence_setup
        moving = simulate_sequence(
            scene, traces, workload.design_config(Design.A_TFIM)
        )
        # The path accumulates across the last frame only (counters reset
        # between frames), so inspect total offloads via traffic instead:
        # a moving camera must refetch something in later frames.
        later_traffic = sum(
            frame.traffic.external_texture for frame in moving.frames[1:]
        )
        assert later_traffic > 0

    def test_empty_sequence_rejected(self, sequence_setup):
        workload, scene, _ = sequence_setup
        with pytest.raises(ValueError):
            simulate_sequence(scene, [], workload.design_config(Design.BASELINE))

    def test_mean_texture_latency(self, sequence_setup):
        workload, scene, traces = sequence_setup
        result = simulate_sequence(
            scene, traces, workload.design_config(Design.B_PIM)
        )
        assert result.mean_texture_latency > 0
