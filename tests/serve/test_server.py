"""End-to-end job-server tests over real HTTP.

One module-scoped :class:`BackgroundServer` (serial backend, smallest
workload, ephemeral port) serves the lifecycle and routing tests; the
backpressure tests get their own worker-less servers so the queue can be
filled deterministically (``start_worker=False`` -- nothing drains it).
"""

import http.client
import json
import socket
import time

import pytest

from repro.obs.manifest import MANIFEST_SCHEMA, RunManifest
from repro.serve import BackgroundServer, ServeConfig
from repro.serve.app import STATS_SCHEMA

WORKLOAD = "doom3-320x240"

JOB_PAYLOAD = {
    "tenant": "ci",
    "points": [{"workload": WORKLOAD, "design": "S_TFIM"}],
    "backend": "serial",
}


def _request(server, method, path, payload=None):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        decoded = json.loads(response.read().decode())
        return response.status, decoded, dict(response.getheaders())
    finally:
        conn.close()


def _wait_for_terminal(server, job_id, attempts=1200):
    for _ in range(attempts):
        status, payload, _headers = _request(server, "GET", f"/jobs/{job_id}")
        assert status == 200
        if payload["status"] in ("done", "failed"):
            return payload
        time.sleep(0.1)
    raise AssertionError(f"{job_id} never reached a terminal state")


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServeConfig(
        port=0,  # ephemeral: tests never collide on a fixed port
        workloads=[WORKLOAD],
        cache_dir=tmp_path_factory.mktemp("serve-cache"),
        backend="serial",
        max_queue_depth=4,
    )
    with BackgroundServer(config) as handle:
        yield handle


class TestLifecycle:
    def test_submit_runs_to_done_with_manifest(self, server):
        status, accepted, _headers = _request(
            server, "POST", "/jobs", JOB_PAYLOAD
        )
        assert status == 202
        assert accepted["status"] == "queued"
        assert accepted["position"] >= 1
        job_id = accepted["job_id"]
        assert job_id.startswith("job-")

        payload = _wait_for_terminal(server, job_id)
        assert payload["status"] == "done"
        assert payload["error"] is None
        assert payload["tenant"] == "ci"
        assert payload["started_unix"] is not None
        assert payload["finished_unix"] >= payload["started_unix"]

        result = payload["result"]
        assert result["missing"] == []
        assert result["unique_runs"] == 2  # baseline + the S-TFIM point
        (record,) = result["records"]
        assert record["workload"] == WORKLOAD
        assert record["design"] == "S_TFIM"
        assert record["render_speedup"] > 0
        assert record["texture_traffic_ratio"] > 0

        # The embedded manifest is a full, round-trippable audit record
        # whose fan-out block belongs to *this* job.
        manifest = RunManifest.from_dict(result["manifest"])
        assert manifest.as_dict()["schema"] == MANIFEST_SCHEMA
        assert result["manifest"]["command"] == "serve"
        assert result["fanout"]["backend"] == "serial"
        assert result["fanout"]["outcomes"]["failed"] == 0

    def test_job_listing_omits_results(self, server):
        status, listing, _headers = _request(server, "GET", "/jobs")
        assert status == 200
        assert len(listing["jobs"]) >= 1
        for entry in listing["jobs"]:
            assert "result" not in entry
            assert entry["status"] in ("queued", "running", "done", "failed")

    def test_second_identical_submit_is_served_warm(self, server):
        _status, before, _headers = _request(server, "GET", "/stats")
        status, accepted, _headers = _request(
            server, "POST", "/jobs", JOB_PAYLOAD
        )
        assert status == 202
        payload = _wait_for_terminal(server, accepted["job_id"])
        assert payload["status"] == "done"

        _status, after, _headers = _request(server, "GET", "/stats")
        warm_hits = (
            after["cache"]["memo_hits"] - before["cache"]["memo_hits"]
        )
        assert warm_hits >= 2, (
            "an identical resubmission must be served from cache, "
            f"got {warm_hits} new memo hits"
        )
        assert after["jobs_executed"] >= before["jobs_executed"] + 1

    def test_stats_snapshot_shape(self, server):
        status, stats, _headers = _request(server, "GET", "/stats")
        assert status == 200
        assert stats["schema"] == STATS_SCHEMA
        assert stats["uptime_seconds"] >= 0
        assert stats["in_flight"] in (0, 1)
        assert stats["queue"]["max_depth"] == 4
        assert set(stats["jobs"]) == {"queued", "running", "done", "failed"}
        assert stats["cache"]["namespace"], "cache must be namespaced"
        # Fan-out workers store through their own cache handles, so the
        # on-disk entry count (not the parent's store counter) is the
        # artifact-store ground truth.
        assert stats["cache"]["disk_entries"] >= 1
        assert stats["cache"]["disk_bytes"] > 0

    def test_healthz(self, server):
        status, payload, _headers = _request(server, "GET", "/healthz")
        assert status == 200
        assert payload["ok"] is True


class TestRouting:
    def test_unknown_job_is_404(self, server):
        status, payload, _headers = _request(
            server, "GET", "/jobs/job-999999"
        )
        assert status == 404
        assert "no such job" in payload["error"]

    def test_unknown_route_is_404(self, server):
        status, _payload, _headers = _request(server, "GET", "/sweeps")
        assert status == 404

    def test_wrong_method_is_405(self, server):
        status, _payload, _headers = _request(server, "DELETE", "/jobs")
        assert status == 405
        status, _payload, _headers = _request(server, "POST", "/stats")
        assert status == 405

    def test_invalid_json_is_400(self, server):
        conn = http.client.HTTPConnection(
            server.host, server.port, timeout=60
        )
        try:
            conn.request(
                "POST", "/jobs", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read().decode())
        finally:
            conn.close()
        assert response.status == 400
        assert "JSON" in payload["error"]

    def test_schema_violation_is_400_not_queued(self, server):
        bad = {"points": [{"workload": "quake-9999", "design": "S_TFIM"}]}
        status, payload, _headers = _request(server, "POST", "/jobs", bad)
        assert status == 400
        assert "unknown workload" in payload["error"]

    def test_oversized_body_is_413_before_read(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=60
        ) as sock:
            sock.sendall(
                b"POST /jobs HTTP/1.1\r\n"
                b"Content-Length: 2097152\r\n\r\n"
            )
            head = sock.recv(65536)
        assert head.split(b"\r\n", 1)[0] == b"HTTP/1.1 413 Payload Too Large"


class TestBackpressure:
    """``start_worker=False``: nothing drains the queue, so admission
    decisions are a pure function of what the test submitted.
    """

    def test_depth_bound_maps_to_429(self, tmp_path):
        config = ServeConfig(
            port=0, workloads=[WORKLOAD], backend="serial",
            max_queue_depth=1,
        )
        with BackgroundServer(config, start_worker=False) as handle:
            status, first, _headers = _request(
                handle, "POST", "/jobs", JOB_PAYLOAD
            )
            assert status == 202
            assert first["position"] == 1
            status, rejected, headers = _request(
                handle, "POST", "/jobs", JOB_PAYLOAD
            )
            assert status == 429
            assert rejected["reason"] == "queue-full"
            assert headers.get("Retry-After") == "1"
            # The rejected submission allocated no job id.
            _status, listing, _headers = _request(handle, "GET", "/jobs")
            assert len(listing["jobs"]) == 1

    def test_tenant_quota_maps_to_429(self, tmp_path):
        config = ServeConfig(
            port=0, workloads=[WORKLOAD], backend="serial",
            max_queue_depth=8, tenant_quota=1,
        )
        with BackgroundServer(config, start_worker=False) as handle:
            greedy = dict(JOB_PAYLOAD, tenant="team-a")
            status, _payload, _headers = _request(
                handle, "POST", "/jobs", greedy
            )
            assert status == 202
            status, rejected, _headers = _request(
                handle, "POST", "/jobs", greedy
            )
            assert status == 429
            assert rejected["reason"] == "tenant-quota"
            # Another tenant is still admitted.
            other = dict(JOB_PAYLOAD, tenant="team-b")
            status, admitted, _headers = _request(
                handle, "POST", "/jobs", other
            )
            assert status == 202
            assert admitted["position"] == 2
