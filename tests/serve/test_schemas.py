"""Admission-time validation of job submissions."""

import pytest

from repro.core import Design
from repro.serve.schemas import (
    DEFAULT_TENANT,
    JOB_SCHEMA,
    JobRequest,
    SchemaError,
    parse_point,
    point_as_dict,
)

WORKLOAD = "doom3-320x240"


def _payload(**overrides):
    payload = {
        "points": [{"workload": WORKLOAD, "design": "S_TFIM"}],
    }
    payload.update(overrides)
    return payload


class TestParsePoint:
    def test_minimal_point_gets_sweep_defaults(self):
        point = parse_point({"workload": WORKLOAD, "design": "S_TFIM"})
        assert point.workload == WORKLOAD
        assert point.design is Design.S_TFIM
        assert point.memory_backend == "hmc"
        assert point.link_bandwidth_scale == 1.0
        assert point.angle_threshold == pytest.approx(0.0314159)

    def test_design_accepted_by_name_or_value(self):
        by_name = parse_point({"workload": WORKLOAD, "design": "A_TFIM"})
        by_value = parse_point({"workload": WORKLOAD, "design": "a-tfim"})
        assert by_name.design is by_value.design is Design.A_TFIM

    def test_point_as_dict_round_trips(self):
        point = parse_point(
            {
                "workload": WORKLOAD,
                "design": "A_TFIM",
                "angle_threshold": 0.05,
                "memory_backend": "hmc",
                "link_bandwidth_scale": 0.5,
            }
        )
        assert parse_point(point_as_dict(point)) == point

    @pytest.mark.parametrize(
        "mutation, match",
        [
            ({"workload": "quake-9999"}, "unknown workload"),
            ({"design": "T_FIM"}, "unknown design"),
            ({"memory_backend": "optane"}, "unknown backend"),
            ({"angle_threshold": float("nan")}, "finite"),
            ({"angle_threshold": -0.1}, "finite"),
            ({"angle_threshold": "wide"}, "number"),
            ({"link_bandwidth_scale": 0.0}, "positive"),
            ({"angle_treshold": 0.05}, "unknown field"),  # the typo case
        ],
    )
    def test_invalid_fields_are_rejected(self, mutation, match):
        payload = {"workload": WORKLOAD, "design": "S_TFIM"}
        payload.update(mutation)
        with pytest.raises(SchemaError, match=match):
            parse_point(payload)

    def test_non_object_rejected(self):
        with pytest.raises(SchemaError, match="object"):
            parse_point([WORKLOAD, "S_TFIM"], path="points[3]")


class TestJobRequest:
    def test_defaults(self):
        request = JobRequest.from_payload(_payload())
        assert request.tenant == DEFAULT_TENANT
        assert len(request.points) == 1
        assert request.jobs is None
        assert request.backend is None
        assert request.task_timeout is None

    def test_explicit_fields(self):
        request = JobRequest.from_payload(
            _payload(
                schema=JOB_SCHEMA,
                tenant="team-a",
                jobs=2,
                backend="serial",
                task_timeout=30.0,
            )
        )
        assert request.tenant == "team-a"
        assert request.jobs == 2
        assert request.backend == "serial"
        assert request.task_timeout == 30.0

    @pytest.mark.parametrize(
        "payload, match",
        [
            (None, "JSON object"),
            ([], "JSON object"),
            ({"points": []}, "non-empty array"),
            ({"points": "all"}, "non-empty array"),
            (_payload(schema="repro-serve-job/99"), "unsupported schema"),
            (_payload(tenant=""), "tenant"),
            (_payload(tenant=7), "tenant"),
            (_payload(jobs=0), "positive integer"),
            (_payload(jobs=True), "positive integer"),
            (_payload(backend="gpu-farm"), "executor backend"),
            (_payload(task_timeout=0), "positive"),
            (_payload(task_timeout="fast"), "number"),
            (_payload(priority="high"), "unknown request field"),
        ],
    )
    def test_invalid_requests_rejected(self, payload, match):
        with pytest.raises(SchemaError, match=match):
            JobRequest.from_payload(payload)

    def test_max_points_is_enforced(self):
        point = {"workload": WORKLOAD, "design": "S_TFIM"}
        with pytest.raises(SchemaError, match="too many points"):
            JobRequest.from_payload({"points": [point] * 3}, max_points=2)

    def test_point_errors_name_their_index(self):
        payload = _payload()
        payload["points"].append({"workload": "nope", "design": "S_TFIM"})
        with pytest.raises(SchemaError, match=r"points\[1\]"):
            JobRequest.from_payload(payload)

    def test_run_keys_dedupe_shared_baselines(self):
        payload = {
            "points": [
                {"workload": WORKLOAD, "design": "S_TFIM"},
                {"workload": WORKLOAD, "design": "A_TFIM",
                 "angle_threshold": 0.05},
            ]
        }
        request = JobRequest.from_payload(payload)
        keys = request.run_keys()
        assert len(keys) == len(set(keys))
        # Both points share one baseline run: 2 points -> 3 simulations.
        assert len(keys) == 3
        assert keys[0] == request.points[0].baseline_key()

    def test_describe_round_trips_points(self):
        request = JobRequest.from_payload(_payload(tenant="team-b"))
        config = request.describe()
        assert config["schema"] == JOB_SCHEMA
        assert config["tenant"] == "team-b"
        reparsed = JobRequest.from_payload(
            {"points": config["points"], "tenant": config["tenant"]}
        )
        assert reparsed.points == request.points
