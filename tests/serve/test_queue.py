"""Admission queue: FIFO order, depth bound, tenant quotas, accounting."""

import pytest

from repro.serve.queue import AdmissionError, AdmissionQueue


def _offer(queue, item, tenant="anonymous"):
    return queue.offer(lambda: item, tenant)


class TestFifo:
    def test_items_drain_in_admission_order(self):
        queue = AdmissionQueue(max_depth=4)
        for value in ("a", "b", "c"):
            _offer(queue, value)
        assert [queue.take() for _ in range(3)] == ["a", "b", "c"]
        assert queue.take() is None

    def test_positions_are_one_based(self):
        queue = AdmissionQueue(max_depth=4)
        _item, first = _offer(queue, "a")
        _item, second = _offer(queue, "b")
        assert (first, second) == (1, 2)

    def test_factory_result_is_returned(self):
        queue = AdmissionQueue(max_depth=4)
        item, _position = queue.offer(lambda: {"job": 1}, "t")
        assert item == {"job": 1}


class TestDepthBound:
    def test_full_queue_rejects_with_reason(self):
        queue = AdmissionQueue(max_depth=2)
        _offer(queue, "a")
        _offer(queue, "b")
        with pytest.raises(AdmissionError) as excinfo:
            _offer(queue, "c")
        assert excinfo.value.reason == "queue-full"
        assert queue.stats.rejected_depth == 1
        assert queue.depth() == 2

    def test_rejected_submission_never_runs_its_factory(self):
        """Dense identities (job-NNNNNN) depend on this: an id is only
        ever allocated for admitted work.
        """
        queue = AdmissionQueue(max_depth=1)
        _offer(queue, "a")
        calls = []
        with pytest.raises(AdmissionError):
            queue.offer(lambda: calls.append("allocated"), "t")
        assert calls == []

    def test_draining_reopens_admission(self):
        queue = AdmissionQueue(max_depth=1)
        _offer(queue, "a")
        assert queue.take() == "a"
        _item, position = _offer(queue, "b")
        assert position == 1

    def test_max_depth_must_be_positive(self):
        with pytest.raises(ValueError, match="max_depth"):
            AdmissionQueue(max_depth=0)


class TestTenantQuota:
    def test_quota_rejects_only_the_greedy_tenant(self):
        queue = AdmissionQueue(max_depth=8, tenant_quota=2)
        _offer(queue, "a1", tenant="team-a")
        _offer(queue, "a2", tenant="team-a")
        with pytest.raises(AdmissionError) as excinfo:
            _offer(queue, "a3", tenant="team-a")
        assert excinfo.value.reason == "tenant-quota"
        assert queue.stats.rejected_tenant == 1
        # A different tenant still fits inside the global depth bound.
        _item, position = _offer(queue, "b1", tenant="team-b")
        assert position == 3
        assert queue.depth_by_tenant() == {"team-a": 2, "team-b": 1}

    def test_quota_must_be_positive_or_none(self):
        with pytest.raises(ValueError, match="tenant_quota"):
            AdmissionQueue(tenant_quota=0)
        AdmissionQueue(tenant_quota=None)  # explicit None is fine


class TestStats:
    def test_as_dict_snapshot(self):
        queue = AdmissionQueue(max_depth=2, tenant_quota=1)
        _offer(queue, "a", tenant="team-a")
        with pytest.raises(AdmissionError):
            _offer(queue, "a2", tenant="team-a")
        queue.take()
        snapshot = queue.as_dict()
        assert snapshot["depth"] == 0
        assert snapshot["max_depth"] == 2
        assert snapshot["tenant_quota"] == 1
        assert snapshot["admitted"] == 1
        assert snapshot["dequeued"] == 1
        assert snapshot["rejected_tenant"] == 1
        assert snapshot["rejected_depth"] == 0
        assert snapshot["by_tenant"] == {}
