"""Benchmark fixtures.

Each benchmark regenerates one paper table/figure and prints the same
rows the paper reports (the printed table is the artefact; the timing is
a bonus).  A session-scoped runner shares traces between benchmarks; the
benchmarked callables construct their own runners so timings include the
full regeneration cost.

``BENCH_WORKLOADS`` defaults to a representative subset (one workload per
game at its lowest paper resolution, plus one high-resolution point) so
``pytest benchmarks/ --benchmark-only`` completes in minutes; set the
environment variable ``REPRO_BENCH_FULL=1`` to run all ten Table II
workloads.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.workloads import workload_names

BENCH_WORKLOADS = [
    "doom3-640x480",
    "fear-640x480",
    "hl2-640x480",
    "riddick-640x480",
    "wolfenstein-640x480",
    "doom3-1280x1024",
]

if os.environ.get("REPRO_BENCH_FULL"):
    BENCH_WORKLOADS = workload_names()


@pytest.fixture(scope="session")
def bench_runner():
    """Shared pre-warmed runner for assertions outside the timed region."""
    return ExperimentRunner(BENCH_WORKLOADS)


_FIGURES: list = []


def _format_figure(data) -> str:
    lines = [f"=== {data.figure}: {data.title}"]
    if data.paper_reference:
        lines.append(f"    paper: {data.paper_reference}")
    lines.append(data.format_table())
    lines.extend(f"    {note}" for note in data.notes)
    return "\n".join(lines)


def print_figure(data) -> None:
    """Record a regenerated figure for the end-of-session report.

    pytest captures per-test stdout, so figures are also replayed via
    :func:`pytest_terminal_summary` -- the benchmark run's actual
    deliverable is these tables, not the timings.
    """
    text = _format_figure(data)
    print("\n" + text)
    _FIGURES.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _FIGURES:
        return
    terminalreporter.write_sep("=", "regenerated paper tables & figures")
    for text in _FIGURES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
