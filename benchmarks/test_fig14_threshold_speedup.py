"""Fig. 14: A-TFIM rendering speedup vs camera-angle threshold."""

from benchmarks.conftest import print_figure
from repro.experiments import fig14


def test_fig14_threshold_speedup(benchmark, bench_runner):
    data = benchmark.pedantic(
        fig14.run,
        kwargs={"runner": bench_runner},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    # Shape claim (paper: speedup rises monotonically ~1.33x -> ~1.47x).
    means = [data.mean(column) for column in data.columns]
    for tighter, looser in zip(means, means[1:]):
        assert looser >= tighter - 1e-9
    assert means[-1] > 1.2
