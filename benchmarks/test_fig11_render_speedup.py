"""Fig. 11: overall 3D rendering speedup under the four designs."""

from benchmarks.conftest import print_figure
from repro.experiments import fig11


def test_fig11_render_speedup(benchmark, bench_runner):
    data = benchmark.pedantic(
        fig11.run,
        kwargs={"runner": bench_runner},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    # Shape claims (paper: A-TFIM +43% avg / <=+65%; B-PIM ~+27%;
    # S-TFIM ~= B-PIM or worse).
    assert 1.2 < data.mean("a_tfim_001pi") < 1.9
    assert 1.0 < data.mean("b_pim") < data.mean("a_tfim_001pi")
    for row in data.rows:
        assert row.get("s_tfim") <= row.get("b_pim") * 1.05
