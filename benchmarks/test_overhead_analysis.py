"""Section VII-E: design overhead arithmetic."""

import pytest

from benchmarks.conftest import print_figure
from repro.experiments import overhead_analysis


def test_overhead_analysis(benchmark):
    data = benchmark(overhead_analysis.run)
    print_figure(data)
    assert data.row("parent_buffer_kb").get("value") == pytest.approx(1.41, abs=0.01)
    assert data.row("consolidation_kb").get("value") == pytest.approx(0.5, abs=0.01)
    assert data.row("hmc_area_fraction").get("value") == pytest.approx(
        0.0318, abs=0.001
    )
    assert data.row("gpu_area_fraction").get("value") == pytest.approx(
        0.0023, abs=0.0002
    )
