"""Fig. 12: normalized external texture memory traffic per design."""

from benchmarks.conftest import print_figure
from repro.experiments import fig12


def test_fig12_memory_traffic(benchmark, bench_runner):
    data = benchmark.pedantic(
        fig12.run,
        kwargs={"runner": bench_runner},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    # Shape claims (paper: S-TFIM 2.79x avg with bars 2.07-6.37;
    # A-TFIM-001pi near/slightly above baseline; A-TFIM-005pi -28% avg).
    assert 2.0 < data.mean("s_tfim") < 8.0
    assert 0.5 < data.mean("a_tfim_001pi") < 1.5
    assert data.mean("a_tfim_005pi") < data.mean("a_tfim_001pi")
    assert data.mean("a_tfim_005pi") < 1.0
    for row in data.rows:
        assert row.get("b_pim") < row.get("s_tfim")
