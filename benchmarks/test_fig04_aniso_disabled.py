"""Fig. 4: texture filtering speedup/traffic with anisotropic disabled."""

from benchmarks.conftest import print_figure
from repro.experiments import fig04


def test_fig04_aniso_disabled(benchmark, bench_runner):
    data = benchmark.pedantic(
        fig04.run,
        kwargs={"runner": bench_runner},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    # Shape claims: disabling anisotropic filtering speeds up texture
    # filtering (paper: 1.1x avg, <=4.2x) and reduces texture traffic
    # (paper: -34% avg, <=-73%).
    assert data.mean("texture_speedup") > 1.0
    assert data.mean("normalized_traffic") < 0.9
    for row in data.rows:
        assert row.get("normalized_traffic") <= 1.0
