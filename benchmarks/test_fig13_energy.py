"""Fig. 13: normalized energy consumption per design."""

from benchmarks.conftest import print_figure
from repro.experiments import fig13


def test_fig13_energy(benchmark, bench_runner):
    data = benchmark.pedantic(
        fig13.run,
        kwargs={"runner": bench_runner},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    # Shape claims (paper: A-TFIM -22% vs baseline and -8% vs B-PIM;
    # S-TFIM worse than B-PIM; HMC beats GDDR5).
    assert data.mean("a_tfim_001pi") < 1.0
    assert data.mean("a_tfim_001pi") < data.mean("b_pim")
    assert data.mean("b_pim") < 1.0
    for row in data.rows:
        assert row.get("s_tfim") > row.get("b_pim")
