"""Ablation benchmarks beyond the paper's figures (DESIGN.md section 6)."""

from benchmarks.conftest import print_figure
from repro.experiments import ablations

ABLATION_WORKLOADS = ["doom3-640x480", "riddick-640x480"]


def test_ablation_mtu_sharing(benchmark):
    data = benchmark.pedantic(
        ablations.mtu_sharing,
        kwargs={"workload_names": ABLATION_WORKLOADS},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    # Sharing MTUs saves area but must not help performance (contention).
    for row in data.rows:
        assert row.get("share_4") <= row.get("share_1") * 1.05


def test_ablation_consolidation(benchmark):
    data = benchmark.pedantic(
        ablations.consolidation,
        kwargs={"workload_names": ABLATION_WORKLOADS},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    for row in data.rows:
        assert row.get("with_consolidation") >= (
            row.get("without_consolidation") * 0.95
        )


def test_ablation_anisotropy_cap(benchmark):
    data = benchmark.pedantic(
        ablations.anisotropy_cap,
        kwargs={"workload_name": "doom3-640x480", "caps": (2, 4, 8, 16)},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    texels = data.column("texels_per_request")
    for lower, higher in zip(texels, texels[1:]):
        assert higher >= lower


def test_ablation_multi_cube(benchmark):
    data = benchmark.pedantic(
        ablations.multi_cube,
        kwargs={"workload_name": "doom3-640x480", "cube_counts": (1, 2, 4)},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    speedups = data.column("render_speedup")
    # More cubes never hurt (parallel links and vaults).
    assert speedups[-1] >= speedups[0] * 0.95


def test_ablation_compression(benchmark):
    data = benchmark.pedantic(
        ablations.compression,
        kwargs={"workload_name": "doom3-640x480"},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    # Compression cuts the baseline's external texture traffic...
    assert data.row("baseline+bc").get("external_texture_ratio") < 1.0
    # ...and never slows any design down.
    for design in ("baseline", "b-pim", "a-tfim"):
        assert data.row(f"{design}+bc").get("render_speedup") >= (
            data.row(design).get("render_speedup") * 0.98
        )


def test_ablation_internal_bandwidth(benchmark):
    data = benchmark.pedantic(
        ablations.internal_bandwidth,
        kwargs={"workload_name": "doom3-640x480",
                "multipliers": (0.5, 1.0, 2.0)},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    speedups = data.column("a_tfim_texture_speedup")
    # More internal bandwidth never hurts A-TFIM.
    assert speedups[-1] >= speedups[0] * 0.95
