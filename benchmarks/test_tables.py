"""Tables I and II: configuration and workload registry."""

from benchmarks.conftest import _FIGURES
from repro.experiments import tables


def test_table1_configuration(benchmark):
    rows = benchmark(tables.table1_rows)
    text = "=== Table I: simulator configuration\n" + tables.format_table1()
    print("\n" + text)
    _FIGURES.append(text)
    names = {name for name, _ in rows}
    assert "Number of cluster" in names
    assert any("HMC" in name for name in names)


def test_table2_workloads(benchmark):
    rows = benchmark(tables.table2_rows)
    text = "=== Table II: gaming benchmarks\n" + tables.format_table2()
    print("\n" + text)
    _FIGURES.append(text)
    assert len(rows) == 10
    games = {row[0] for row in rows}
    assert games == {"doom3", "fear", "hl2", "riddick", "wolfenstein"}
