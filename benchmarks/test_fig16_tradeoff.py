"""Fig. 16: the averaged performance-quality tradeoff curve."""

from benchmarks.conftest import print_figure
from repro.experiments import fig16

TRADEOFF_WORKLOADS = ["doom3-640x480", "riddick-640x480", "hl2-640x480"]


def test_fig16_tradeoff(benchmark):
    data = benchmark.pedantic(
        fig16.run,
        kwargs={"workload_names": TRADEOFF_WORKLOADS},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    # Shape claims: speedup rises and PSNR falls monotonically across
    # the sweep -- the tradeoff the paper's Fig. 16 plots, with the knee
    # motivating 0.01pi as the default.
    speedups = data.column("speedup")
    psnrs = data.column("psnr")
    for tighter, looser in zip(speedups, speedups[1:]):
        assert looser >= tighter - 1e-9
    # Quality: the strict end is the best and the curve drops toward
    # no-recalculation (per-step wiggle tolerated, see the fig15 bench).
    assert psnrs[0] == max(psnrs)
    assert psnrs[0] - psnrs[-1] > 1.0
    assert speedups[-1] > speedups[0]
