"""Fig. 2: memory bandwidth usage breakdown of baseline 3D rendering."""

from benchmarks.conftest import print_figure
from repro.experiments import fig02


def test_fig02_bandwidth_breakdown(benchmark, bench_runner):
    data = benchmark.pedantic(
        fig02.run,
        kwargs={"runner": bench_runner},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    # Shape claim: texture fetching dominates memory traffic (~60% paper).
    assert data.mean("texture") > 0.40
    for row in data.rows:
        assert row.get("texture") == max(row.values.values())
