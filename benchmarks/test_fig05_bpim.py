"""Fig. 5: B-PIM (HMC as a drop-in GDDR5 replacement) speedups."""

from benchmarks.conftest import print_figure
from repro.experiments import fig05


def test_fig05_bpim(benchmark, bench_runner):
    data = benchmark.pedantic(
        fig05.run,
        kwargs={"runner": bench_runner},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    # Shape claims (paper: render 1.27x avg / <=1.30x; texture 1.07x avg
    # / <=1.69x): B-PIM helps overall more than it helps texture
    # filtering, and never hurts rendering.
    assert 1.05 < data.mean("render_speedup") < 1.6
    assert data.mean("texture_speedup") < data.mean("render_speedup") * 1.3
    for row in data.rows:
        assert row.get("render_speedup") > 1.0
