"""Robustness benchmarks: the conclusions vs the model's fitted constants."""

from benchmarks.conftest import print_figure
from repro.experiments import sensitivity


def test_sensitivity_overlap_factor(benchmark):
    data = benchmark.pedantic(
        sensitivity.overlap_factor,
        kwargs={"workload_name": "doom3-640x480"},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    assert sensitivity.orderings_hold(data)


def test_sensitivity_shader_work(benchmark):
    data = benchmark.pedantic(
        sensitivity.shader_work,
        kwargs={"workload_name": "doom3-640x480"},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    assert sensitivity.orderings_hold(data)
    # Heavier shaders shrink A-TFIM's advantage (Amdahl).
    speedups = data.column("a_tfim")
    assert speedups[-1] <= speedups[0]


def test_sensitivity_latency_hiding(benchmark):
    data = benchmark.pedantic(
        sensitivity.latency_hiding,
        kwargs={"workload_name": "doom3-640x480"},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    assert sensitivity.orderings_hold(data)
