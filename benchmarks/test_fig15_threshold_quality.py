"""Fig. 15: image quality (PSNR) vs camera-angle threshold.

This benchmark shades real pixels (the functional renderer), so it runs
on a reduced workload subset: the paper's quality claims are per-app
monotonicity and the absolute PSNR bands, both visible on the subset.
"""

from benchmarks.conftest import print_figure
from repro.experiments import fig15

QUALITY_WORKLOADS = ["doom3-640x480", "riddick-640x480", "hl2-640x480"]


def test_fig15_threshold_quality(benchmark):
    data = benchmark.pedantic(
        fig15.run,
        kwargs={"workload_names": QUALITY_WORKLOADS},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    # Shape claims (paper: PSNR falls with the threshold; the strict end
    # is the high-quality end and no-recalculation drops visibly).  The
    # per-step trend can wiggle: the reuse policy keeps the *last* writer,
    # and which writer wins is threshold-dependent -- so the robust
    # claims are the endpoints and the strict end's quality band.
    for row in data.rows:
        values = [row.values[column] for column in data.columns]
        assert values[0] > 30.0
        assert values[0] >= values[-1] - 1e-9
        assert values[0] >= max(values) - 1.0  # strict end near the top
    means = [data.mean(column) for column in data.columns]
    assert means[0] == max(means)  # averaged curve peaks at the strict end
    assert means[0] - means[-1] > 2.0  # and drops visibly toward no-recalc
