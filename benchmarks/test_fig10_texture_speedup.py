"""Fig. 10: texture filtering speedup under the four designs."""

from benchmarks.conftest import print_figure
from repro.experiments import fig10


def test_fig10_texture_speedup(benchmark, bench_runner):
    data = benchmark.pedantic(
        fig10.run,
        kwargs={"runner": bench_runner},
        rounds=1,
        iterations=1,
    )
    print_figure(data)
    # Shape claims (paper: A-TFIM 3.97x avg / <=6.4x; S-TFIM and B-PIM
    # marginal): A-TFIM wins clearly, B-PIM is modest, S-TFIM does not
    # beat A-TFIM anywhere.
    assert data.mean("a_tfim_001pi") > 1.5
    assert data.mean("a_tfim_001pi") > data.mean("b_pim")
    for row in data.rows:
        assert row.get("a_tfim_001pi") > row.get("s_tfim")
