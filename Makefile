PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint lint-units lint-determinism lint-vectorize lint-sarif test check rules invariants bench chaos sweep-smoke serve-smoke serve

lint:
	$(PYTHON) -m repro.analysis lint

lint-units:
	$(PYTHON) -m repro.analysis lint --select REP2

lint-determinism:
	$(PYTHON) -m repro.analysis lint --select REP3

lint-vectorize:
	$(PYTHON) -m repro.analysis lint --select REP4

lint-sarif:
	$(PYTHON) -m repro.analysis lint --format sarif --output lint-results.sarif

rules:
	$(PYTHON) -m repro.analysis rules

invariants:
	$(PYTHON) -m repro.analysis invariants

test:
	REPRO_CHECK_INVARIANTS=1 $(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m repro bench --min-speedup 1.0 --frame-min-speedup 1.5

chaos:
	$(PYTHON) -m repro chaos --jobs 2 --manifest CHAOS.manifest.json

# Tiny sampled sweep through each executor backend; fails on
# cross-backend divergence or dropped points (writes BENCH_sweep.json).
sweep-smoke:
	$(PYTHON) -m repro.perf.sweep_smoke

# Boot the job server, run a cold and a warm job over HTTP, verify the
# manifest round-trip, cache warmth and LRU eviction (writes
# SERVE_stats.json).
serve-smoke:
	$(PYTHON) -m repro.perf.serve_smoke

# Long-running simulation service on the fast workload subset.
serve:
	$(PYTHON) -m repro serve --fast

check: lint test
