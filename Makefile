PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint test check rules invariants

lint:
	$(PYTHON) -m repro.analysis lint

rules:
	$(PYTHON) -m repro.analysis rules

invariants:
	$(PYTHON) -m repro.analysis invariants

test:
	REPRO_CHECK_INVARIANTS=1 $(PYTHON) -m pytest -x -q

check: lint test
