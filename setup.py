"""Setup shim.

The canonical metadata lives in pyproject.toml; this file exists so that
editable installs work in offline environments whose setuptools lacks
the `wheel` package required by PEP 660 editable wheels (pip falls back
to `setup.py develop` with --no-use-pep517, and some pip versions probe
for this file automatically).
"""

from setuptools import setup

setup()
