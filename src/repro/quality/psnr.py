"""Peak Signal-to-Noise Ratio.

PSNR is the paper's rendering-quality metric (section VII-D): frames
rendered by A-TFIM are compared against the baseline's output, with a
value of 99 dB assigned when the two images are identical, and the paper
notes that above ~70 dB the difference is imperceptible.
"""

from __future__ import annotations

import math

import numpy as np

PSNR_IDENTICAL_CAP = 99.0
"""Value reported for bit-identical images, following the paper."""

IMPERCEPTIBLE_PSNR = 70.0
"""Above this, "users can hardly perceive the difference" (section VII-D)."""


def mse(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Mean squared error between two images with values in [0, 1]."""
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {candidate.shape}"
        )
    if reference.size == 0:
        raise ValueError("empty images")
    difference = reference - candidate
    return float(np.mean(difference * difference))


def psnr(reference: np.ndarray, candidate: np.ndarray, peak: float = 1.0) -> float:
    """PSNR in dB, capped at :data:`PSNR_IDENTICAL_CAP` for identical input."""
    if peak <= 0:
        raise ValueError("peak must be positive")
    error = mse(reference, candidate)
    if error == 0.0:
        return PSNR_IDENTICAL_CAP
    value = 10.0 * math.log10(peak * peak / error)
    return min(value, PSNR_IDENTICAL_CAP)
