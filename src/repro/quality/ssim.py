"""Structural Similarity index.

The paper argues PSNR is the more sensitive metric for high-quality
images but cites SSIM as the common alternative; we provide it for
completeness (global SSIM over a uniform window, single scale).
"""

from __future__ import annotations

import numpy as np


def _to_gray(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 3:
        # ITU-R BT.601 luma weights over the first three channels.
        return (
            0.299 * image[..., 0] + 0.587 * image[..., 1] + 0.114 * image[..., 2]
        )
    if image.ndim == 2:
        return image
    raise ValueError("expected a 2D grayscale or 3D color image")


def _box_filter(image: np.ndarray, radius: int) -> np.ndarray:
    """Mean filter via a summed-area table (reflect-free, crop-valid)."""
    size = 2 * radius + 1
    padded = np.pad(image, radius, mode="edge")
    integral = np.cumsum(np.cumsum(padded, axis=0), axis=1)
    integral = np.pad(integral, ((1, 0), (1, 0)))
    height, width = image.shape
    total = (
        integral[size : size + height, size : size + width]
        - integral[:height, size : size + width]
        - integral[size : size + height, :width]
        + integral[:height, :width]
    )
    return total / (size * size)


def ssim(
    reference: np.ndarray,
    candidate: np.ndarray,
    peak: float = 1.0,
    radius: int = 3,
) -> float:
    """Mean SSIM between two images with values in [0, peak]."""
    gray_ref = _to_gray(reference)
    gray_can = _to_gray(candidate)
    if gray_ref.shape != gray_can.shape:
        raise ValueError("shape mismatch")
    if min(gray_ref.shape) < 2 * radius + 1:
        raise ValueError("image smaller than the SSIM window")
    c1 = (0.01 * peak) ** 2
    c2 = (0.03 * peak) ** 2
    mu_x = _box_filter(gray_ref, radius)
    mu_y = _box_filter(gray_can, radius)
    sigma_x = _box_filter(gray_ref * gray_ref, radius) - mu_x * mu_x
    sigma_y = _box_filter(gray_can * gray_can, radius) - mu_y * mu_y
    sigma_xy = _box_filter(gray_ref * gray_can, radius) - mu_x * mu_y
    numerator = (2 * mu_x * mu_y + c1) * (2 * sigma_xy + c2)
    denominator = (mu_x * mu_x + mu_y * mu_y + c1) * (sigma_x + sigma_y + c2)
    return float(np.mean(numerator / denominator))
