"""Image quality metrics: PSNR (the paper's metric) and SSIM."""

from repro.quality.psnr import mse, psnr, PSNR_IDENTICAL_CAP
from repro.quality.ssim import ssim

__all__ = ["mse", "psnr", "ssim", "PSNR_IDENTICAL_CAP"]
