"""Latency records and histogram utilities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class LatencyRecord:
    """One request's timeline through the system.

    The paper measures texture-filtering latency "from the time when a
    shader sends out the texel fetching request to when it receives the
    final texture output" (section VII-A); a :class:`LatencyRecord`
    captures exactly that interval plus the issue time for ordering.
    """

    issue_cycle: float
    complete_cycle: float

    @property
    def latency(self) -> float:
        return self.complete_cycle - self.issue_cycle

    def __post_init__(self) -> None:
        if self.complete_cycle < self.issue_cycle:
            raise ValueError("completion precedes issue")


class LatencyHistogram:
    """Power-of-two bucketed latency histogram with exact aggregates."""

    def __init__(self, name: str, num_buckets: int = 24) -> None:
        self.name = name
        self.buckets: List[int] = [0] * num_buckets
        self.count = 0
        self.total = 0.0
        self.max_latency = 0.0

    def observe(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("negative latency")
        self.count += 1
        self.total += latency
        if latency > self.max_latency:
            self.max_latency = latency
        index = 0
        threshold = 1.0
        while latency >= threshold and index < len(self.buckets) - 1:
            threshold *= 2.0
            index += 1
        self.buckets[index] += 1

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile_bucket_upper_bound(self, fraction: float) -> float:
        """Upper bound (in cycles) of the bucket containing the percentile.

        Histograms are bucketed, so this is a bound rather than an exact
        percentile -- sufficient for tail-latency sanity checks in tests.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        seen = 0
        for index, population in enumerate(self.buckets):
            seen += population
            if seen >= target:
                return float(2 ** index)
        return float(2 ** (len(self.buckets) - 1))


def makespan(records: Sequence[LatencyRecord]) -> float:
    """Latest completion time across a batch of records (0 if empty)."""
    latest = 0.0
    for record in records:
        if record.complete_cycle > latest:
            latest = record.complete_cycle
    return latest
