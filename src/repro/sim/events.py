"""Backwards-compatible re-exports of :mod:`repro.sim.latency`.

The latency records and histogram utilities historically lived here;
they moved to :mod:`repro.sim.latency` when the histogram gained its
O(1) bucket index and unit-tagged signatures.  Import from
``repro.sim.latency`` (or ``repro.sim``) in new code.
"""

from __future__ import annotations

from repro.sim.latency import (
    LatencyHistogram,
    LatencyRecord,
    bucket_index,
    makespan,
)

__all__ = ["LatencyHistogram", "LatencyRecord", "bucket_index", "makespan"]
