"""Counters, accumulators and hierarchical statistic groups."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple, Union


@dataclass
class Counter:
    """A named monotonically increasing event counter."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        # Non-finite amounts must be rejected explicitly: ``nan < 0`` is
        # False, so the sign guard alone would let NaN poison ``value``
        # for every later report.
        if not math.isfinite(amount):
            raise ValueError(f"{self.name}: non-finite amount {amount!r}")
        if amount < 0:
            raise ValueError(f"{self.name}: counters only increase")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


@dataclass
class Accumulator:
    """Running sum / count / min / max over observed samples."""

    name: str
    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def observe(self, sample: float) -> None:
        # NaN slips through ordered comparisons (every one is False): it
        # would leave ``minimum``/``maximum`` at their +/-inf identities
        # while ``count > 0``, so ``flatten()`` would leak ``inf`` into
        # reports; +/-inf samples would put inf in ``total``/``mean``.
        if not math.isfinite(sample):
            raise ValueError(f"{self.name}: non-finite sample {sample!r}")
        self.count += 1
        self.total += sample
        if sample < self.minimum:
            self.minimum = sample
        if sample > self.maximum:
            self.maximum = sample

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @property
    def minimum_or_none(self) -> Optional[float]:
        """The observed minimum, or ``None`` before any sample.

        The raw ``minimum`` field is the +inf identity element until the
        first observation; reports must use this accessor so that empty
        accumulators serialize as ``null`` instead of leaking ``inf``
        into JSON (which json.dumps renders as the non-standard
        ``Infinity``).
        """
        return self.minimum if self.count else None

    @property
    def maximum_or_none(self) -> Optional[float]:
        """The observed maximum, or ``None`` before any sample."""
        return self.maximum if self.count else None

    def as_dict(self) -> Dict[str, Optional[float]]:
        """JSON-safe summary; empty accumulators report null bounds."""
        return {
            "count": float(self.count),
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum_or_none,
            "max": self.maximum_or_none,
        }

    def merge(self, other: "Accumulator") -> None:
        """Fold another accumulator's samples into this one.

        Merging an empty accumulator (in either direction) is a no-op on
        the bounds: the +/-inf identity fields never contaminate the
        merged minimum/maximum.
        """
        self.count += other.count
        self.total += other.total
        if other.count:
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")


class StatGroup:
    """A named tree of counters and accumulators.

    Components register their statistics into a group; groups nest, and
    the whole tree can be flattened into dotted-path / value pairs for
    reporting (mirroring how ATTILA-sim dumps its per-box statistics).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._accumulators: Dict[str, Accumulator] = {}
        self._children: Dict[str, "StatGroup"] = {}

    def counter(self, name: str) -> Counter:
        """Get or create a counter local to this group."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def accumulator(self, name: str) -> Accumulator:
        """Get or create an accumulator local to this group."""
        if name not in self._accumulators:
            self._accumulators[name] = Accumulator(name)
        return self._accumulators[name]

    def child(self, name: str) -> "StatGroup":
        """Get or create a nested group."""
        if name not in self._children:
            self._children[name] = StatGroup(name)
        return self._children[name]

    def adopt(self, group: "StatGroup") -> "StatGroup":
        """Attach an existing group as a child under its own name.

        Snapshot builders (:mod:`repro.obs.snapshot`) assemble trees
        from groups produced by different components; ``adopt`` grafts
        them without copying, replacing any same-named child.
        """
        self._children[group.name] = group
        return group

    def flatten(self, prefix: str = "") -> Iterator[Tuple[str, float]]:
        """Yield ``(dotted.path, value)`` pairs for the whole subtree.

        Accumulators contribute their mean under ``<name>.mean`` plus the
        sample count under ``<name>.count``; non-empty accumulators also
        contribute ``<name>.min`` / ``<name>.max`` (empty ones omit them
        rather than emitting the +/-inf identity values).
        """
        base = f"{prefix}{self.name}"
        for counter in self._counters.values():
            yield f"{base}.{counter.name}", counter.value
        for acc in self._accumulators.values():
            yield f"{base}.{acc.name}.mean", acc.mean
            yield f"{base}.{acc.name}.count", float(acc.count)
            if acc.count:
                yield f"{base}.{acc.name}.min", acc.minimum
                yield f"{base}.{acc.name}.max", acc.maximum
        for child in self._children.values():
            yield from child.flatten(prefix=f"{base}.")

    def as_dict(self) -> Dict[str, float]:
        return dict(self.flatten())

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for acc in self._accumulators.values():
            acc.reset()
        for child in self._children.values():
            child.reset()
