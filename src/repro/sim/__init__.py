"""Cycle-approximate simulation substrate.

This subpackage provides the discrete-event, resource-occupancy machinery
that every performance model in :mod:`repro` is built on:

* :mod:`repro.sim.clock` -- simulation clock and frequency-domain helpers.
* :mod:`repro.sim.resources` -- shared resources modelled as rolling
  next-free-cycle servers (bandwidth servers, pipelined throughput units,
  bounded request queues with backpressure).
* :mod:`repro.sim.stats` -- counters, accumulators and hierarchical stat
  groups used for reporting.
* :mod:`repro.sim.latency` -- latency records and histogram utilities
  (re-exported by :mod:`repro.sim.events` for backwards compatibility).

The central modelling idea (documented in DESIGN.md section 5) is that a
request's completion time on a contended resource is::

    start  = max(arrival, resource.next_free)
    finish = start + size / rate
    ready  = finish + latency

which captures bandwidth saturation, queueing delay and pipe latency
without per-cycle ticking.
"""

from repro.sim.clock import SimClock
from repro.sim.resources import (
    BandwidthServer,
    RequestQueue,
    ResourceBusyError,
    ThroughputUnit,
)
from repro.sim.stats import Accumulator, Counter, StatGroup
from repro.sim.latency import LatencyHistogram, LatencyRecord

__all__ = [
    "SimClock",
    "BandwidthServer",
    "ThroughputUnit",
    "RequestQueue",
    "ResourceBusyError",
    "Counter",
    "Accumulator",
    "StatGroup",
    "LatencyRecord",
    "LatencyHistogram",
]
