"""Latency records and histogram utilities.

All quantities here are GPU cycles (:data:`repro.units.Cycles`); the
histogram buckets are powers of two of a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.units import Cycles


@dataclass(frozen=True)
class LatencyRecord:
    """One request's timeline through the system.

    The paper measures texture-filtering latency "from the time when a
    shader sends out the texel fetching request to when it receives the
    final texture output" (section VII-A); a :class:`LatencyRecord`
    captures exactly that interval plus the issue time for ordering.
    """

    issue_cycle: Cycles
    complete_cycle: Cycles

    @property
    def latency(self) -> Cycles:
        return Cycles(self.complete_cycle - self.issue_cycle)

    def __post_init__(self) -> None:
        if self.complete_cycle < self.issue_cycle:
            raise ValueError("completion precedes issue")


def bucket_index(latency: Cycles, num_buckets: int) -> int:
    """The power-of-two bucket holding ``latency``, in O(1).

    Bucket 0 holds ``[0, 1)``, bucket ``k`` holds ``[2**(k-1), 2**k)``,
    and the last bucket absorbs everything beyond the range.  For a
    non-negative float, ``int(latency).bit_length()`` is exactly the
    index the old linear threshold scan produced: truncation maps
    ``[2**k, 2**(k+1))`` onto integers with bit length ``k + 1``, and
    sub-cycle latencies truncate to 0 with bit length 0.
    """
    return min(int(latency).bit_length(), num_buckets - 1)


class LatencyHistogram:
    """Power-of-two bucketed latency histogram with exact aggregates."""

    total: Cycles
    max_latency: Cycles

    def __init__(self, name: str, num_buckets: int = 24) -> None:
        self.name = name
        self.buckets: List[int] = [0] * num_buckets
        self.count = 0
        self.total = Cycles(0.0)
        self.max_latency = Cycles(0.0)

    def observe(self, latency: Cycles) -> None:
        if latency < 0:
            raise ValueError("negative latency")
        self.count += 1
        self.total += latency
        if latency > self.max_latency:
            self.max_latency = latency
        self.buckets[bucket_index(latency, len(self.buckets))] += 1

    def observe_batch(self, latencies: np.ndarray) -> None:
        """Record a batch of latencies, bit-identical to observing each.

        The aggregates replicate :meth:`observe`'s sequential updates
        exactly:

        * ``total``: ``np.cumsum`` is a strict left fold (unlike
          ``np.add.reduce``, which sums pairwise), so the cumulative sum
          of ``[total, l0, l1, ...]`` ends on exactly the value the
          sequential ``total += l`` loop produces.
        * ``max``: float max is order-independent.
        * buckets: for an integer-valued non-negative float ``x``,
          ``np.frexp(x)[1]`` equals ``int(x).bit_length()`` exactly
          (both count the position of the leading bit), so the batched
          bucketing reproduces :func:`bucket_index` lane for lane.
        """
        latencies = np.asarray(latencies, dtype=np.float64)
        if latencies.size == 0:
            return
        if bool(np.any(latencies < 0)):
            raise ValueError("negative latency")
        self.count += int(latencies.size)
        self.total = Cycles(
            float(np.cumsum(np.concatenate(([self.total], latencies)))[-1])  # repro: noqa(REP404) -- np.cumsum is a strict sequential accumulation (no pairwise tree, unlike np.sum); prepending the running total makes this exactly the oracle's ordered left fold, bit for bit
        )
        batch_max = float(np.max(latencies))
        if batch_max > self.max_latency:
            self.max_latency = Cycles(batch_max)
        truncated = latencies.astype(np.int64)
        exponents = np.where(
            truncated > 0, np.frexp(truncated.astype(np.float64))[1], 0
        )
        indices = np.minimum(exponents, len(self.buckets) - 1)
        counts = np.bincount(indices, minlength=len(self.buckets))
        for index, population in enumerate(counts):
            if population:
                self.buckets[index] += int(population)

    @property
    def mean(self) -> Cycles:
        if self.count == 0:
            return Cycles(0.0)
        return Cycles(self.total / self.count)

    def percentile_bucket_upper_bound(self, fraction: float) -> Cycles:
        """Upper bound (in cycles) of the bucket containing the percentile.

        Histograms are bucketed, so this is a bound rather than an exact
        percentile -- sufficient for tail-latency sanity checks in tests.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.count == 0:
            return Cycles(0.0)
        target = fraction * self.count
        seen = 0
        for index, population in enumerate(self.buckets):
            seen += population
            if seen >= target:
                return Cycles(float(2 ** index))
        return Cycles(float(2 ** (len(self.buckets) - 1)))


def makespan(records: Sequence[LatencyRecord]) -> Cycles:
    """Latest completion time across a batch of records (0 if empty)."""
    latest = 0.0
    for record in records:
        if record.complete_cycle > latest:
            latest = record.complete_cycle
    return Cycles(latest)
