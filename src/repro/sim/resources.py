"""Shared-resource occupancy models.

Every contended hardware structure in the simulator -- a memory channel, an
HMC serial link, a vault, a texture-unit pipeline stage -- is modelled as a
server with a rolling *next-free-cycle* pointer.  A request arriving at
cycle ``t`` with size ``s`` on a server of rate ``r`` completes its
occupancy at ``max(t, next_free) + s / r`` and its data is *ready* one
fixed latency later.  This is the standard "resource occupancy" shortcut
used by architecture-lite simulators: it reproduces bandwidth saturation
and queueing delay exactly for FIFO servers, while being orders of
magnitude faster than per-cycle ticking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.units import Bytes, BytesPerCycle, Cycles, Ops, OpsPerCycle


class ResourceBusyError(RuntimeError):
    """Raised when a bounded queue rejects a request (backpressure)."""


@dataclass
class BandwidthServer:
    """A FIFO resource limited by a transfer rate and a fixed latency.

    Parameters
    ----------
    name:
        Human-readable identifier, used in stats output.
    bytes_per_cycle:
        Sustained transfer rate.  For a 128 GB/s GDDR5 interface on a
        1 GHz GPU clock this is 128.0.
    latency:
        Fixed pipe latency added after the occupancy interval (e.g. DRAM
        access latency, SerDes latency).
    """

    name: str
    bytes_per_cycle: BytesPerCycle
    latency: Cycles = Cycles(0.0)
    _next_free: Cycles = field(default=Cycles(0.0), repr=False)
    total_bytes: Bytes = field(default=Bytes(0.0), repr=False)
    total_requests: int = field(default=0, repr=False)
    busy_cycles: Cycles = field(default=Cycles(0.0), repr=False)

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise ValueError(f"{self.name}: rate must be positive")
        if self.latency < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")

    def access(self, arrival: Cycles, nbytes: Bytes) -> Cycles:
        """Serve ``nbytes`` arriving at ``arrival``; return ready time.

        The ready time includes the fixed latency.  Zero-byte accesses are
        legal and only pay the latency (useful for pure-control messages).
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        start = max(arrival, self._next_free)
        occupancy = nbytes / self.bytes_per_cycle
        self._next_free = Cycles(start + occupancy)
        self.total_bytes = Bytes(self.total_bytes + nbytes)
        self.total_requests += 1
        self.busy_cycles = Cycles(self.busy_cycles + occupancy)
        return Cycles(self._next_free + self.latency)

    def peek_ready(self, arrival: Cycles, nbytes: Bytes) -> Cycles:
        """Compute the ready time *without* consuming the resource."""
        start = max(arrival, self._next_free)
        return Cycles(start + nbytes / self.bytes_per_cycle + self.latency)

    @property
    def next_free(self) -> Cycles:
        return self._next_free

    def utilization(self, elapsed: Cycles) -> float:
        """Fraction of ``elapsed`` cycles this server was transferring."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)

    def reset(self) -> None:
        self._next_free = Cycles(0.0)
        self.total_bytes = Bytes(0.0)
        self.total_requests = 0
        self.busy_cycles = Cycles(0.0)


@dataclass
class ThroughputUnit:
    """A pipelined functional unit with an issue rate and a pipe depth.

    Models units like the texture filtering ALU array: a new operation can
    issue every ``1 / ops_per_cycle`` cycles, and a given operation's
    result is available ``pipeline_depth`` cycles after issue.
    """

    name: str
    ops_per_cycle: OpsPerCycle
    pipeline_depth: Cycles = Cycles(1.0)
    _next_issue: Cycles = field(default=Cycles(0.0), repr=False)
    total_ops: Ops = field(default=Ops(0), repr=False)
    busy_cycles: Cycles = field(default=Cycles(0.0), repr=False)

    def __post_init__(self) -> None:
        if self.ops_per_cycle <= 0:
            raise ValueError(f"{self.name}: ops_per_cycle must be positive")
        if self.pipeline_depth < 0:
            raise ValueError(f"{self.name}: pipeline depth must be non-negative")

    def issue(self, arrival: Cycles, ops: Ops = Ops(1.0)) -> Cycles:
        """Issue ``ops`` back-to-back operations; return completion time."""
        if ops < 0:
            raise ValueError("negative op count")
        start = max(arrival, self._next_issue)
        occupancy = ops / self.ops_per_cycle
        self._next_issue = Cycles(start + occupancy)
        self.total_ops = Ops(self.total_ops + int(ops))
        self.busy_cycles = Cycles(self.busy_cycles + occupancy)
        return Cycles(self._next_issue + self.pipeline_depth)

    @property
    def next_issue(self) -> Cycles:
        return self._next_issue

    def utilization(self, elapsed: Cycles) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)

    def reset(self) -> None:
        self._next_issue = Cycles(0.0)
        self.total_ops = Ops(0)
        self.busy_cycles = Cycles(0.0)


@dataclass
class RequestQueue:
    """A bounded FIFO with stall accounting.

    Used for the S-TFIM texture request queue (paper section IV): when the
    queue is full, the MTU sends a "stall" signal and the shader suspends
    until a "resume" arrives.  In the occupancy model, fullness translates
    into a delayed effective arrival time for the incoming request, and we
    account the delay as stall cycles.
    """

    name: str
    capacity: int
    drain_rate: OpsPerCycle = OpsPerCycle(1.0)
    _occupancy_free_at: Cycles = field(default=Cycles(0.0), repr=False)
    total_enqueued: int = field(default=0, repr=False)
    total_stall_cycles: Cycles = field(default=Cycles(0.0), repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.drain_rate <= 0:
            raise ValueError(f"{self.name}: drain rate must be positive")

    def enqueue(self, arrival: Cycles) -> Cycles:
        """Admit one request; return the cycle at which it is admitted.

        The queue drains ``drain_rate`` entries per cycle, so an entry that
        arrives when the queue holds ``capacity`` in-flight entries is
        admitted only when the oldest entry has drained.  The model keeps a
        single "head would be free at" pointer: the queue is equivalent to
        a server of rate ``drain_rate`` with ``capacity`` buffer slots.
        """
        # The queue holds (free_at - t) * drain_rate entries at time t; a
        # new entry is admitted once at most capacity - 1 remain queued.
        buffered = Ops(float(self.capacity - 1))
        earliest_slot = self._occupancy_free_at - buffered / self.drain_rate
        admitted = max(arrival, earliest_slot)
        stall = admitted - arrival
        self._occupancy_free_at = Cycles(
            max(self._occupancy_free_at, admitted) + Ops(1.0) / self.drain_rate
        )
        self.total_enqueued += 1
        self.total_stall_cycles = Cycles(self.total_stall_cycles + stall)
        return admitted

    def reset(self) -> None:
        self._occupancy_free_at = Cycles(0.0)
        self.total_enqueued = 0
        self.total_stall_cycles = Cycles(0.0)
