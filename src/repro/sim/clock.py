"""Simulation clock and frequency-domain conversion helpers.

All performance models in :mod:`repro` express time in *GPU cycles* (the
host GPU runs at 1 GHz in the paper's Table I, so one cycle is one
nanosecond under the default configuration).  Components that run in a
different clock domain (e.g. the HMC at 1.25 GHz) convert their native
cycle counts into GPU cycles through :class:`ClockDomain`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import BytesPerCycle, Cycles, Gigahertz, GigabytesPerSecond, Seconds


@dataclass
class SimClock:
    """A monotonically advancing cycle counter.

    The clock is deliberately minimal: resource servers own their own
    next-free pointers, so the clock only tracks the frame-global notion
    of "now" and the high-water mark of completion times, which becomes
    the frame's cycle count.
    """

    now: Cycles = Cycles(0.0)
    _high_water: Cycles = Cycles(0.0)

    def advance_to(self, cycle: Cycles) -> None:
        """Move the clock forward to ``cycle``.

        Moving backwards is an error: discrete-event processing must feed
        the clock a non-decreasing sequence of event times.
        """
        if cycle < self.now:
            raise ValueError(
                f"clock cannot move backwards: now={self.now}, requested={cycle}"
            )
        self.now = cycle
        if cycle > self._high_water:
            self._high_water = cycle

    def observe_completion(self, cycle: Cycles) -> None:
        """Record a completion time without advancing ``now``.

        Completion times may lie in the future of the issue clock (the
        whole point of a latency model); the largest one observed is the
        frame's makespan.
        """
        if cycle > self._high_water:
            self._high_water = cycle

    @property
    def elapsed(self) -> Cycles:
        """Total simulated cycles: the high-water completion mark."""
        return self._high_water

    def reset(self) -> None:
        self.now = Cycles(0.0)
        self._high_water = Cycles(0.0)


@dataclass(frozen=True)
class ClockDomain:
    """A named clock domain with a frequency in GHz.

    Provides conversion of native cycles to the reference (GPU) domain.
    """

    name: str
    frequency_ghz: Gigahertz
    reference_ghz: Gigahertz = Gigahertz(1.0)

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.reference_ghz <= 0:
            raise ValueError("reference frequency must be positive")

    def to_reference_cycles(self, native_cycles: Cycles) -> Cycles:
        """Convert cycles of this domain into reference-domain cycles."""
        return Cycles(native_cycles * (self.reference_ghz / self.frequency_ghz))

    def from_reference_cycles(self, reference_cycles: Cycles) -> Cycles:
        """Convert reference-domain cycles into this domain's cycles."""
        return Cycles(reference_cycles * (self.frequency_ghz / self.reference_ghz))

    def seconds(self, native_cycles: Cycles) -> Seconds:
        """Wall-clock seconds represented by ``native_cycles``."""
        return Seconds(native_cycles / (self.frequency_ghz * 1e9))


def bytes_per_cycle(
    bandwidth_gb_per_s: GigabytesPerSecond, frequency_ghz: Gigahertz = Gigahertz(1.0)
) -> BytesPerCycle:
    """Convert a bandwidth in GB/s into bytes per clock cycle.

    The paper quotes bandwidths in GB/s (128 GB/s GDDR5, 320 GB/s HMC
    external, 512 GB/s HMC internal); resource servers work in bytes per
    GPU cycle. At 1 GHz, 128 GB/s is exactly 128 bytes per cycle.
    """
    if bandwidth_gb_per_s < 0:
        raise ValueError("bandwidth must be non-negative")
    if frequency_ghz <= 0:
        raise ValueError("frequency must be positive")
    return BytesPerCycle(bandwidth_gb_per_s / frequency_ghz)
