"""Command-line front end: ``python -m repro.analysis`` / ``repro-lint``.

Subcommands:

* ``lint [paths...]`` -- run the custom AST rules over the given files or
  directories (default: ``src``, ``benchmarks`` and ``tests`` under the
  current directory).  Exits 1 when findings exist, so CI can gate on it.
  ``--jobs N`` fans the per-file checks over a process pool;
  ``--baseline FILE`` suppresses findings frozen in a baseline file and
  ``--write-baseline FILE`` (re)freezes the current findings (with
  ``--select``, only the selected families -- others are preserved).
  ``--profile MANIFEST`` ranks findings hottest-first by the measured
  wall-clock share of each finding's enclosing span.
* ``rules`` -- list the rule IDs and what each one enforces.
* ``invariants`` -- list the registered runtime invariants.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import (
    filter_new,
    load_baseline,
    merge_baseline,
    scope_baseline,
    write_baseline,
)
from repro.analysis.linter import lint_paths
from repro.analysis.rules import describe_rules, rule_catalog
from repro.analysis.sarif import findings_to_sarif

DEFAULT_LINT_TARGETS = ("src", "benchmarks", "tests", "examples")


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(text + "\n", encoding="utf-8")
    else:
        print(text)


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.paths:
        targets = [Path(path) for path in args.paths]
        missing = [str(path) for path in targets if not path.exists()]
        if missing:
            print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
            return 2
    else:
        targets = [
            Path(name) for name in DEFAULT_LINT_TARGETS if Path(name).exists()
        ]
        if not targets:
            print(
                "none of the default lint targets "
                f"({', '.join(DEFAULT_LINT_TARGETS)}) exist here; "
                "run from the repository root or pass paths explicitly",
                file=sys.stderr,
            )
            return 2
    findings = lint_paths(targets, jobs=args.jobs)
    if args.select:
        prefixes = tuple(args.select)
        known = [
            rule_id
            for rule_id, _name, _description in rule_catalog()
            if rule_id.startswith(prefixes)
        ]
        if not known:
            print(
                f"--select {' '.join(args.select)} matches no known rule IDs",
                file=sys.stderr,
            )
            return 2
        findings = [f for f in findings if f.rule_id.startswith(prefixes)]
    if args.write_baseline:
        if args.select:
            # A selected run only observed the selected families; merge
            # so the other families' frozen entries are not clobbered
            # (which would resurrect their findings on the next full run).
            path = merge_baseline(findings, args.write_baseline,
                                  tuple(args.select))
            print(f"froze {len(findings)} finding(s) into {path} "
                  f"(families {', '.join(args.select)}; others preserved)")
        else:
            path = write_baseline(findings, args.write_baseline)
            print(f"froze {len(findings)} finding(s) into {path}")
        return 0
    if args.baseline:
        if not Path(args.baseline).exists():
            print(f"no such baseline file: {args.baseline}", file=sys.stderr)
            return 2
        baseline = load_baseline(args.baseline)
        if args.select:
            baseline = scope_baseline(baseline, tuple(args.select))
        known_count = len(findings)
        findings = filter_new(findings, baseline)
        suppressed = known_count - len(findings)
        if suppressed:
            print(
                f"baseline {args.baseline}: {suppressed} known finding(s) "
                "suppressed",
                file=sys.stderr,
            )
    if args.profile:
        if not Path(args.profile).exists():
            print(f"no such manifest file: {args.profile}", file=sys.stderr)
            return 2
        from repro.analysis.hotspots import SpanProfile, rank_findings

        findings = rank_findings(findings, SpanProfile.from_manifest(args.profile))
    if args.format == "json":
        _emit(
            json.dumps([finding.as_dict() for finding in findings], indent=2),
            args.output,
        )
    elif args.format == "sarif":
        _emit(
            json.dumps(findings_to_sarif(findings, rule_catalog()), indent=2),
            args.output,
        )
    else:
        if args.profile:
            from repro.analysis.hotspots import format_ranked

            lines = [format_ranked(finding) for finding in findings]
        else:
            lines = [finding.format() for finding in findings]
        scanned = ", ".join(str(target) for target in targets)
        if findings:
            lines.append(f"{len(findings)} finding(s) in {scanned}")
        else:
            lines.append(f"clean: no findings in {scanned}")
        _emit("\n".join(lines), args.output)
    return 1 if findings else 0


def _cmd_rules(_args: argparse.Namespace) -> int:
    print(describe_rules())
    return 0


def _cmd_invariants(_args: argparse.Namespace) -> int:
    from repro.analysis.invariants import ENV_FLAG, invariant_names

    for name in invariant_names():
        print(name)
    print(
        f"(enable at runtime with --check-invariants or {ENV_FLAG}=1)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="simulator correctness toolkit: lint rules + invariants",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the custom AST lint rules")
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: src benchmarks "
                           "tests examples)")
    lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text"
    )
    lint.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    lint.add_argument(
        "--select",
        metavar="PREFIX",
        action="append",
        help="only report rule IDs starting with PREFIX "
             "(repeatable; e.g. --select REP2 for the unit rules)",
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fan per-file checks over N pool workers (default: serial)",
    )
    lint.add_argument(
        "--profile",
        metavar="MANIFEST",
        help="rank findings hottest-first by measured wall-clock share, "
             "using the span tree of a repro-run-manifest/1 file",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in FILE; only new ones are "
             "reported (and gate the exit code)",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="freeze the current findings into FILE and exit 0",
    )
    lint.set_defaults(func=_cmd_lint)

    rules = sub.add_parser("rules", help="list lint rule IDs")
    rules.set_defaults(func=_cmd_rules)

    invariants = sub.add_parser("invariants", help="list runtime invariants")
    invariants.set_defaults(func=_cmd_invariants)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer closed early (e.g. `... rules | head`);
        # point stdout at devnull so the interpreter-exit flush does not
        # raise a second BrokenPipeError.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def lint_main() -> int:
    """The ``repro-lint`` console script: straight to the lint command."""
    return main(["lint", *sys.argv[1:]])


if __name__ == "__main__":
    sys.exit(main())
