"""Unit-aware dataflow lint pass: rules REP200-REP207.

Where the REP100-series rules are purely syntactic, this pass *infers a
physical unit* for every name, attribute, parameter, return value and
expression it can, then checks the arithmetic:

* ``REP200`` -- ``+``/``-`` between incompatible units (``bytes + cycles``).
* ``REP201`` -- ordering/equality comparisons (and ``min``/``max``/
  ``math.isclose``) between incompatible units.
* ``REP202`` -- dimensionally meaningless products (``bytes * bytes_per_cycle``).
* ``REP203`` -- dimensionally meaningless quotients (``cycles / bytes``).
* ``REP204`` -- degree/radian confusion: mixing the two in arithmetic,
  passing degrees to ``math.sin``/``cos``/``tan``/``atan2``, or
  double-converting (``math.radians`` of a radians value).
* ``REP205`` -- a *public* quantity (parameter, return, dataclass field)
  in ``sim/``, ``memory/``, ``core/``, ``energy/`` or ``texture/`` whose
  name implies a unit but whose annotation is not a :mod:`repro.units`
  alias.
* ``REP206`` -- a call argument whose unit contradicts the callee's
  declared parameter unit (also covers ``Stats`` counters/histograms
  created with a unit-implying name and fed the wrong quantity).
* ``REP207`` -- a value assigned or returned whose inferred unit
  contradicts the target's declared or name-implied unit.

Inference is deliberately conservative: a finding is emitted only when
*both* sides of an operation have a known unit and the combination is
wrong.  Unknown stays unknown and silent.

The pass is **call-graph aware**: :meth:`UnitDataflowRule.prepare`
harvests every function/method signature, property and annotated field
in the linted fileset into a :class:`ProjectSymbols` table first, so a
``BandwidthServer.access(arrival: Cycles, nbytes: Bytes)`` signature in
``sim/resources.py`` checks call sites in ``memory/hmc.py``.

Seeding comes from :mod:`repro.units`: the alias vocabulary
(``Cycles``, ``Bytes``, ...), the name-heuristic table
(``*_cycles``, ``nbytes``, ``energy_pj``, ``angle_deg``, ...) and the
dimensional algebra (``Cycles * BytesPerCycle -> Bytes``).

Findings use the shared ``# repro: noqa(REP20x)`` escape hatch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.linter import LintContext, LintRule
from repro.units import (
    ANGLE_UNITS,
    SCALAR,
    UNIT_ALIASES,
    U_DEGREES,
    U_RADIANS,
    add_units,
    addable,
    divide_units,
    multiply_units,
    unit_for_name,
)

UNIT_RULE_TABLE: Tuple[Tuple[str, str, str], ...] = (
    ("REP200", "unit-mismatch-arith",
     "no +/- between incompatible units (e.g. bytes + cycles)"),
    ("REP201", "unit-mismatch-compare",
     "no comparisons/min/max/isclose between incompatible units"),
    ("REP202", "dimension-wrong-mul",
     "no products without a meaningful unit (e.g. bytes * bytes_per_cycle)"),
    ("REP203", "dimension-wrong-div",
     "no quotients without a meaningful unit (e.g. cycles / bytes)"),
    ("REP204", "angle-confusion",
     "no degree/radian mixing, trig on degrees, or double conversion"),
    ("REP205", "untagged-quantity",
     "public quantities in sim/memory/core/energy/texture carry repro.units aliases"),
    ("REP206", "call-unit-mismatch",
     "no call arguments contradicting the callee's declared parameter unit"),
    ("REP207", "declared-unit-mismatch",
     "no assigned/returned value contradicting the declared or name-implied unit"),
)

_UNTAGGED_SUBPACKAGES = ("sim", "memory", "core", "energy", "texture")

# Internal sentinel distinguishing "several declarations disagree" from
# "never declared" in the attribute table.
_CONFLICT = "<conflict>"

_STAT_CLASSES = frozenset({"Counter", "Accumulator", "LatencyHistogram"})
_STAT_FACTORIES = frozenset({"counter", "accumulator"})
_STAT_FEED_METHODS = frozenset({"add", "observe"})

_TRIG_EXPECTS_RADIANS = frozenset({"sin", "cos", "tan", "asin", "acos",
                                   "atan", "atan2", "sinh", "cosh", "tanh"})
_TRIG_RETURNS_RADIANS = frozenset({"asin", "acos", "atan", "atan2"})
_UNIT_PRESERVING_BUILTINS = frozenset({"abs", "round", "float", "int"})


# ---------------------------------------------------------------------------
# Annotation parsing.
# ---------------------------------------------------------------------------


def _annotation_unit(node: Optional[ast.expr]) -> Optional[str]:
    """The unit tag named by an annotation expression, if any.

    Understands bare aliases (``Cycles``), dotted aliases
    (``units.Cycles``), string annotations, ``Optional[X]``,
    ``X | None`` and single-alias ``Union``\\ s.
    """
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return UNIT_ALIASES.get(node.id)
    if isinstance(node, ast.Attribute):
        return UNIT_ALIASES.get(node.attr)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval")
        except SyntaxError:
            return None
        return _annotation_unit(parsed.body)
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        if base_name in ("Optional", "Final", "Annotated", "ClassVar"):
            inner = node.slice
            if base_name == "Annotated" and isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_unit(inner)
        if base_name == "Union" and isinstance(node.slice, ast.Tuple):
            units = {_annotation_unit(item) for item in node.slice.elts}
            units.discard(None)
            if len(units) == 1:
                return units.pop()
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        units = {_annotation_unit(node.left), _annotation_unit(node.right)}
        units.discard(None)
        if len(units) == 1:
            return units.pop()
    return None


def _container_value_unit(node: Optional[ast.expr]) -> Optional[str]:
    """The element/value unit of a container annotation, if any.

    ``Dict[K, Bytes]`` / ``Mapping[K, Bytes]`` -> bytes;
    ``List[Cycles]`` / ``Sequence[Cycles]`` / ``Tuple[Cycles, ...]`` ->
    cycles.
    """
    if not isinstance(node, ast.Subscript):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                return None
            return _container_value_unit(parsed.body)
        return None
    base = node.value
    base_name = base.id if isinstance(base, ast.Name) else (
        base.attr if isinstance(base, ast.Attribute) else None
    )
    if base_name in ("Dict", "dict", "Mapping", "MutableMapping", "DefaultDict"):
        if isinstance(node.slice, ast.Tuple) and len(node.slice.elts) == 2:
            return _annotation_unit(node.slice.elts[1])
        return None
    if base_name in ("List", "list", "Sequence", "Iterable", "Iterator",
                     "Set", "FrozenSet", "frozenset", "set", "Tuple", "tuple"):
        inner = node.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            inner = inner.elts[0]
        return _annotation_unit(inner)
    return None


# ---------------------------------------------------------------------------
# Project-wide symbol harvesting (the call-graph-aware part).
# ---------------------------------------------------------------------------


@dataclass
class _Signature:
    """Merged unit signature of all same-named functions in the fileset."""

    positional: List[Optional[str]] = field(default_factory=list)
    by_name: Dict[str, Optional[str]] = field(default_factory=dict)
    returns: Optional[str] = None
    seen: int = 0


class ProjectSymbols:
    """Unit knowledge shared across the whole linted fileset.

    Same-named functions/methods and same-named attributes from
    different classes are merged conservatively: any disagreement drops
    the conflicting entry to *unknown* rather than guessing.
    """

    def __init__(self) -> None:
        self.functions: Dict[str, _Signature] = {}
        self.attributes: Dict[str, str] = {}
        self.attribute_containers: Dict[str, str] = {}
        self.constants: Dict[str, str] = {}
        self.constant_containers: Dict[str, str] = {}

    # -- harvesting ---------------------------------------------------------

    def harvest_module(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(stmt, method=False)
            elif isinstance(stmt, ast.ClassDef):
                self._harvest_class(stmt)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                self._add_constant(stmt.target.id, stmt.annotation)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._add_constant(target.id, None)

    def _harvest_class(self, cls: ast.ClassDef) -> None:
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                decorators = {
                    d.id if isinstance(d, ast.Name) else
                    (d.attr if isinstance(d, ast.Attribute) else None)
                    for d in stmt.decorator_list
                }
                if "property" in decorators or "cached_property" in decorators:
                    unit = _annotation_unit(stmt.returns) or unit_for_name(stmt.name)
                    self._add_attribute(stmt.name, unit)
                else:
                    self._add_function(stmt, method=True)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                unit = _annotation_unit(stmt.annotation) or unit_for_name(name)
                self._add_attribute(name, unit)
                value_unit = _container_value_unit(stmt.annotation)
                if value_unit is not None:
                    existing = self.attribute_containers.get(name)
                    if existing is None:
                        self.attribute_containers[name] = value_unit
                    elif existing != value_unit:
                        self.attribute_containers[name] = _CONFLICT

    def _add_function(self, node: ast.FunctionDef, method: bool) -> None:
        params: List[Tuple[str, Optional[str]]] = []
        args = node.args
        ordered = [*args.posonlyargs, *args.args]
        if method and ordered and ordered[0].arg in ("self", "cls"):
            ordered = ordered[1:]
        for arg in ordered:
            unit = _annotation_unit(arg.annotation) or unit_for_name(arg.arg)
            params.append((arg.arg, unit))
        kwonly = [
            (arg.arg, _annotation_unit(arg.annotation) or unit_for_name(arg.arg))
            for arg in args.kwonlyargs
        ]
        returns = _annotation_unit(node.returns) or unit_for_name(node.name)

        sig = self.functions.setdefault(node.name, _Signature())
        positional_units = [unit for _, unit in params]
        if sig.seen == 0:
            sig.positional = positional_units
            sig.returns = returns
        else:
            merged: List[Optional[str]] = []
            for index in range(max(len(sig.positional), len(positional_units))):
                left = sig.positional[index] if index < len(sig.positional) else None
                right = (
                    positional_units[index]
                    if index < len(positional_units) else None
                )
                merged.append(left if left == right else None)
            sig.positional = merged
            if sig.returns != returns:
                sig.returns = None
        for name, unit in [*params, *kwonly]:
            if name not in sig.by_name:
                sig.by_name[name] = unit
            elif sig.by_name[name] != unit:
                sig.by_name[name] = None
        sig.seen += 1

    def _add_attribute(self, name: str, unit: Optional[str]) -> None:
        if unit is None:
            return  # no opinion: neither confirms nor conflicts
        existing = self.attributes.get(name)
        if existing is None:
            self.attributes[name] = unit
        elif existing != unit:
            self.attributes[name] = _CONFLICT

    def _add_constant(self, name: str, annotation: Optional[ast.expr]) -> None:
        unit = _annotation_unit(annotation) or unit_for_name(name)
        if unit is None:
            return
        existing = self.constants.get(name)
        if existing is None:
            self.constants[name] = unit
        elif existing != unit:
            self.constants[name] = _CONFLICT
        value_unit = _container_value_unit(annotation)
        if value_unit is not None:
            self.constant_containers.setdefault(name, value_unit)

    # -- lookups ------------------------------------------------------------

    def attribute_unit(self, name: str) -> Optional[str]:
        unit = self.attributes.get(name)
        if unit == _CONFLICT:
            return None
        if unit is not None:
            return unit
        return unit_for_name(name)

    def attribute_container_unit(self, name: str) -> Optional[str]:
        unit = self.attribute_containers.get(name)
        return None if unit == _CONFLICT else unit

    def constant_unit(self, name: str) -> Optional[str]:
        unit = self.constants.get(name)
        return None if unit == _CONFLICT else unit

    def signature(self, name: str) -> Optional[_Signature]:
        return self.functions.get(name)


def harvest_symbols(sources: Iterable[Tuple[str, str]]) -> ProjectSymbols:
    """Build the shared symbol table from ``(path, source)`` pairs."""
    symbols = ProjectSymbols()
    for path, text in sources:
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError:
            continue  # REP100 reports it; nothing to harvest
        symbols.harvest_module(tree)
    return symbols


# ---------------------------------------------------------------------------
# The dataflow checker.
# ---------------------------------------------------------------------------


class _FunctionChecker:
    """Intraprocedural unit inference over one function (or module) body."""

    def __init__(
        self,
        rule: "UnitDataflowRule",
        ctx: LintContext,
        symbols: ProjectSymbols,
        env: Dict[str, Optional[str]],
        return_unit: Optional[str] = None,
        return_label: str = "",
    ) -> None:
        self.rule = rule
        self.ctx = ctx
        self.symbols = symbols
        self.env = env
        self.stat_env: Dict[str, str] = {}
        self.return_unit = return_unit
        self.return_label = return_label

    # -- reporting ----------------------------------------------------------

    def _report(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.rule.report_as(rule_id, self.ctx, node, message)

    def _report_pair(
        self, node: ast.AST, left: str, right: str, context: str,
        rule_id: str,
    ) -> None:
        """Report a unit clash, upgrading degree/radian pairs to REP204."""
        if {left, right} == ANGLE_UNITS:
            self._report(
                "REP204", node,
                f"degree/radian confusion in {context}: "
                f"'{left}' vs '{right}'",
            )
        else:
            self._report(
                rule_id, node,
                f"incompatible units in {context}: '{left}' vs '{right}'",
            )

    # -- name/unit resolution ----------------------------------------------

    def _name_unit(self, name: str) -> Optional[str]:
        if name in self.env:
            return self.env[name]
        const = self.symbols.constant_unit(name)
        if const is not None:
            return const
        return unit_for_name(name)

    def _target_declared_unit(self, target: ast.expr) -> Optional[str]:
        """The unit a store target is *declared or named* to hold."""
        if isinstance(target, ast.Name):
            if target.id in self.env and self.env[target.id] is not None:
                return self.env[target.id]
            return unit_for_name(target.id)
        if isinstance(target, ast.Attribute):
            return self.symbols.attribute_unit(target.attr)
        return None

    # -- statement dispatch -------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._visit_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            self._visit_ann_assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._visit_aug_assign(stmt)
        elif isinstance(stmt, ast.Return):
            self._visit_return(stmt)
        elif isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
        elif isinstance(stmt, ast.If):
            self.infer(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.infer(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.For):
            element = self._element_unit(stmt.iter)
            self.infer(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = (
                    element if element is not None
                    else unit_for_name(stmt.target.id)
                )
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.infer(item.context_expr)
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
        elif isinstance(stmt, ast.Assert):
            self.infer(stmt.test)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.infer(stmt.exc)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.rule.check_function(stmt, self.ctx, self.symbols, method=False)
        elif isinstance(stmt, ast.ClassDef):
            self.rule.check_class(stmt, self.ctx, self.symbols)

    def _visit_assign(self, stmt: ast.Assign) -> None:
        value_unit = self.infer(stmt.value)
        stat_unit = self._stat_instance_unit(stmt.value)
        for target in stmt.targets:
            self._bind_target(target, stmt.value, value_unit, stat_unit)

    def _bind_target(
        self,
        target: ast.expr,
        value: Optional[ast.expr],
        value_unit: Optional[str],
        stat_unit: Optional[str] = None,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
                target.elts
            ):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    self._bind_target(sub_target, sub_value, self.infer(sub_value))
            else:
                for sub_target in target.elts:
                    self._bind_target(sub_target, None, None)
            return
        declared = self._target_declared_unit(target)
        if (
            declared is not None
            and value_unit is not None
            and declared != SCALAR
            and value_unit != SCALAR
            and not addable(declared, value_unit)
        ):
            label = (
                target.id if isinstance(target, ast.Name)
                else getattr(target, "attr", "?")
            )
            self._report_pair(
                target, declared, value_unit,
                f"assignment to '{label}'", "REP207",
            )
        if isinstance(target, ast.Name):
            if stat_unit is not None:
                self.stat_env[target.id] = stat_unit
            resolved = value_unit if value_unit not in (None, SCALAR) else None
            if resolved is None:
                resolved = declared
            self.env[target.id] = resolved

    def _visit_ann_assign(self, stmt: ast.AnnAssign) -> None:
        annotated = _annotation_unit(stmt.annotation)
        value_unit = self.infer(stmt.value) if stmt.value is not None else None
        if isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            implied = unit_for_name(name)
            if (
                annotated is not None
                and implied is not None
                and implied != SCALAR
                and not addable(annotated, implied)
            ):
                self._report_pair(
                    stmt.target, annotated, implied,
                    f"annotation of '{name}' vs its name", "REP207",
                )
            self.env[name] = annotated or (
                value_unit if value_unit not in (None, SCALAR) else implied
            )
        declared = annotated or self._target_declared_unit(stmt.target)
        if (
            declared is not None
            and value_unit is not None
            and declared != SCALAR
            and value_unit != SCALAR
            and not addable(declared, value_unit)
        ):
            self._report_pair(
                stmt.target, declared, value_unit, "annotated assignment",
                "REP207",
            )

    def _visit_aug_assign(self, stmt: ast.AugAssign) -> None:
        target_unit = (
            self.infer(stmt.target, report=False)
            or self._target_declared_unit(stmt.target)
        )
        value_unit = self.infer(stmt.value)
        if target_unit is None or value_unit is None:
            return
        if isinstance(stmt.op, (ast.Add, ast.Sub)):
            if not addable(target_unit, value_unit):
                self._report_pair(
                    stmt.target, target_unit, value_unit,
                    "augmented +=/-=", "REP200",
                )
        elif isinstance(stmt.op, ast.Mult):
            if multiply_units(target_unit, value_unit) is None:
                self._report_pair(
                    stmt.target, target_unit, value_unit,
                    "augmented *=", "REP202",
                )
        elif isinstance(stmt.op, (ast.Div, ast.FloorDiv)):
            if divide_units(target_unit, value_unit) is None:
                self._report_pair(
                    stmt.target, target_unit, value_unit,
                    "augmented /=", "REP203",
                )

    def _visit_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            return
        value_unit = self.infer(stmt.value)
        if (
            self.return_unit is not None
            and value_unit not in (None, SCALAR)
            and self.return_unit != SCALAR
            and not addable(self.return_unit, value_unit)
        ):
            self._report_pair(
                stmt.value, self.return_unit, value_unit,
                f"return from {self.return_label}", "REP207",
            )

    # -- expression inference -----------------------------------------------

    def infer(self, node: Optional[ast.expr], report: bool = True) -> Optional[str]:
        """Infer the unit of an expression, reporting clashes en route."""
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return None
            if isinstance(node.value, (int, float)):
                return SCALAR
            return None
        if isinstance(node, ast.Name):
            return self._name_unit(node.id)
        if isinstance(node, ast.Attribute):
            self.infer(node.value, report=report)
            return self.symbols.attribute_unit(node.attr)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node, report)
        if isinstance(node, ast.UnaryOp):
            inner = self.infer(node.operand, report=report)
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return inner
            return None
        if isinstance(node, ast.Compare):
            self._check_compare(node, report)
            return None
        if isinstance(node, ast.Call):
            return self._infer_call(node, report)
        if isinstance(node, ast.IfExp):
            self.infer(node.test, report=report)
            left = self.infer(node.body, report=report)
            right = self.infer(node.orelse, report=report)
            return left if left == right else None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.infer(value, report=report)
            return None
        if isinstance(node, ast.Subscript):
            self.infer(node.slice, report=report)
            return self._container_unit_of(node.value)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for elt in node.elts:
                self.infer(elt, report=report)
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.infer(key, report=report)
            for value in node.values:
                self.infer(value, report=report)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self.infer(node.elt, report=False)
            return None
        if isinstance(node, ast.DictComp):
            self.infer(node.key, report=False)
            self.infer(node.value, report=False)
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.infer(value.value, report=report)
            return None
        if isinstance(node, ast.Starred):
            self.infer(node.value, report=report)
            return None
        return None

    def _infer_binop(self, node: ast.BinOp, report: bool) -> Optional[str]:
        left = self.infer(node.left, report=report)
        right = self.infer(node.right, report=report)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None:
                if not addable(left, right):
                    if report:
                        self._report_pair(
                            node, left, right,
                            "'+'" if isinstance(node.op, ast.Add) else "'-'",
                            "REP200",
                        )
                    return None
                return add_units(left, right)
            # Optimistic: unknown combined with a known *tagged* unit
            # keeps the tag so downstream arithmetic stays checkable;
            # unknown +/- scalar stays unknown (a count minus one is not
            # thereby dimensionless).
            if left not in (None, SCALAR):
                return left
            if right not in (None, SCALAR):
                return right
            return None
        if isinstance(node.op, ast.Mult):
            if left is not None and right is not None:
                product = multiply_units(left, right)
                if product is None and report:
                    self._report_pair(node, left, right, "'*'", "REP202")
                return product
            return None
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if left is not None and right is not None:
                quotient = divide_units(left, right)
                if quotient is None and report:
                    self._report_pair(node, left, right, "'/'", "REP203")
                return quotient
            return None
        if isinstance(node.op, ast.Mod):
            return left
        return None

    def _check_compare(self, node: ast.Compare, report: bool) -> None:
        operands = [node.left, *node.comparators]
        units = [self.infer(operand, report=report) for operand in operands]
        if not report:
            return
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                   ast.Eq, ast.NotEq)):
                continue
            left, right = units[index], units[index + 1]
            if left is None or right is None:
                continue
            if not addable(left, right):
                self._report_pair(node, left, right, "comparison", "REP201")

    # -- call handling ------------------------------------------------------

    def _infer_call(self, node: ast.Call, report: bool) -> Optional[str]:
        func = node.func
        arg_units = [
            self.infer(arg, report=report)
            for arg in node.args
            if not isinstance(arg, ast.Starred)
        ]
        keyword_units = {
            kw.arg: self.infer(kw.value, report=report)
            for kw in node.keywords
            if kw.arg is not None
        }

        # math.* builtins: conversions and trig.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "math"
        ):
            return self._infer_math_call(node, func.attr, arg_units, report)

        # Unit-preserving builtins and aggregate helpers.
        if isinstance(func, ast.Name):
            if func.id in UNIT_ALIASES:
                # Calling an alias (``Cycles(x)``) is an explicit cast:
                # the author asserts the unit, so no check is applied.
                return UNIT_ALIASES[func.id]
            if func.id in _UNIT_PRESERVING_BUILTINS and len(node.args) == 1:
                return arg_units[0] if arg_units else None
            if func.id in ("min", "max") and len(node.args) >= 2:
                known = [unit for unit in arg_units
                         if unit is not None and unit != SCALAR]
                if report:
                    for index in range(1, len(known)):
                        if not addable(known[0], known[index]):
                            self._report_pair(
                                node, known[0], known[index],
                                f"{func.id}() arguments", "REP201",
                            )
                            break
                return known[0] if known else None
            if func.id == "sum" and node.args:
                return self._element_unit(node.args[0])
            if func.id in _STAT_CLASSES:
                return None
            signature = self.symbols.signature(func.id)
            if signature is not None:
                self._check_call_against(
                    node, func.id, signature, arg_units, keyword_units, report
                )
                return signature.returns
            return None

        if isinstance(func, ast.Attribute):
            self.infer(func.value, report=report)
            # Stats fed the wrong quantity: hist.observe(nbytes) etc.
            if report and func.attr in _STAT_FEED_METHODS and len(node.args) == 1:
                stat_unit = None
                if isinstance(func.value, ast.Name):
                    stat_unit = self.stat_env.get(func.value.id)
                elif isinstance(func.value, ast.Call):
                    stat_unit = self._stat_instance_unit(func.value)
                if (
                    stat_unit is not None
                    and arg_units[0] not in (None, SCALAR)
                    and not addable(stat_unit, arg_units[0])
                ):
                    self._report_pair(
                        node, stat_unit, arg_units[0],
                        f"argument to .{func.attr}() of a "
                        f"'{stat_unit}' statistic", "REP206",
                    )
            signature = self.symbols.signature(func.attr)
            if signature is not None:
                self._check_call_against(
                    node, func.attr, signature, arg_units, keyword_units, report
                )
                return signature.returns
            return None
        return None

    def _infer_math_call(
        self,
        node: ast.Call,
        name: str,
        arg_units: List[Optional[str]],
        report: bool,
    ) -> Optional[str]:
        first = arg_units[0] if arg_units else None
        if name == "radians":
            if report and first == U_RADIANS:
                self._report(
                    "REP204", node,
                    "math.radians() applied to a value already in radians",
                )
            return U_RADIANS
        if name == "degrees":
            if report and first == U_DEGREES:
                self._report(
                    "REP204", node,
                    "math.degrees() applied to a value already in degrees",
                )
            return U_DEGREES
        if name in _TRIG_EXPECTS_RADIANS:
            if report and U_DEGREES in arg_units:
                self._report(
                    "REP204", node,
                    f"math.{name}() expects radians but received degrees",
                )
            return U_RADIANS if name in _TRIG_RETURNS_RADIANS else SCALAR
        if name == "isclose" and len(arg_units) >= 2:
            left, right = arg_units[0], arg_units[1]
            if (
                report
                and left is not None
                and right is not None
                and not addable(left, right)
            ):
                self._report_pair(
                    node, left, right, "math.isclose() arguments", "REP201"
                )
            return None
        if name in ("floor", "ceil", "fabs", "fsum", "trunc"):
            return first
        return None

    def _check_call_against(
        self,
        node: ast.Call,
        name: str,
        signature: _Signature,
        arg_units: List[Optional[str]],
        keyword_units: Dict[str, Optional[str]],
        report: bool,
    ) -> None:
        if not report:
            return
        for index, unit in enumerate(arg_units):
            declared = (
                signature.positional[index]
                if index < len(signature.positional) else None
            )
            if (
                declared is not None
                and unit not in (None, SCALAR)
                and declared != SCALAR
                and not addable(declared, unit)
            ):
                self._report_pair(
                    node, declared, unit,
                    f"argument {index + 1} of {name}()", "REP206",
                )
        for kw_name, unit in keyword_units.items():
            declared = signature.by_name.get(kw_name)
            if (
                declared is not None
                and unit not in (None, SCALAR)
                and declared != SCALAR
                and not addable(declared, unit)
            ):
                self._report_pair(
                    node, declared, unit,
                    f"argument '{kw_name}' of {name}()", "REP206",
                )

    # -- helpers ------------------------------------------------------------

    def _stat_instance_unit(self, node: ast.expr) -> Optional[str]:
        """Unit implied by a stat constructed with a unit-implying name.

        ``LatencyHistogram("texlat")`` -> cycles (from the class);
        ``Counter("stall_cycles")`` / ``group.accumulator("frame_bytes")``
        -> from the name string.
        """
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        func_name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if func_name == "LatencyHistogram":
            return "cycles"
        if func_name in _STAT_CLASSES or func_name in _STAT_FACTORIES:
            if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
                node.args[0].value, str
            ):
                return unit_for_name(node.args[0].value)
        return None

    def _container_unit_of(self, base: ast.expr) -> Optional[str]:
        if isinstance(base, ast.Attribute):
            return self.symbols.attribute_container_unit(base.attr)
        if isinstance(base, ast.Name):
            return self.symbols.constant_containers.get(base.id)
        return None

    def _element_unit(self, node: ast.expr) -> Optional[str]:
        """The element unit of an iterable expression, if inferable."""
        if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
            return self.infer(node.elt, report=False)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "values":
                return self._container_unit_of(func.value)
        return self._container_unit_of(node)


# ---------------------------------------------------------------------------
# The lint rule wrapper.
# ---------------------------------------------------------------------------


class UnitDataflowRule(LintRule):
    """Hosts the whole REP200-series dataflow pass as one engine.

    The engine runs once per file (dispatched on the ``ast.Module``
    node) and emits findings under the eight REP200-series IDs; the
    per-line ``# repro: noqa(REP20x)`` suppression works per ID exactly
    as for the syntactic rules.
    """

    rule_id = "REP200"
    name = "unit-dataflow"
    description = (
        "unit-aware dataflow analysis (REP200-REP207): cycles/bytes/"
        "energy/angle mix-ups"
    )
    node_types = (ast.Module,)

    def __init__(self) -> None:
        self._symbols: Optional[ProjectSymbols] = None

    def prepare(self, sources: Sequence[Tuple[str, str]]) -> None:
        """Harvest the shared symbol table over the whole lint batch."""
        self._symbols = harvest_symbols(
            (path, text)
            for path, text in sources
            if "src/repro/" in path.replace("\\", "/")
        )

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.is_sim_source

    def report_as(
        self, rule_id: str, ctx: LintContext, node: ast.AST, message: str
    ) -> None:
        ctx.report_id(rule_id, node, message)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        module: ast.Module = node  # type: ignore[assignment]
        symbols = self._symbols
        if symbols is None:
            symbols = ProjectSymbols()
            symbols.harvest_module(module)
        checker = _FunctionChecker(self, ctx, symbols, env={})
        checker.run(module.body)

    # -- functions, methods, classes ----------------------------------------

    def check_function(
        self,
        node: ast.FunctionDef,
        ctx: LintContext,
        symbols: ProjectSymbols,
        method: bool,
    ) -> None:
        self._check_signature_tags(node, ctx, method)
        env: Dict[str, Optional[str]] = {}
        args = node.args
        ordered = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for index, arg in enumerate(ordered):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            env[arg.arg] = (
                _annotation_unit(arg.annotation) or unit_for_name(arg.arg)
            )
        return_unit = _annotation_unit(node.returns) or unit_for_name(node.name)
        checker = _FunctionChecker(
            self, ctx, symbols, env,
            return_unit=return_unit,
            return_label=f"'{node.name}'",
        )
        checker.run(node.body)

    def check_class(
        self, cls: ast.ClassDef, ctx: LintContext, symbols: ProjectSymbols
    ) -> None:
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.check_function(stmt, ctx, symbols, method=True)
            elif isinstance(stmt, ast.ClassDef):
                self.check_class(stmt, ctx, symbols)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self._check_field_tag(stmt, ctx)

    # -- REP205 / REP207 signature-level checks -----------------------------

    def _in_tagged_scope(self, ctx: LintContext) -> bool:
        return ctx.in_subpackages(_UNTAGGED_SUBPACKAGES)

    def _check_signature_tags(
        self, node: ast.FunctionDef, ctx: LintContext, method: bool
    ) -> None:
        if node.name.startswith("_"):
            return
        tagged_scope = self._in_tagged_scope(ctx)
        args = node.args
        ordered = [*args.posonlyargs, *args.args]
        if method and ordered and ordered[0].arg in ("self", "cls"):
            ordered = ordered[1:]
        for arg in [*ordered, *args.kwonlyargs]:
            implied = unit_for_name(arg.arg)
            if implied is None or implied == SCALAR:
                continue
            annotated = _annotation_unit(arg.annotation)
            if annotated is None:
                if tagged_scope:
                    self.report_as(
                        "REP205", ctx, arg,
                        f"parameter '{arg.arg}' of public function "
                        f"'{node.name}' implies unit '{implied}' but has no "
                        "repro.units annotation",
                    )
            elif not addable(annotated, implied):
                self._report_conflict(
                    ctx, arg, annotated, implied,
                    f"annotation of parameter '{arg.arg}' contradicts its name",
                )
        implied_return = unit_for_name(node.name)
        if implied_return is None or implied_return == SCALAR:
            return
        annotated_return = _annotation_unit(node.returns)
        if annotated_return is None:
            if tagged_scope and node.returns is not None:
                self.report_as(
                    "REP205", ctx, node,
                    f"public function '{node.name}' implies unit "
                    f"'{implied_return}' but its return annotation is not a "
                    "repro.units alias",
                )
        elif not addable(annotated_return, implied_return):
            self._report_conflict(
                ctx, node, annotated_return, implied_return,
                f"return annotation of '{node.name}' contradicts its name",
            )

    def _check_field_tag(self, stmt: ast.AnnAssign, ctx: LintContext) -> None:
        name = stmt.target.id  # type: ignore[union-attr]
        if name.startswith("_"):
            return
        implied = unit_for_name(name)
        if implied is None or implied == SCALAR:
            return
        annotated = _annotation_unit(stmt.annotation)
        if annotated is None:
            if self._in_tagged_scope(ctx):
                self.report_as(
                    "REP205", ctx, stmt,
                    f"field '{name}' implies unit '{implied}' but is not "
                    "annotated with a repro.units alias",
                )
        elif not addable(annotated, implied):
            self._report_conflict(
                ctx, stmt, annotated, implied,
                f"annotation of field '{name}' contradicts its name",
            )

    def _report_conflict(
        self, ctx: LintContext, node: ast.AST, declared: str, implied: str,
        context: str,
    ) -> None:
        if {declared, implied} == ANGLE_UNITS:
            self.report_as(
                "REP204", ctx, node,
                f"{context}: '{declared}' vs '{implied}'",
            )
        else:
            self.report_as(
                "REP207", ctx, node,
                f"{context}: '{declared}' vs '{implied}'",
            )


def unit_rule_ids() -> List[str]:
    """The stable IDs of the REP200-series rules."""
    return [rule_id for rule_id, _, _ in UNIT_RULE_TABLE]
