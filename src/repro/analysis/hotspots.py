"""Profile-guided finding ranking: measured heat for static findings.

A static analyzer can say *this loop is scalar*; only a profile can say
*this loop is 40% of the frame*.  This module joins the two: it loads
the span tree out of a ``repro-run-manifest/1`` file (the artifact
``--manifest`` runs already write), attributes wall-clock to span names
via :mod:`repro.obs.attribution`, matches each lint finding's enclosing
function against those span names, and annotates/sorts the findings
hottest-first.  ``python -m repro.analysis lint --profile MANIFEST``
drives it; the annotations travel in the SARIF property bag.

Span names come in two shapes and the matcher handles both:

* ``timed_stage`` spans are fully qualified (``repro.core.frontend.
  simulate_frame``) and match a finding's ``module.qualname`` exactly
  or by function-name suffix.
* manual stage spans are short dotted labels (``render.rasterize``,
  ``core.expand``); those match by dotted-segment overlap with the
  finding's qualified name, highest overlap winning.

A finding whose function matches no span keeps ``properties=None`` and
sorts after every measured one (stable, so source order is the
tiebreak).  Matching is heuristic by design -- it ranks where humans
look first; it is not a call-graph profiler.
"""

from __future__ import annotations

import ast
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.findings import Finding
from repro.obs.attribution import SpanCost, attribute_spans, profile_total
from repro.obs.manifest import load_manifest

__all__ = ["SpanProfile", "enclosing_function", "rank_findings"]

#: Dotted segments too generic to count as overlap evidence on their
#: own (every project function lives under ``repro``; ``self`` etc.
#: never appear but cost nothing to exclude).
_GENERIC_SEGMENTS = frozenset({"repro", "src", "py", "self"})


class SpanProfile:
    """Per-name wall-clock costs extracted from one manifest's spans."""

    def __init__(self, spans: Sequence[Mapping[str, Any]]) -> None:
        self.costs: Dict[str, SpanCost] = attribute_spans(spans)
        self.total = profile_total(spans)

    @classmethod
    def from_manifest(cls, path: Union[str, Path]) -> "SpanProfile":
        """Load the span tree of a ``repro-run-manifest/1`` file."""
        return cls(load_manifest(path).spans)

    # -- matching -------------------------------------------------------

    def match(self, module: str, qualname: str) -> Optional[SpanCost]:
        """The best span for ``module.qualname``, or None.

        Exact name beats function-name suffix beats segment overlap;
        lexicographic span name breaks remaining ties so ranking is
        deterministic across runs.
        """
        full = f"{module}.{qualname}" if module else qualname
        simple = qualname.split(".")[-1]
        full_segments = {
            segment for segment in full.split(".")
            if segment not in _GENERIC_SEGMENTS
        }
        best: Optional[Tuple[int, str]] = None
        for name in self.costs:
            if name == full:
                score = 1000
            else:
                score = 0
                if name == simple or name.endswith("." + simple):
                    score += 100
                segments = {
                    segment for segment in name.split(".")
                    if segment not in _GENERIC_SEGMENTS
                }
                score += len(segments & full_segments)
            if score <= 0:
                continue
            # Larger score wins; on equal score the lexicographically
            # smaller span name wins, so ranking is deterministic.
            if best is None or score > best[0] \
                    or (score == best[0] and name < best[1]):
                best = (score, name)
        if best is None:
            return None
        return self.costs[best[1]]

    def share(self, cost: SpanCost) -> float:
        """``cost.total`` as a fraction of the run's root wall-clock."""
        if self.total <= 0.0:
            return 0.0
        return min(1.0, cost.total / self.total)


def _module_name(path: str) -> str:
    """``src/repro/render/raster.py`` -> ``repro.render.raster``."""
    posix = Path(path).as_posix()
    marker = "src/"
    position = posix.rfind(marker)
    tail = posix[position + len(marker):] if position >= 0 else posix
    if tail.endswith(".py"):
        tail = tail[:-3]
    return tail.replace("/", ".")


def enclosing_function(source: str, line: int) -> Optional[str]:
    """Qualname of the innermost def/class spanning ``line``, or None."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    best: Optional[Tuple[int, str]] = None

    def visit(node: ast.AST, qual: Tuple[str, ...]) -> None:
        nonlocal best
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                child_qual = qual + (child.name,)
                end = getattr(child, "end_lineno", None) or child.lineno
                if child.lineno <= line <= end \
                        and not isinstance(child, ast.ClassDef):
                    depth = len(child_qual)
                    if best is None or depth > best[0]:
                        best = (depth, ".".join(child_qual))
                visit(child, child_qual)
            else:
                visit(child, qual)

    visit(tree, ())
    return best[1] if best else None


def rank_findings(
    findings: Sequence[Finding],
    profile: SpanProfile,
    sources: Optional[Mapping[str, str]] = None,
) -> List[Finding]:
    """Annotate findings with measured heat and sort hottest-first.

    ``sources`` maps finding paths to file contents (tests inject
    fixtures here); unlisted paths are read from disk, and unreadable
    ones simply stay unranked.
    """
    source_cache: Dict[str, Optional[str]] = dict(sources or {})

    def source_for(path: str) -> Optional[str]:
        if path not in source_cache:
            try:
                source_cache[path] = Path(path).read_text(encoding="utf-8")
            except OSError:
                source_cache[path] = None
        return source_cache[path]

    annotated: List[Tuple[float, int, Finding]] = []
    for position, finding in enumerate(findings):
        share = -1.0
        out = finding
        source = source_for(finding.path)
        qualname = (enclosing_function(source, finding.line)
                    if source is not None else None)
        if qualname is not None:
            cost = profile.match(_module_name(finding.path), qualname)
            if cost is not None:
                share = profile.share(cost)
                out = replace(finding, properties={
                    "profile": {
                        "span": cost.name,
                        "seconds": round(cost.total, 6),
                        "share": round(share, 6),
                    }
                })
        annotated.append((share, position, out))

    annotated.sort(key=lambda item: (-item[0], item[1]))
    return [finding for _share, _position, finding in annotated]


def format_ranked(finding: Finding) -> str:
    """Text form with the heat prefix when the finding is ranked."""
    profile = (finding.properties or {}).get("profile") \
        if finding.properties else None
    if not profile:
        return f"[    --] {finding.format()}"
    share = float(profile.get("share", 0.0))
    span = profile.get("span", "?")
    return f"[{share:6.1%}] {finding.format()} (span {span})"
