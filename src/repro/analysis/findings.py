"""Lint finding records shared by the rule classes and the CLI."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``properties`` carries optional post-hoc annotations (the
    profile-guided pass attaches measured wall-clock share here); it is
    excluded from equality so annotated and bare findings of the same
    violation still compare equal (the serial-vs-parallel identity gate
    and baseline fingerprints depend on that).
    """

    rule_id: str
    path: str
    line: int
    column: int
    message: str
    properties: Optional[Mapping[str, Any]] = field(
        default=None, compare=False
    )

    def format(self) -> str:
        """``file:line:col: RULE message`` — the classic compiler shape."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }
        if self.properties:
            payload["properties"] = dict(self.properties)
        return payload
