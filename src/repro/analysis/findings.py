"""Lint finding records shared by the rule classes and the CLI."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    column: int
    message: str

    def format(self) -> str:
        """``file:line:col: RULE message`` — the classic compiler shape."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }
