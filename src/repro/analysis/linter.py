"""Shared AST visitor framework for the repo-specific lint rules.

A rule is a small class naming the AST node types it wants to see; the
:class:`Linter` parses each file once, walks the tree once, and fans
every node out to the rules registered for its type.  Findings carry
``file:line:col`` locations and stable rule IDs, and can be suppressed
per line with the escape hatch::

    something_suspicious()  # repro: noqa(REP102) -- justification

Suppressions must name the rule ID; there is deliberately no blanket
``noqa`` that silences everything.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.findings import Finding

SYNTAX_ERROR_RULE = "REP100"

_NOQA_PATTERN = re.compile(r"#\s*repro:\s*noqa\(\s*([A-Z0-9,\s]+?)\s*\)")

# Directories whose determinism matters: everything importable as part of
# the simulator proper.  Lint paths are matched on their posix form.
_SIM_SOURCE_MARKERS = ("src/repro/",)


class LintContext:
    """Per-file state handed to every rule check."""

    def __init__(self, path: str, source: str) -> None:
        self.path = Path(path).as_posix()
        self.source = source
        self.findings: List[Finding] = []
        self.noqa: Dict[int, Set[str]] = _parse_noqa(source)

    @property
    def is_sim_source(self) -> bool:
        """Whether this file is part of the simulator package itself."""
        return any(marker in self.path for marker in _SIM_SOURCE_MARKERS)

    def in_subpackages(self, names: Iterable[str]) -> bool:
        """Whether this file lives under ``src/repro/<one of names>/``."""
        return any(f"src/repro/{name}/" in self.path for name in names)

    def report(self, rule: "LintRule", node: ast.AST, message: str) -> None:
        self.report_id(rule.rule_id, node, message)

    def report_id(self, rule_id: str, node: ast.AST, message: str) -> None:
        """Report a finding under an explicit rule ID.

        Multi-rule engines (the REP200-series unit pass emits eight IDs
        from one walk) report through this entry point; the per-line
        ``noqa`` suppression applies per ID exactly as for single-ID
        rules.
        """
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        if rule_id in self.noqa.get(line, set()):
            return
        self.findings.append(
            Finding(
                rule_id=rule_id,
                path=self.path,
                line=line,
                column=column,
                message=message,
            )
        )


class LintRule:
    """Base class for one lint rule.

    Subclasses set ``rule_id`` (stable, gate-able), ``name`` (kebab-case
    slug), ``description`` (one line for ``--rules`` listings) and
    ``node_types`` (the AST classes routed to :meth:`check`).
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, ctx: LintContext) -> bool:
        """Whether this rule runs on the given file at all."""
        return True

    def prepare(self, sources: Sequence[Tuple[str, str]]) -> None:
        """Observe the whole ``(path, source)`` batch before any check.

        Cross-file rules (call-graph-aware passes) override this to
        build shared symbol tables; the default is a no-op.  The linter
        calls it once per lint run with every file in the batch.
        """

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        """Inspect one node; call ``ctx.report`` on violations."""
        raise NotImplementedError


def _parse_noqa(source: str) -> Dict[int, Set[str]]:
    """Map line numbers to the set of rule IDs suppressed on that line."""
    suppressions: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_PATTERN.search(text)
        if match:
            rule_ids = {part.strip() for part in match.group(1).split(",")}
            suppressions[lineno] = {rule for rule in rule_ids if rule}
    return suppressions


class Linter:
    """Runs a set of rules over files, one parse and one walk per file."""

    def __init__(self, rules: Sequence[LintRule]) -> None:
        self.rules = list(rules)
        self._dispatch: Dict[Type[ast.AST], List[LintRule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    def lint_source(self, source: str, path: str) -> List[Finding]:
        """Lint one already-read source text against all rules."""
        self._prepare([(path, source)])
        return self._lint_prepared(source, path)

    def _prepare(self, sources: Sequence[Tuple[str, str]]) -> None:
        for rule in self.rules:
            rule.prepare(sources)

    def _lint_prepared(self, source: str, path: str) -> List[Finding]:
        ctx = LintContext(path, source)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [
                Finding(
                    rule_id=SYNTAX_ERROR_RULE,
                    path=ctx.path,
                    line=error.lineno or 1,
                    column=(error.offset or 0) + 1,
                    message=f"syntax error: {error.msg}",
                )
            ]
        active = [rule for rule in self.rules if rule.applies_to(ctx)]
        if not active:
            return []
        active_set = set(map(id, active))
        for node in ast.walk(tree):
            for rule in self._dispatch.get(type(node), ()):
                if id(rule) in active_set:
                    rule.check(node, ctx)
        ctx.findings.sort(key=lambda f: (f.line, f.column, f.rule_id))
        return ctx.findings

    def lint_file(self, path: Path) -> List[Finding]:
        source = path.read_text(encoding="utf-8")
        return self.lint_source(source, str(path))

    def lint_paths(self, paths: Iterable[Path]) -> List[Finding]:
        """Lint every ``*.py`` file under the given files/directories.

        The whole batch is read first and handed to every rule's
        :meth:`LintRule.prepare`, so cross-file passes see the complete
        fileset before any per-file check runs.
        """
        sources = [
            (str(path), path.read_text(encoding="utf-8"))
            for path in _expand(paths)
        ]
        return self.lint_sources(sources)

    def lint_sources(
        self, sources: Sequence[Tuple[str, str]]
    ) -> List[Finding]:
        """Lint an already-read ``(path, source)`` batch as one unit.

        Cross-file rules see the whole batch in :meth:`LintRule.prepare`
        exactly as :meth:`lint_paths` would arrange; tests use this to
        plant multi-file fixtures without touching the filesystem.
        """
        self._prepare(sources)
        findings: List[Finding] = []
        for path, source in sources:
            findings.extend(self._lint_prepared(source, path))
        return findings


def _expand(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
                and not any(part.endswith(".egg-info") for part in candidate.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one source text with the default rule set."""
    from repro.analysis.rules import DEFAULT_RULES

    return Linter(DEFAULT_RULES).lint_source(source, path)


def lint_sources(sources: Sequence[Tuple[str, str]]) -> List[Finding]:
    """Lint an in-memory ``(path, source)`` batch with the default rules."""
    from repro.analysis.rules import DEFAULT_RULES

    return Linter(DEFAULT_RULES).lint_sources(sources)


#: Below this many files a process pool costs more than it saves.
_PARALLEL_MIN_FILES = 8


def _lint_worker(files: List[str], start: int, stop: int,
                 ctx: object = None) -> List[Finding]:
    """Pool worker: prepare on the full fileset, check one chunk.

    Every worker re-runs :meth:`LintRule.prepare` over the complete
    batch (cross-file passes need the whole call graph regardless of
    which files this worker checks), then lints only ``files[start:stop]``.
    Findings are plain frozen dataclasses, so they pickle straight back.
    """
    from repro import faults
    from repro.analysis.rules import DEFAULT_RULES

    faults.enter_worker(ctx)
    sources = [
        (name, Path(name).read_text(encoding="utf-8")) for name in files
    ]
    linter = Linter(DEFAULT_RULES)
    linter._prepare(sources)
    findings: List[Finding] = []
    for path, source in sources[start:stop]:
        findings.extend(linter._lint_prepared(source, path))
    return findings


def lint_paths(paths: Iterable[Path], jobs: int = 1) -> List[Finding]:
    """Lint files/directories with the default rule set.

    With ``jobs > 1`` the per-file checks fan out over a process pool
    through :func:`repro.faults.run_fanout` (the same fault-tolerant
    scheduler the experiment runner uses), merging chunk results in
    submission order so the output is byte-identical to a serial run.
    Any chunk the pool fails to produce is re-linted serially.
    """
    from repro.analysis.rules import DEFAULT_RULES

    files = [str(path) for path in _expand(paths)]
    jobs = max(1, int(jobs))
    if jobs <= 1 or len(files) < _PARALLEL_MIN_FILES:
        sources = [
            (name, Path(name).read_text(encoding="utf-8")) for name in files
        ]
        return Linter(DEFAULT_RULES).lint_sources(sources)

    from repro.faults import FanoutTask, run_fanout

    chunks = min(jobs, len(files))
    bounds = [
        (index * len(files) // chunks, (index + 1) * len(files) // chunks)
        for index in range(chunks)
    ]
    results, _report = run_fanout(
        [
            FanoutTask(key=index, fn=_lint_worker,
                       args=(files, start, stop))
            for index, (start, stop) in enumerate(bounds)
        ],
        jobs=jobs,
        phase="analysis.lint_fanout",
    )
    findings: List[Finding] = []
    fallback: Optional[Linter] = None
    for index, (start, stop) in enumerate(bounds):
        if index in results:
            findings.extend(results[index])
            continue
        if fallback is None:
            fallback = Linter(DEFAULT_RULES)
            fallback._prepare([
                (name, Path(name).read_text(encoding="utf-8"))
                for name in files
            ])
        for name in files[start:stop]:
            findings.extend(
                fallback._lint_prepared(
                    Path(name).read_text(encoding="utf-8"), name
                )
            )
    return findings
