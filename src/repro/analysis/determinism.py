"""Static determinism & worker-safety analysis: the REP300 rule family.

The ``make chaos`` gate (PR 5) proves *at runtime* that a faulted
parallel run is bit-identical to a clean serial one -- but only for the
code paths the chaos grid happens to execute.  This module is the
static twin of that gate: a call-graph-aware pass that inspects every
function reachable from the parallel entry points (``run_fanout`` /
``run_many`` and anything handed to an executor submit path) and proves
the absence of the hazard classes that break bit-exact reproduction:

``REP300``
    nondeterministic values (wall clock, unseeded RNG, ``os.urandom``,
    ``uuid``, unsorted directory listings, ``set`` iteration order)
    tainting cache keys, run manifests, statistics feeds or task
    payloads.  Taint propagates through the same whole-batch
    :meth:`~repro.analysis.linter.LintRule.prepare` call-graph hook the
    REP200 units pass uses, so a helper that *returns* ``time.time()``
    taints its callers across files.
``REP301``
    module-level mutable state mutated inside worker-side functions.
    A forked worker inherits a snapshot of its parent's globals;
    mutating them is invisible to the parent and differs between fork
    and spawn start methods (fork-unsafety).
``REP302``
    unpicklable constructs (lambdas, closures over nested defs) passed
    to executor submit paths; ``ProcessPoolExecutor`` requires
    module-level callables.
``REP303``
    order-sensitive reductions or collections over parallel fan-out
    results that bypass the deterministic merge in
    :class:`~repro.faults.outcomes.FanoutReport` -- float addition is
    not associative, and completion order varies run to run.
``REP304``
    ``os.environ`` reads inside worker-reachable functions.  Workers
    must receive configuration through the frozen task payload / config
    digest; an env read in a worker silently couples results to state
    the manifest never records.

Like every rule here, findings are suppressable per line with
``# repro: noqa(REP30x) -- justification``; the annotated sites in the
``experiments``/``faults``/``obs`` packages document why each exception
is sound.

The pass is deliberately conservative in *resolution* (callees are
matched by simple name, so one name can reach several definitions) and
deliberately narrow in *sources and sinks* (only the constructs listed
above), which keeps it quiet on correct code while still catching every
planted hazard in the test fixtures.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.linter import LintContext, LintRule

DETERMINISM_RULE_TABLE: Tuple[Tuple[str, str, str], ...] = (
    ("REP300", "nondeterminism-taint",
     "no nondeterministic values (wall clock, unseeded RNG, os.urandom, "
     "uuid, unsorted directory listings, set iteration) reaching cache "
     "keys, manifests, stats feeds or task payloads"),
    ("REP301", "worker-global-mutation",
     "no module-level mutable state mutated inside worker-reachable "
     "functions (fork-unsafe)"),
    ("REP302", "unpicklable-task",
     "no lambdas or nested functions handed to executor submit paths"),
    ("REP303", "order-sensitive-reduction",
     "no order-sensitive reductions or iteration over parallel fan-out "
     "results bypassing the deterministic FanoutReport merge"),
    ("REP304", "worker-env-read",
     "no os.environ reads inside worker-reachable functions outside the "
     "frozen config digest"),
)

#: Entry points whose transitive callees run (or may run) inside pool
#: workers.  Functions referenced as the ``fn`` of a ``FanoutTask`` or
#: the first argument of ``.submit(...)`` are added per batch.
_WORKER_ENTRY_NAMES = frozenset({"run_fanout", "run_many"})

#: Packages whose *internal* wall-clock use is sanctioned (they measure
#: the reproduction itself, mirroring the REP102/REP108 exemptions), so
#: nondeterminism does not propagate out of them through the call graph.
#: Direct taint-into-sink inside them is still checked locally.
_PROPAGATION_EXEMPT_MARKERS = (
    "src/repro/obs/",
    "src/repro/perf/",
    "src/repro/faults/",
    "src/repro/serve/",
)

_TIME_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
})
_DATETIME_FACTORIES = frozenset({"now", "utcnow", "today"})
_RANDOM_MODULE_FUNCS = frozenset({
    "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
    "choice", "choices", "sample", "shuffle", "betavariate", "expovariate",
    "triangular", "vonmisesvariate", "getrandbits", "randbytes",
})
_NUMPY_LEGACY_RANDOM = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "standard_normal", "uniform", "normal",
})
_UUID_FUNCS = frozenset({"uuid1", "uuid4"})
_FS_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})
_GLOB_MODULE_FUNCS = frozenset({"glob", "iglob"})
_OS_LISTING_FUNCS = frozenset({"listdir", "scandir"})

#: Callables whose arguments are determinism-critical: anything flowing
#: in ends up in a cache key, a manifest, a statistics feed or a task
#: payload shipped to a worker.
_SINK_NAMES = frozenset({
    "config_digest", "build_manifest", "RunManifest", "FanoutTask",
    "submit", "store", "store_safe",
})
#: ``.add`` / ``.observe`` are sinks only when the receiver looks like a
#: statistics object -- plain ``set.add`` must not fire.
_STAT_FEED_METHODS = frozenset({"add", "observe"})
_STAT_BASE_HINTS = ("stat", "counter", "hist", "accum", "meter")

_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "sort", "reverse", "reset",
})
_MUTABLE_CTOR_NAMES = frozenset({
    "dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter",
})

_REDUCTION_NAMES = frozenset({"sum", "fsum", "prod"})

# Taint kinds carried through expression evaluation.
_ND = "nd"                  # value differs between identical runs
_SET = "set"                # element/ordering from set iteration
_FSLIST = "fslist"          # unsorted filesystem listing
_PARALLEL = "parallel"      # results mapping of a parallel fan-out
_PARALLEL_VIEW = "parallel-view"  # completion-ordered .values()/.items()

_Taint = Tuple[str, str]    # (kind, human description)


def determinism_rule_ids() -> List[str]:
    """The REP300-series rule IDs, in numeric order."""
    return [rule_id for rule_id, _name, _description in DETERMINISM_RULE_TABLE]


# ---------------------------------------------------------------------------
# prepare(): whole-batch call graph, worker reachability, ND propagation
# ---------------------------------------------------------------------------


@dataclass
class _FunctionRecord:
    """One function (or method, or nested def) harvested from the batch.

    Callees are split by call shape to keep name-based resolution from
    exploding: a bare-name call (``run_fanout(...)``) can only reach a
    module-level function or a visible nested def, an attribute call on
    a module alias (``faults.run_fanout(...)``) can reach anything, and
    any other attribute call (``checker.run()``) can only reach a
    *method* of that name -- never a same-named module-level function in
    an unrelated file.
    """

    path: str
    qualname: str
    simple: str
    is_method: bool = False
    name_callees: Set[str] = field(default_factory=set)
    attr_callees: Set[str] = field(default_factory=set)
    open_callees: Set[str] = field(default_factory=set)
    instantiated: Set[str] = field(default_factory=set)
    children: List[Tuple[str, str]] = field(default_factory=list)
    nd_direct: Optional[str] = None

    @property
    def callees(self) -> Set[str]:
        return self.name_callees | self.attr_callees | self.open_callees


class _ProjectModel:
    """Cross-file tables shared by every per-file check."""

    def __init__(self) -> None:
        self.records: Dict[Tuple[str, str], _FunctionRecord] = {}
        self.class_inits: Dict[str, List[Tuple[str, str]]] = {}
        self.mutable_globals: Dict[str, Set[str]] = {}
        self.all_globals: Dict[str, Set[str]] = {}
        self.submit_names: Set[str] = set()
        self.reachable: Set[Tuple[str, str]] = set()
        self.nd_names: Set[str] = set()


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _callee_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _base_name(expr: ast.expr) -> Optional[str]:
    """The simple name at the root of a Name/Attribute chain's last hop."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _has_seed(call: ast.Call) -> bool:
    if call.args:
        return True
    return any(kw.arg == "seed" for kw in call.keywords)


def _nd_call(call: ast.Call) -> Optional[_Taint]:
    """Classify a call as a nondeterminism source, if it is one."""
    func = call.func
    if isinstance(func, ast.Attribute):
        attr = func.attr
        base = _base_name(func.value)
        if base == "time" and attr in _TIME_FUNCS:
            return (_ND, f"time.{attr}()")
        if attr in _DATETIME_FACTORIES and base in ("datetime", "date"):
            return (_ND, f"{base}.{attr}()")
        if base == "random" and attr in _RANDOM_MODULE_FUNCS:
            return (_ND, f"random.{attr}() (unseeded global RNG)")
        if base == "random" and attr == "Random" and not _has_seed(call):
            return (_ND, "random.Random() without a seed")
        if base is not None and base.endswith("random") \
                and attr in _NUMPY_LEGACY_RANDOM:
            return (_ND, f"np.random.{attr}() (unseeded global RNG)")
        if attr == "default_rng" and not _has_seed(call):
            return (_ND, "default_rng() without a seed")
        if base == "os" and attr == "urandom":
            return (_ND, "os.urandom()")
        if base == "uuid" and attr in _UUID_FUNCS:
            return (_ND, f"uuid.{attr}()")
        if base == "secrets":
            return (_ND, f"secrets.{attr}()")
        if base == "os" and attr in _OS_LISTING_FUNCS:
            return (_FSLIST, f"os.{attr}()")
        if base == "glob" and attr in _GLOB_MODULE_FUNCS:
            return (_FSLIST, f"glob.{attr}()")
        if attr in _FS_LISTING_METHODS:
            return (_FSLIST, f".{attr}() filesystem listing")
    return None


class _Harvester:
    """Builds one module's contribution to the :class:`_ProjectModel`."""

    def __init__(self, model: _ProjectModel, path: str) -> None:
        self.model = model
        self.path = path
        self.aliases: Dict[str, Set[str]] = {}
        self.local_submit_names: Set[str] = set()
        self.module_like: Set[str] = set()

    def harvest(self, tree: ast.Module) -> None:
        self._imports(tree)
        self._visit(tree, (), None, in_class=False)
        self._module_globals(tree)
        self._submit_roots(tree)

    def _imports(self, tree: ast.Module) -> None:
        """Names that may denote modules when used as attribute bases."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.module_like.add(alias.asname)
                    else:
                        self.module_like.update(alias.name.split("."))
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    self.module_like.add(alias.asname or alias.name)

    # -- call graph -----------------------------------------------------

    def _visit(self, node: ast.AST, qual: Tuple[str, ...],
               rec: Optional[_FunctionRecord], in_class: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._handle_def(child, qual, rec, in_class)
            elif isinstance(child, ast.ClassDef):
                self._visit(child, qual + (child.name,), None, in_class=True)
            else:
                if rec is not None and isinstance(child, ast.Call):
                    self._record_call(child, rec)
                self._visit(child, qual, rec, in_class=False)

    def _handle_def(self, node: ast.AST, qual: Tuple[str, ...],
                    parent: Optional[_FunctionRecord],
                    in_class: bool) -> None:
        name = node.name  # type: ignore[attr-defined]
        qualname = ".".join(qual + (name,))
        rec = _FunctionRecord(self.path, qualname, name, is_method=in_class)
        self.model.records[(self.path, qualname)] = rec
        if parent is not None:
            parent.children.append((self.path, qualname))
        if _is_dunder(name) and qual:
            # __init__/__post_init__ reached via class instantiation.
            cls = qual[-1]
            if name in ("__init__", "__post_init__"):
                self.model.class_inits.setdefault(cls, []).append(
                    (self.path, qualname)
                )
        self._visit(node, qual + (name,), rec, in_class=False)

    def _record_call(self, call: ast.Call, rec: _FunctionRecord) -> None:
        func = call.func
        name = _callee_name(func)
        if name is not None and not _is_dunder(name):
            if isinstance(func, ast.Attribute):
                base = _base_name(func.value)
                if base is not None and base in self.module_like:
                    rec.open_callees.add(name)
                else:
                    rec.attr_callees.add(name)
            else:
                rec.name_callees.add(name)
            if name[:1].isupper():
                rec.instantiated.add(name)
        taint = _nd_call(call)
        if taint is not None and taint[0] == _ND and rec.nd_direct is None:
            rec.nd_direct = taint[1]

    # -- module-level state ---------------------------------------------

    def _module_globals(self, tree: ast.Module) -> None:
        mutable = self.model.mutable_globals.setdefault(self.path, set())
        names = self.model.all_globals.setdefault(self.path, set())

        def scan_body(body: Sequence[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.If, ast.Try)):
                    for sub in ast.iter_child_nodes(stmt):
                        if isinstance(sub, ast.stmt):
                            scan_body([sub])
                    continue
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    targets, value = [stmt.target], stmt.value
                elif isinstance(stmt, ast.AugAssign):
                    targets, value = [stmt.target], stmt.value
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    names.add(target.id)
                    if value is not None and _is_mutable_value(value):
                        mutable.add(target.id)

        scan_body(tree.body)

    # -- submit roots and fn aliases ------------------------------------

    def _submit_roots(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                referenced = _referenced_names(node.value)
                if referenced:
                    self.aliases.setdefault(
                        node.targets[0].id, set()
                    ).update(referenced)
            if not isinstance(node, ast.Call):
                continue
            fn = _submitted_fn(node)
            if isinstance(fn, ast.Name):
                self.local_submit_names.add(fn.id)
        # Resolve aliases transitively within the module.
        resolved: Set[str] = set()
        frontier = set(self.local_submit_names)
        while frontier:
            name = frontier.pop()
            if name in resolved:
                continue
            resolved.add(name)
            frontier.update(self.aliases.get(name, ()))
        self.model.submit_names.update(resolved)


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set,
                          ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        name = _callee_name(value.func)
        if name in _MUTABLE_CTOR_NAMES:
            return True
        # A module-level instance of a project class (`_TRACER = Tracer()`)
        # is process-global state just as much as a dict literal is.
        if name is not None and name[:1].isupper():
            return True
    return False


def _referenced_names(value: ast.expr) -> Set[str]:
    """Plain names an assignment forwards (``a = b``/``a = b if c else d``)."""
    if isinstance(value, ast.Name):
        return {value.id}
    if isinstance(value, ast.IfExp):
        return _referenced_names(value.body) | _referenced_names(value.orelse)
    return set()


def _submitted_fn(call: ast.Call) -> Optional[ast.expr]:
    """The callable argument of a FanoutTask(...) / .submit(...) call."""
    name = _callee_name(call.func)
    if name == "FanoutTask":
        for kw in call.keywords:
            if kw.arg == "fn":
                return kw.value
        if len(call.args) >= 2:
            return call.args[1]
        return None
    if isinstance(call.func, ast.Attribute) and call.func.attr == "submit":
        if call.args:
            return call.args[0]
    return None


def _propagation_exempt(path: str) -> bool:
    return any(marker in path for marker in _PROPAGATION_EXEMPT_MARKERS)


def harvest_model(sources: Sequence[Tuple[str, str]]) -> _ProjectModel:
    """Parse and harvest every ``src/repro/`` source into one model.

    Shared by the REP300 determinism pass and the REP400 vectorization
    pass: both need the same cross-file call graph, they just walk it
    from different roots.
    """
    model = _ProjectModel()
    for raw_path, source in sources:
        path = Path(raw_path).as_posix()
        if "src/repro/" not in path:
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue  # REP100 reports it; nothing to harvest
        _Harvester(model, path).harvest(tree)
    return model


def make_callee_resolver(model: _ProjectModel):
    """Name-based callee resolution honouring the call-shape split.

    Returns ``resolve(rec) -> List[key]`` where keys index
    ``model.records``.  Bare-name calls resolve to module-level
    functions, plain attribute calls to methods, module-alias attribute
    calls to either, and ``ClassName(...)`` to the class's init chain.
    """
    fn_index: Dict[str, List[Tuple[str, str]]] = {}
    method_index: Dict[str, List[Tuple[str, str]]] = {}
    all_index: Dict[str, List[Tuple[str, str]]] = {}
    for key, rec in model.records.items():
        index = method_index if rec.is_method else fn_index
        index.setdefault(rec.simple, []).append(key)
        all_index.setdefault(rec.simple, []).append(key)

    def resolved_callees(rec: _FunctionRecord) -> List[Tuple[str, str]]:
        keys: List[Tuple[str, str]] = []
        for callee in rec.name_callees:
            keys.extend(fn_index.get(callee, ()))
        for callee in rec.attr_callees:
            keys.extend(method_index.get(callee, ()))
        for callee in rec.open_callees:
            keys.extend(all_index.get(callee, ()))
        for cls in rec.instantiated:
            keys.extend(model.class_inits.get(cls, ()))
        keys.extend(rec.children)
        return keys

    return resolved_callees


def reachable_from(model: _ProjectModel, root_names: Iterable[str],
                   root_classes: Iterable[str] = (),
                   resolver=None) -> Set[Tuple[str, str]]:
    """Every record transitively callable from the named roots.

    ``root_names`` match by simple function name; ``root_classes``
    additionally seed every method of the named classes (entry objects
    like samplers whose public surface is all hot).
    """
    if resolver is None:
        resolver = make_callee_resolver(model)
    names = set(root_names)
    classes = set(root_classes)
    stack = [
        key for key, rec in model.records.items()
        if rec.simple in names
        or (rec.is_method and rec.qualname.split(".")[0] in classes)
    ]
    reachable: Set[Tuple[str, str]] = set()
    while stack:
        key = stack.pop()
        if key in reachable:
            continue
        reachable.add(key)
        stack.extend(resolver(model.records[key]))
    return reachable


def _build_model(sources: Sequence[Tuple[str, str]]) -> _ProjectModel:
    model = harvest_model(sources)
    resolved_callees = make_callee_resolver(model)

    # Worker reachability: everything transitively callable from the
    # parallel entry points or a submitted task function.
    root_names = _WORKER_ENTRY_NAMES | model.submit_names
    model.reachable = reachable_from(model, root_names,
                                     resolver=resolved_callees)

    # ND propagation: a function is nondeterministic-returning if it
    # calls an ND source or an ND function, fixed-pointed across files.
    nd_keys = {key for key, rec in model.records.items()
               if rec.nd_direct and not _propagation_exempt(rec.path)}
    changed = True
    while changed:
        changed = False
        for key, rec in model.records.items():
            if key in nd_keys or _propagation_exempt(rec.path):
                continue
            if any(callee in nd_keys for callee in resolved_callees(rec)):
                nd_keys.add(key)
                changed = True
    model.nd_names = {model.records[key].simple for key in nd_keys}
    return model


# ---------------------------------------------------------------------------
# check(): per-file taint/safety scan
# ---------------------------------------------------------------------------


class _Scope:
    """One lexical scope's scan state (module, function or nested def)."""

    def __init__(self, scan: "_ModuleScan", qual: Tuple[str, ...],
                 reachable: bool, nested_defs: FrozenSet[str],
                 in_function: bool) -> None:
        self.scan = scan
        self.qual = qual
        self.reachable = reachable
        self.in_function = in_function
        self.nested: Set[str] = set(nested_defs)
        self.env: Dict[str, Optional[_Taint]] = {}
        self.globals_declared: Set[str] = set()

    # -- helpers --------------------------------------------------------

    @property
    def where(self) -> str:
        return ".".join(self.qual) if self.qual else "<module>"

    def rep(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.scan.ctx.report_id(rule_id, node, message)

    def run(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.stmt(stmt)

    # -- statements -----------------------------------------------------

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._function(node)
        elif isinstance(node, ast.ClassDef):
            self._class(node)
        elif isinstance(node, ast.Assign):
            tag = self.expr(node.value)
            for target in node.targets:
                self._bind(target, tag, node)
        elif isinstance(node, ast.AnnAssign):
            tag = self.expr(node.value) if node.value is not None else None
            self._bind(node.target, tag, node)
        elif isinstance(node, ast.AugAssign):
            tag = self.expr(node.value)
            self._bind(node.target, tag, node, augmented=True)
        elif isinstance(node, ast.Global):
            self.globals_declared.update(node.names)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._for(node)
        elif isinstance(node, ast.While):
            self.expr(node.test)
            self.run(node.body)
            self.run(node.orelse)
        elif isinstance(node, ast.If):
            self.expr(node.test)
            self.run(node.body)
            self.run(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                tag = self.expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, tag, node)
            self.run(node.body)
        elif isinstance(node, ast.Try):
            self.run(node.body)
            for handler in node.handlers:
                self.run(handler.body)
            self.run(node.orelse)
            self.run(node.finalbody)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.expr(node.value)
        elif isinstance(node, ast.Expr):
            self.expr(node.value)
        elif isinstance(node, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.expr(child)
        elif isinstance(node, (ast.Import, ast.ImportFrom, ast.Pass,
                               ast.Break, ast.Continue, ast.Nonlocal)):
            pass
        else:
            # Unmodelled statement kinds (match, ...): generic recursion
            # so no call site escapes the env-read/sink checks.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self.stmt(child)
                elif isinstance(child, ast.expr):
                    self.expr(child)

    def _function(self, node: ast.AST) -> None:
        name = node.name  # type: ignore[attr-defined]
        qual = self.qual + (name,)
        key = (self.scan.ctx.path, ".".join(qual))
        reachable = self.reachable or key in self.scan.reachable_keys
        if self.in_function:
            self.nested.add(name)
        for decorator in node.decorator_list:  # type: ignore[attr-defined]
            self.expr(decorator)
        args = node.args  # type: ignore[attr-defined]
        for default in [*args.defaults,
                        *[d for d in args.kw_defaults if d is not None]]:
            self.expr(default)
        child = _Scope(self.scan, qual, reachable,
                       frozenset(self.nested) if self.in_function
                       else frozenset(),
                       in_function=True)
        for param in [*getattr(args, "posonlyargs", []), *args.args,
                      *args.kwonlyargs,
                      *([args.vararg] if args.vararg else []),
                      *([args.kwarg] if args.kwarg else [])]:
            child.env[param.arg] = None
        child.run(node.body)  # type: ignore[attr-defined]

    def _class(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = self.qual + (node.name, stmt.name)
                key = (self.scan.ctx.path, ".".join(qual))
                reachable = self.reachable or key in self.scan.reachable_keys
                child = _Scope(self.scan, qual, reachable, frozenset(),
                               in_function=True)
                child_args = stmt.args
                for param in [*getattr(child_args, "posonlyargs", []),
                              *child_args.args, *child_args.kwonlyargs,
                              *([child_args.vararg]
                                if child_args.vararg else []),
                              *([child_args.kwarg]
                                if child_args.kwarg else [])]:
                    child.env[param.arg] = None
                for decorator in stmt.decorator_list:
                    self.expr(decorator)
                child.run(stmt.body)
            elif isinstance(stmt, ast.ClassDef):
                self._class(stmt)
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self.expr(child)

    def _for(self, node: ast.stmt) -> None:
        iter_expr = node.iter  # type: ignore[attr-defined]
        tag = self.expr(iter_expr)
        if tag is not None and tag[0] == _FSLIST:
            self.rep("REP300", iter_expr,
                     f"unsorted filesystem listing ({tag[1]}) iterated in "
                     f"'{self.where}'; wrap it in sorted(...) so artifact "
                     "order is filesystem-independent")
        elif tag is not None and tag[0] == _PARALLEL_VIEW:
            self.rep("REP303", iter_expr,
                     f"iteration over {tag[1]} in '{self.where}' depends on "
                     "task completion order; iterate the submitted keys (or "
                     "sorted(...) them) so the merge stays deterministic")
        bind_tag: Optional[_Taint] = None
        if tag is not None and tag[0] == _SET:
            bind_tag = (_SET, "element of nondeterministically ordered "
                              "set iteration")
        elif tag is not None and tag[0] == _ND:
            bind_tag = tag
        self._bind(node.target, bind_tag, node)  # type: ignore[attr-defined]
        self.run(node.body)  # type: ignore[attr-defined]
        self.run(node.orelse)  # type: ignore[attr-defined]

    # -- binding and module-state mutation ------------------------------

    def _bind(self, target: ast.expr, tag: Optional[_Taint],
              node: ast.stmt, augmented: bool = False) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.globals_declared and self.reachable:
                self.rep("REP301", node,
                         f"module-level state '{name}' rebound inside "
                         f"worker-reachable '{self.where}'; fork-unsafe -- "
                         "workers must not mutate process globals")
            if augmented:
                previous = self.env.get(name)
                if tag is None or (previous is not None
                                   and previous[0] == _ND):
                    tag = previous if previous is not None else tag
            self.env[name] = tag
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            for index, elt in enumerate(elts):
                elt_tag = tag
                if tag is not None and tag[0] == _PARALLEL and index > 0:
                    elt_tag = None  # (results, report) unpack
                self._bind(elt, elt_tag, node)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None, node)
        elif isinstance(target, ast.Subscript):
            self._mutation_store(target.value, node)
            self.expr(target.slice)
        elif isinstance(target, ast.Attribute):
            self._mutation_store(target.value, node)

    def _mutation_store(self, base: ast.expr, node: ast.AST) -> None:
        if not (self.reachable and isinstance(base, ast.Name)):
            return
        name = base.id
        shadowed = name in self.env and name not in self.globals_declared
        if shadowed:
            return
        if name in self.scan.mutable_globals or name in self.globals_declared:
            self.rep("REP301", node,
                     f"module-level state '{name}' mutated inside "
                     f"worker-reachable '{self.where}'; fork-unsafe -- "
                     "workers must not mutate process globals")

    # -- expressions ----------------------------------------------------

    def expr(self, node: Optional[ast.expr]) -> Optional[_Taint]:
        if node is None:
            return None
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            self.expr(node.value)
            return None
        if isinstance(node, ast.Subscript):
            self._env_subscript_read(node)
            base = self.expr(node.value)
            self.expr(node.slice)
            if base is not None and base[0] == _ND:
                return base
            return None
        if isinstance(node, ast.BinOp):
            left = self.expr(node.left)
            right = self.expr(node.right)
            for tag in (left, right):
                if tag is not None and tag[0] == _ND:
                    return tag
            return None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.expr(value)
            return None
        if isinstance(node, ast.Compare):
            self.expr(node.left)
            for comparator in node.comparators:
                self.expr(comparator)
            return None
        if isinstance(node, ast.UnaryOp):
            return self.expr(node.operand)
        if isinstance(node, ast.IfExp):
            self.expr(node.test)
            body = self.expr(node.body)
            orelse = self.expr(node.orelse)
            return body or orelse
        if isinstance(node, (ast.List, ast.Tuple)):
            tags = [self.expr(elt) for elt in node.elts]
            for tag in tags:
                if tag is not None and tag[0] == _ND:
                    return tag
            return None
        if isinstance(node, ast.Dict):
            tags = [self.expr(value)
                    for value in [*node.keys, *node.values]
                    if value is not None]
            for tag in tags:
                if tag is not None and tag[0] == _ND:
                    return tag
            return None
        if isinstance(node, ast.Set):
            for elt in node.elts:
                self.expr(elt)
            return (_SET, "set literal (iteration order nondeterministic)")
        if isinstance(node, (ast.ListComp, ast.GeneratorExp,
                             ast.SetComp, ast.DictComp)):
            return self._comprehension(node)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                tag = self.expr(value)
                if tag is not None and tag[0] == _ND:
                    return tag
            return None
        if isinstance(node, ast.FormattedValue):
            return self.expr(node.value)
        if isinstance(node, ast.NamedExpr):
            tag = self.expr(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = tag
            return tag
        if isinstance(node, (ast.Starred, ast.Await)):
            return self.expr(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self.expr(node.value)
            return None
        if isinstance(node, ast.Slice):
            self.expr(node.lower)
            self.expr(node.upper)
            self.expr(node.step)
            return None
        if isinstance(node, ast.Lambda):
            return None
        return None

    def _comprehension(self, node: ast.expr) -> Optional[_Taint]:
        iter_tag: Optional[_Taint] = None
        for gen in node.generators:  # type: ignore[attr-defined]
            tag = self.expr(gen.iter)
            if tag is not None and tag[0] == _FSLIST:
                self.rep("REP300", gen.iter,
                         f"unsorted filesystem listing ({tag[1]}) iterated "
                         f"in '{self.where}'; wrap it in sorted(...) so "
                         "artifact order is filesystem-independent")
            elif tag is not None and tag[0] == _PARALLEL_VIEW:
                self.rep("REP303", gen.iter,
                         f"iteration over {tag[1]} in '{self.where}' depends "
                         "on task completion order; iterate the submitted "
                         "keys (or sorted(...) them) so the merge stays "
                         "deterministic")
            if tag is not None and tag[0] == _SET:
                self._bind(gen.target, (_SET, "element of nondeterministically "
                                             "ordered set iteration"), node)
                iter_tag = iter_tag or tag
            else:
                self._bind(gen.target,
                           tag if tag is not None and tag[0] == _ND else None,
                           node)
                if tag is not None and tag[0] == _ND:
                    iter_tag = iter_tag or tag
            for cond in gen.ifs:
                self.expr(cond)
        if isinstance(node, ast.DictComp):
            key_tag = self.expr(node.key)
            value_tag = self.expr(node.value)
            elt_tag = key_tag or value_tag
        else:
            elt_tag = self.expr(node.elt)  # type: ignore[attr-defined]
        if elt_tag is not None and elt_tag[0] == _ND:
            return elt_tag
        if isinstance(node, (ast.SetComp,)):
            return (_SET, "set comprehension (iteration order "
                          "nondeterministic)")
        if iter_tag is not None and iter_tag[0] == _SET \
                and isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return (_SET, "sequence ordered by set iteration")
        if iter_tag is not None and iter_tag[0] == _ND:
            return iter_tag
        return None

    def _env_subscript_read(self, node: ast.Subscript) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        base = node.value
        if (isinstance(base, ast.Attribute) and base.attr == "environ") \
                or (isinstance(base, ast.Name) and base.id == "environ"):
            self._report_env_read(node)

    def _report_env_read(self, node: ast.AST) -> None:
        if self.reachable:
            self.rep("REP304", node,
                     f"os.environ read inside worker-reachable "
                     f"'{self.where}'; workers must receive configuration "
                     "through the frozen task payload / config digest, not "
                     "ambient environment state")

    # -- calls ----------------------------------------------------------

    def _call(self, node: ast.Call) -> Optional[_Taint]:
        func = node.func
        fname = _callee_name(func)
        base_tag: Optional[_Taint] = None
        if isinstance(func, ast.Attribute):
            base_tag = self.expr(func.value)

        arg_tags: List[Tuple[ast.expr, Optional[_Taint]]] = []
        for arg in node.args:
            arg_tags.append((arg, self.expr(arg)))
        for kw in node.keywords:
            arg_tags.append((kw.value, self.expr(kw.value)))

        # os.environ.get / os.getenv inside a worker-reachable function.
        if isinstance(func, ast.Attribute):
            if func.attr == "get" and (
                (isinstance(func.value, ast.Attribute)
                 and func.value.attr == "environ")
                or (isinstance(func.value, ast.Name)
                    and func.value.id == "environ")
            ):
                self._report_env_read(node)
            elif func.attr == "getenv" \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "os":
                self._report_env_read(node)

        # Unpicklable payloads on submit paths.
        submitted = _submitted_fn(node)
        if submitted is not None:
            if isinstance(submitted, ast.Lambda):
                self.rep("REP302", submitted,
                         f"lambda passed to '{fname}' in '{self.where}'; "
                         "executor tasks must be picklable module-level "
                         "functions")
            elif isinstance(submitted, ast.Name) \
                    and submitted.id in self.nested:
                self.rep("REP302", submitted,
                         f"nested function '{submitted.id}' passed to "
                         f"'{fname}' in '{self.where}'; closures do not "
                         "pickle -- hoist it to module level")

        # Order-sensitive float reductions over parallel results.
        if fname in _REDUCTION_NAMES and arg_tags:
            first_arg, first_tag = arg_tags[0]
            if first_tag is not None \
                    and first_tag[0] in (_PARALLEL, _PARALLEL_VIEW):
                self.rep("REP303", node,
                         f"order-sensitive reduction '{fname}' over "
                         f"{first_tag[1]} in '{self.where}'; float addition "
                         "is not associative across completion orders -- "
                         "reduce over sorted keys or the FanoutReport merge")

        # Determinism-critical sinks.
        sink = self._sink_label(func, fname)
        if sink is not None:
            for arg, tag in arg_tags:
                if tag is not None and tag[0] in (_ND, _SET, _FSLIST):
                    self.rep("REP300", arg,
                             f"nondeterministic value ({tag[1]}) flows into "
                             f"{sink} in '{self.where}'; cache keys, "
                             "manifests, stats and task payloads must be "
                             "pure functions of the frozen config")

        # Fork-unsafe mutation of module-level containers/objects.
        if isinstance(func, ast.Attribute) \
                and func.attr in _MUTATING_METHODS \
                and isinstance(func.value, ast.Name):
            name = func.value.id
            shadowed = name in self.env and name not in self.globals_declared
            if self.reachable and not shadowed \
                    and name in self.scan.mutable_globals:
                self.rep("REP301", node,
                         f"module-level state '{name}' mutated "
                         f"(.{func.attr}()) inside worker-reachable "
                         f"'{self.where}'; fork-unsafe -- workers must not "
                         "mutate process globals")

        # Result classification.
        if fname == "sorted":
            return None
        if fname in ("list", "tuple"):
            return arg_tags[0][1] if arg_tags else None
        if fname in ("set", "frozenset"):
            return (_SET, f"{fname}() (iteration order nondeterministic)")
        if fname in ("len", "min", "max", "any", "all", "dict"):
            return None
        taint = _nd_call(node)
        if taint is not None:
            return taint
        if fname in ("run_many", "run_fanout"):
            return (_PARALLEL, f"{fname}() results")
        if fname in ("values", "items") and base_tag is not None \
                and base_tag[0] == _PARALLEL:
            return (_PARALLEL_VIEW,
                    f"the completion-ordered .{fname}() view of "
                    f"{base_tag[1]}")
        if fname is not None and fname in self.scan.nd_names:
            return (_ND, f"{fname}() (nondeterministic through its call "
                         "graph)")
        return None

    def _sink_label(self, func: ast.expr, fname: Optional[str]) -> Optional[str]:
        if fname is None:
            return None
        if fname in _SINK_NAMES:
            return f"'{fname}(...)'"
        if fname == "key" and isinstance(func, ast.Attribute):
            return "the cache key ('.key(...)')"
        if fname in _STAT_FEED_METHODS and isinstance(func, ast.Attribute):
            base = func.value
            hint: Optional[str] = None
            if isinstance(base, ast.Call):
                hint = _callee_name(base.func)
            else:
                hint = _base_name(base)
            if hint is not None and any(
                    marker in hint.lower() for marker in _STAT_BASE_HINTS):
                return f"the statistics feed ('{hint}.{fname}(...)')"
        return None


class _ModuleScan:
    """Per-file scan bound to one :class:`LintContext`."""

    def __init__(self, rule: "DeterminismRule", ctx: LintContext) -> None:
        self.ctx = ctx
        model = rule._model
        self.reachable_keys = model.reachable if model else set()
        self.nd_names = model.nd_names if model else set()
        self.mutable_globals = (
            model.mutable_globals.get(ctx.path, set()) if model else set()
        )
        self.all_globals = (
            model.all_globals.get(ctx.path, set()) if model else set()
        )

    def run(self, tree: ast.Module) -> None:
        scope = _Scope(self, (), False, frozenset(), in_function=False)
        scope.run(tree.body)


class DeterminismRule(LintRule):
    """The REP300-series engine: one prepare, one walk, five rule IDs."""

    rule_id = "REP300"
    name = "determinism-and-worker-safety"
    description = ("call-graph-aware determinism and fork-safety analysis "
                   "of everything reachable from run_fanout/run_many "
                   "(REP300-REP304)")
    node_types = (ast.Module,)

    def __init__(self) -> None:
        self._model: Optional[_ProjectModel] = None

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.is_sim_source

    def prepare(self, sources: Sequence[Tuple[str, str]]) -> None:
        self._model = _build_model(sources)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Module)
        _ModuleScan(self, ctx).run(node)


# ---------------------------------------------------------------------------
# chaos-gate attestation
# ---------------------------------------------------------------------------


def static_determinism_attestation(
    paths: Optional[Iterable[Path]] = None,
) -> Dict[str, Any]:
    """Run the REP300-series pass and summarise the result for a manifest.

    The ``make chaos`` gate embeds this next to its runtime bit-identity
    evidence in ``CHAOS.manifest.json``, so one artifact carries both the
    dynamic proof (this grid, this run) and the static proof (every
    worker-reachable code path, including ones the grid never executed).
    """
    from repro.analysis.linter import lint_paths

    if paths is None:
        import repro

        paths = [Path(repro.__file__).resolve().parent]
    targets = [Path(p) for p in paths]
    findings = [f for f in lint_paths(targets)
                if f.rule_id.startswith("REP3")]
    return {
        "schema": "repro-static-determinism/1",
        "rules": determinism_rule_ids(),
        "paths": [target.as_posix() for target in targets],
        "findings": [f.as_dict() for f in findings],
        "clean": not findings,
    }
