"""SARIF 2.1.0 serialization of lint findings.

SARIF (Static Analysis Results Interchange Format) is the exchange
format GitHub code scanning ingests; emitting it lets CI upload the
lint run as an artifact and surface findings as inline annotations.
Only the small subset of the schema the findings need is produced:
one run, one driver, one result per finding, one physical location
per result.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "repro-lint"


def findings_to_sarif(
    findings: Sequence[object],
    catalog: Sequence[Tuple[str, str, str]],
) -> Dict[str, object]:
    """Build a SARIF log dict from findings and the rule catalog.

    ``findings`` are :class:`repro.analysis.linter.Finding` objects (any
    object with ``rule_id``/``path``/``line``/``column``/``message``
    works); ``catalog`` is ``(rule_id, name, description)`` triples as
    returned by :func:`repro.analysis.rules.rule_catalog`.
    """
    rules: List[Dict[str, object]] = [
        {
            "id": rule_id,
            "name": name,
            "shortDescription": {"text": description},
        }
        for rule_id, name, description in catalog
    ]
    rule_index = {entry["id"]: position for position, entry in enumerate(rules)}

    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            # SARIF columns are 1-based; Finding columns
                            # follow the AST's 0-based convention.
                            "startColumn": finding.column + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        properties = getattr(finding, "properties", None)
        if properties:
            # SARIF property bag: profile-guided annotations (measured
            # wall-clock share of the enclosing span) ride along so CI
            # artifacts keep the hottest-first ranking evidence.
            result["properties"] = dict(properties)
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
