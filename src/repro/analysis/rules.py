"""The repo-specific lint rules.

Rule IDs are stable and gate-able:

* ``REP100`` — file does not parse (emitted by the engine itself).
* ``REP101`` — direct mutation of statistics fields outside ``sim/stats.py``.
* ``REP102`` — wall-clock time source inside the simulator package.
* ``REP103`` — unseeded random number generation inside the simulator.
* ``REP104`` — bare ``except:``.
* ``REP105`` — exception handler that silently swallows the exception.
* ``REP106`` — float equality comparison on cycle/energy quantities.
* ``REP107`` — public function in ``core``/``memory``/``texture`` missing
  type annotations.
* ``REP108`` — ``time.monotonic()`` call site outside ``repro.perf`` /
  ``repro.obs`` / ``repro.faults``; host-side timing goes through the
  tracing spans.
* ``REP109`` — bare ``map()``/``submit()`` on a process/thread pool
  outside ``repro.faults``; batch fan-out goes through the
  fault-tolerant ``repro.faults.run_fanout`` scheduler.

The REP200-series unit-aware dataflow rules (``bytes + cycles``,
degree/radian confusion, untagged public quantities, ...) live in
:mod:`repro.analysis.units`, and the REP300-series determinism /
worker-safety rules (nondeterminism taint into cache keys and
manifests, fork-unsafe global mutation, unpicklable task payloads,
order-sensitive parallel reductions, worker env reads) live in
:mod:`repro.analysis.determinism`; the REP400-series profile-guided
vectorization / numeric-parity rules (scalar loops on hot paths,
scalar ``math.*`` with numpy twins, float64 dtype creep, allocation
in loops, bit-identity hazards) live in
:mod:`repro.analysis.vectorize`.  All three engines are registered
here alongside the syntactic rules.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.analysis.determinism import (
    DETERMINISM_RULE_TABLE,
    DeterminismRule,
    determinism_rule_ids,
)
from repro.analysis.linter import LintContext, LintRule
from repro.analysis.units import UNIT_RULE_TABLE, UnitDataflowRule, unit_rule_ids
from repro.analysis.vectorize import (
    VECTORIZE_RULE_TABLE,
    VectorizeRule,
    vectorize_rule_ids,
)

# ---------------------------------------------------------------------------
# REP101 — statistics must be mutated through their own methods.
# ---------------------------------------------------------------------------

_STAT_FIELDS = frozenset({"value", "count", "total", "minimum", "maximum"})
_STATS_MODULE = "src/repro/sim/stats.py"


def _attribute_base_name(node: ast.expr) -> Optional[str]:
    """The root identifier of an attribute chain (``a`` in ``a.b.c``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class StatMutationRule(LintRule):
    """Counters/accumulators change via ``add()``/``observe()``, never by
    assigning their fields from the outside — the monotonicity guarantee
    lives in those methods."""

    rule_id = "REP101"
    name = "stat-mutation"
    description = (
        "no direct mutation of Counter/Accumulator fields outside sim/stats.py"
    )
    node_types = (ast.Assign, ast.AugAssign, ast.AnnAssign)

    def applies_to(self, ctx: LintContext) -> bool:
        return not ctx.path.endswith(_STATS_MODULE)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if isinstance(node, ast.Assign):
            targets: List[ast.expr] = []
            for target in node.targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    targets.extend(target.elts)
                else:
                    targets.append(target)
        else:
            targets = [node.target]  # type: ignore[attr-defined]
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            if target.attr not in _STAT_FIELDS:
                continue
            base = _attribute_base_name(target.value)
            if base in ("self", "cls"):
                continue  # a class maintaining its own internal fields
            ctx.report(
                self,
                target,
                f"direct mutation of statistic field '.{target.attr}'; "
                "use add()/observe()/reset() instead",
            )


# ---------------------------------------------------------------------------
# REP102 — no wall-clock time inside the simulator.
# ---------------------------------------------------------------------------

_TIME_MODULE_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "clock",
    }
)
_DATETIME_FACTORIES = frozenset({"now", "utcnow", "today"})
_DATETIME_BASES = frozenset({"datetime", "date"})


class WallClockRule(LintRule):
    """Simulated time comes from the event clock; wall-clock reads make
    results irreproducible run to run."""

    rule_id = "REP102"
    name = "wall-clock"
    description = "no time.time()/datetime.now() etc. inside src/repro/"
    node_types = (ast.Call,)

    def applies_to(self, ctx: LintContext) -> bool:
        # repro.perf is the benchmark harness, repro.obs the tracing
        # layer, repro.faults the retry/timeout scheduler, and
        # repro.serve the job server (uptime, job timestamps, queue
        # pacing): all four exist to measure or pace host wall-clock
        # time (never simulated time), so the rule would flag every
        # line they exist to write.
        if ctx.in_subpackages(("perf", "obs", "faults", "serve")):
            return False
        return ctx.is_sim_source

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        func = node.func  # type: ignore[attr-defined]
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if (
            isinstance(base, ast.Name)
            and base.id == "time"
            and func.attr in _TIME_MODULE_FUNCS
        ):
            ctx.report(self, node, f"wall-clock call time.{func.attr}()")
            return
        if func.attr in _DATETIME_FACTORIES:
            base_name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else None
            )
            if base_name in _DATETIME_BASES:
                ctx.report(
                    self, node, f"wall-clock call {base_name}.{func.attr}()"
                )


# ---------------------------------------------------------------------------
# REP103 — all randomness must be seeded.
# ---------------------------------------------------------------------------

_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "gauss",
        "normalvariate",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "betavariate",
        "expovariate",
        "triangular",
        "getrandbits",
        "randbytes",
    }
)
_NUMPY_LEGACY_FUNCS = frozenset(
    {
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "poisson",
        "exponential",
        "seed",
    }
)


class UnseededRandomRule(LintRule):
    """The simulator must be bit-for-bit deterministic: every RNG is a
    ``default_rng(seed)``/``Random(seed)`` instance, never a global."""

    rule_id = "REP103"
    name = "unseeded-rng"
    description = "no global/unseeded random or numpy.random inside src/repro/"
    node_types = (ast.Call,)

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.is_sim_source

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        func = node.func  # type: ignore[attr-defined]
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        # random.<func>() on the module-global RNG.
        if isinstance(base, ast.Name) and base.id == "random":
            if func.attr in _GLOBAL_RANDOM_FUNCS:
                ctx.report(
                    self, node, f"global random.{func.attr}() is unseeded state"
                )
            elif func.attr == "Random" and not node.args:  # type: ignore[attr-defined]
                ctx.report(self, node, "random.Random() created without a seed")
            return
        # default_rng() with no seed argument.
        if func.attr == "default_rng":
            call: ast.Call = node  # type: ignore[assignment]
            if not call.args and not any(k.arg == "seed" for k in call.keywords):
                ctx.report(self, node, "default_rng() created without a seed")
            return
        # np.random.<legacy>() on numpy's module-global RNG.
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in ("np", "numpy")
            and func.attr in _NUMPY_LEGACY_FUNCS
        ):
            ctx.report(
                self,
                node,
                f"legacy global numpy RNG np.random.{func.attr}(); "
                "use np.random.default_rng(seed)",
            )


# ---------------------------------------------------------------------------
# REP104 / REP105 — exception hygiene in and around the event loop.
# ---------------------------------------------------------------------------


class BareExceptRule(LintRule):
    """``except:`` catches SystemExit/KeyboardInterrupt and hides the
    conservation violations the invariant checker raises."""

    rule_id = "REP104"
    name = "bare-except"
    description = "no bare except: clauses"
    node_types = (ast.ExceptHandler,)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if node.type is None:  # type: ignore[attr-defined]
            ctx.report(self, node, "bare except: name the exception type")


def _is_silent_statement(stmt: ast.stmt) -> bool:
    if isinstance(stmt, ast.Pass):
        return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return stmt.value.value is Ellipsis
    return False


class SwallowedExceptionRule(LintRule):
    """A handler whose whole body is ``pass``/``...`` erases the error;
    at minimum it must record or re-raise."""

    rule_id = "REP105"
    name = "swallowed-exception"
    description = "no exception handlers that silently pass"
    node_types = (ast.ExceptHandler,)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        body = node.body  # type: ignore[attr-defined]
        if body and all(_is_silent_statement(stmt) for stmt in body):
            ctx.report(
                self, node, "exception swallowed silently; handle, log or re-raise"
            )


# ---------------------------------------------------------------------------
# REP106 — cycle/energy quantities never compare with == / !=.
# ---------------------------------------------------------------------------

_QUANTITY_KEYWORDS = (
    "cycle",
    "latency",
    "energy",
    "joule",
    "watt",
    "makespan",
    "elapsed",
    "_pj",
    "pj_",
)


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The identifier a comparator reads from, if any."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class FloatEqualityRule(LintRule):
    """Cycle counts and energies are accumulated floats; exact equality
    on them is a rounding bug waiting to happen."""

    rule_id = "REP106"
    name = "float-equality"
    description = (
        "no ==/!= comparisons on cycle/energy quantities; use math.isclose"
    )
    node_types = (ast.Compare,)

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.is_sim_source

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        compare: ast.Compare = node  # type: ignore[assignment]
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in compare.ops):
            return
        for comparator in [compare.left, *compare.comparators]:
            name = _terminal_name(comparator)
            if name is None:
                continue
            lowered = name.lower()
            if any(keyword in lowered for keyword in _QUANTITY_KEYWORDS):
                ctx.report(
                    self,
                    node,
                    f"float equality on quantity '{name}'; "
                    "compare with a tolerance (math.isclose)",
                )
                return


# ---------------------------------------------------------------------------
# REP107 — public API of the model packages is fully annotated.
# ---------------------------------------------------------------------------

_ANNOTATED_SUBPACKAGES = ("core", "memory", "texture")


class PublicAnnotationRule(LintRule):
    """The model packages are the reproduction's public API; annotations
    there are documentation the type checker can enforce."""

    rule_id = "REP107"
    name = "missing-annotations"
    description = (
        "public functions in core/, memory/ and texture/ carry type annotations"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_subpackages(_ANNOTATED_SUBPACKAGES)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        function: ast.FunctionDef = node  # type: ignore[assignment]
        if function.name.startswith("_"):
            return
        if function.returns is None:
            ctx.report(
                self,
                node,
                f"public function '{function.name}' missing return annotation",
            )
        args = function.args
        positional = [*args.posonlyargs, *args.args]
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                ctx.report(
                    self,
                    arg,
                    f"parameter '{arg.arg}' of public function "
                    f"'{function.name}' missing annotation",
                )
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                ctx.report(
                    self,
                    arg,
                    f"parameter '{arg.arg}' of public function "
                    f"'{function.name}' missing annotation",
                )


# ---------------------------------------------------------------------------
# REP108 — host-side timing goes through repro.obs, not raw monotonic reads.
# ---------------------------------------------------------------------------

_MONOTONIC_FUNCS = frozenset({"monotonic", "monotonic_ns"})


class MonotonicOutsideObsRule(LintRule):
    """Raw ``time.monotonic()`` reads scattered through the codebase are
    untraceable one-off timers; host phases are timed with
    ``repro.obs.span()``/``timed_stage`` so they land in run manifests
    and Chrome traces.  ``repro.perf`` (the benchmark harness),
    ``repro.obs`` itself and ``repro.faults`` (whose scheduler must
    measure task deadlines) are the only legitimate call sites."""

    rule_id = "REP108"
    name = "monotonic-outside-obs"
    description = (
        "time.monotonic() outside repro.perf/repro.obs/repro.faults; "
        "time host phases with repro.obs spans"
    )
    node_types = (ast.Call,)

    def applies_to(self, ctx: LintContext) -> bool:
        return not ctx.in_subpackages(("perf", "obs", "faults", "serve"))

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        func = node.func  # type: ignore[attr-defined]
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if (
            isinstance(base, ast.Name)
            and base.id == "time"
            and func.attr in _MONOTONIC_FUNCS
        ):
            ctx.report(
                self,
                node,
                f"raw time.{func.attr}() call; record host timing with "
                "repro.obs.span()/timed_stage so it reaches the manifest",
            )


# ---------------------------------------------------------------------------
# REP109 — batch fan-out goes through the fault-tolerant scheduler.
# ---------------------------------------------------------------------------

_POOL_METHODS = frozenset({"map", "submit"})
_POOL_NAME_HINTS = ("pool", "executor")


def _looks_like_pool(node: ast.expr) -> bool:
    """Whether an expression plausibly names a process/thread pool."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        else:
            return False
        return name.endswith(("PoolExecutor", "Pool"))
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return False
    lowered = name.lower()
    return any(hint in lowered for hint in _POOL_NAME_HINTS)


class BarePoolMapRule(LintRule):
    """``pool.map()`` abandons the whole batch when one worker dies and
    retries nothing; :func:`repro.faults.run_fanout` retries failed
    attempts, rebuilds broken pools and degrades to serial, so it is the
    one sanctioned way to fan batch work out (``repro.faults`` itself is
    the only module allowed to talk to the raw executor)."""

    rule_id = "REP109"
    name = "bare-pool-map"
    description = (
        "map()/submit() on a process/thread pool outside repro.faults; "
        "fan out through repro.faults.run_fanout"
    )
    node_types = (ast.Call,)

    def applies_to(self, ctx: LintContext) -> bool:
        return not ctx.in_subpackages(("faults",))

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        func = node.func  # type: ignore[attr-defined]
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _POOL_METHODS:
            return
        if _looks_like_pool(func.value):
            ctx.report(
                self,
                node,
                f"bare {func.attr}() on a process/thread pool; schedule "
                "batch work through repro.faults.run_fanout",
            )


DEFAULT_RULES: Tuple[LintRule, ...] = (
    StatMutationRule(),
    WallClockRule(),
    UnseededRandomRule(),
    BareExceptRule(),
    SwallowedExceptionRule(),
    FloatEqualityRule(),
    PublicAnnotationRule(),
    MonotonicOutsideObsRule(),
    BarePoolMapRule(),
    UnitDataflowRule(),
    DeterminismRule(),
    VectorizeRule(),
)

#: Engines owning a whole ID range each; excluded from the per-rule
#: listings and replaced by their ID tables.
_MULTI_ID_ENGINES = (UnitDataflowRule, DeterminismRule, VectorizeRule)


def rule_ids() -> List[str]:
    """The stable IDs of all default rules (excluding REP100).

    The unit dataflow engine is one rule object but owns the eight
    REP200-series IDs, and the determinism engine owns the five
    REP300-series IDs; they are all listed here.
    """
    ids = [
        rule.rule_id
        for rule in DEFAULT_RULES
        if not isinstance(rule, _MULTI_ID_ENGINES)
    ]
    ids.extend(unit_rule_ids())
    ids.extend(determinism_rule_ids())
    ids.extend(vectorize_rule_ids())
    return ids


def rule_catalog() -> List[Tuple[str, str, str]]:
    """``(rule_id, name, description)`` for every reportable rule.

    Includes REP100 (emitted by the engine on syntax errors) plus the
    REP200-series IDs owned by the unit dataflow engine and the
    REP300-series IDs owned by the determinism engine; used by the rule
    listing and the SARIF serializer.
    """
    catalog: List[Tuple[str, str, str]] = [
        ("REP100", "syntax-error", "file does not parse")
    ]
    for rule in DEFAULT_RULES:
        if isinstance(rule, _MULTI_ID_ENGINES):
            continue
        catalog.append((rule.rule_id, rule.name, rule.description))
    catalog.extend(UNIT_RULE_TABLE)
    catalog.extend(DETERMINISM_RULE_TABLE)
    catalog.extend(VECTORIZE_RULE_TABLE)
    return catalog


def describe_rules() -> str:
    """A one-line-per-rule listing for ``repro-lint --rules``."""
    return "\n".join(
        f"{rule_id} {name:19s} {description}"
        for rule_id, name, description in rule_catalog()
    )
