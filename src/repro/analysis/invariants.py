"""Runtime conservation invariants, validated at frame drain time.

Every headline number in the reproduction is a ratio of accumulated
counters, so the counters themselves must obey conservation laws:

* ``texel-balance`` — every texture request is served exactly once, and
  the A-TFIM offload pipeline's parent/child bookkeeping matches what
  the caches and the HMC actually saw;
* ``traffic-balance`` — bytes metered as external/internal traffic equal
  the bytes the links, vaults and the GDDR5 bus actually moved
  (request/response package symmetry);
* ``clock-monotonic`` — stage times are non-negative, the fragment-stage
  overlap rule stays within its bounds, and the texture makespan bounds
  every observed latency;
* ``energy-conserved`` — the energy total equals the sum of its
  components and no component is negative;
* ``cache-sanity`` — cache hit/miss accounting is internally consistent
  and hit rates stay inside [0, 1].

One further drain-time invariant operates on the functional sampler
rather than on a :class:`~repro.core.frontend.DesignRun`:

* ``batch-fetch-parity`` — the batched (numpy-vectorised) filtering
  kernels of :mod:`repro.texture.batch` produce bit-identical colors to
  the scalar oracle and touch exactly the same per-fragment texel sets
  (hence equal fetch counts).  The batched renderer validates a
  deterministic sample of every frame at drain time via
  :func:`check_batch_scalar_parity` when checking is enabled.

Checks run against a finished :class:`~repro.core.frontend.DesignRun`
(drain time: all events retired, all counters final).  Enable them with
``--check-invariants`` on the CLI or ``REPRO_CHECK_INVARIANTS=1`` in the
environment; the test suite enables them for every simulated frame.
"""

from __future__ import annotations

import dataclasses
import math
import os
from dataclasses import dataclass
from typing import Callable, Iterator, List

from repro.core.designs import Design
from repro.energy.model import EnergyModel
from repro.memory.traffic import TrafficClass

ENV_FLAG = "REPRO_CHECK_INVARIANTS"

_REL_TOL = 1e-9
_ABS_TOL = 1e-6


@dataclass(frozen=True)
class InvariantViolation:
    """One failed conservation assertion."""

    invariant: str
    message: str

    def format(self) -> str:
        return f"[{self.invariant}] {self.message}"


class InvariantError(AssertionError):
    """Raised when a simulated frame violates registered invariants."""

    def __init__(self, violations: List[InvariantViolation]) -> None:
        self.violations = violations
        lines = "\n".join(violation.format() for violation in violations)
        super().__init__(
            f"{len(violations)} simulator invariant violation(s):\n{lines}"
        )


InvariantFn = Callable[["object"], Iterator[str]]

_REGISTRY: List[tuple] = []


def invariant(name: str) -> Callable[[InvariantFn], InvariantFn]:
    """Register a conservation assertion under a stable name."""

    def register(fn: InvariantFn) -> InvariantFn:
        _REGISTRY.append((name, fn))
        return fn

    return register


def invariant_names() -> List[str]:
    return [name for name, _ in _REGISTRY]


def checks_enabled() -> bool:
    """Whether invariant checking is on by default (environment flag)."""
    # The flag only decides whether results are *validated*, never what
    # they are, so a worker-side read cannot skew any computed value.
    return os.environ.get(ENV_FLAG, "").lower() in ("1", "true", "on", "yes")  # repro: noqa(REP304) -- validation toggle, cannot alter results


def _close(left: float, right: float) -> bool:
    return math.isclose(left, right, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)


# ---------------------------------------------------------------------------
# texel-balance: requests in == responses out, across every pipeline.
# ---------------------------------------------------------------------------


@invariant("texel-balance")
def _check_texel_balance(run: "object") -> Iterator[str]:
    frame = run.frame
    activity = frame.path_activity
    served = activity.gpu_texture.requests + activity.memory_texture.requests
    if served != frame.num_requests:
        yield (
            f"texture units served {served} requests but the trace issued "
            f"{frame.num_requests}"
        )
    if frame.texture_latency.count != frame.num_requests:
        yield (
            f"latency histogram recorded {frame.texture_latency.count} "
            f"completions for {frame.num_requests} requests"
        )
    path = run.path
    if hasattr(path, "parent_reuses"):  # the A-TFIM offload pipeline
        classified = (
            path.parent_reuses + path.parent_recalculations + path.parent_cold_misses
        )
        stats = frame.cache_stats
        if classified != stats.l1_accesses:
            yield (
                f"A-TFIM classified {classified} parent texels but the L1s "
                f"saw {stats.l1_accesses} accesses"
            )
        if path.child_lines_fetched != path.hmc.internal_reads:
            yield (
                f"A-TFIM fetched {path.child_lines_fetched} child lines but "
                f"the HMC served {path.hmc.internal_reads} internal reads"
            )
        if path.child_lines_fetched > path.child_texels_generated:
            yield (
                f"A-TFIM fetched {path.child_lines_fetched} child lines for "
                f"only {path.child_texels_generated} generated child texels"
            )


# ---------------------------------------------------------------------------
# traffic-balance: metered bytes equal transported bytes.
# ---------------------------------------------------------------------------


@invariant("traffic-balance")
def _check_traffic_balance(run: "object") -> Iterator[str]:
    frame = run.frame
    traffic = frame.traffic
    for meter_name, meter in (("external", traffic.external),
                              ("internal", traffic.internal)):
        for traffic_class in TrafficClass:
            nbytes = meter[traffic_class]
            if nbytes < 0:
                yield (
                    f"negative {meter_name} byte count for "
                    f"{traffic_class.value}: {nbytes}"
                )
    path = run.path
    hmc = getattr(path, "hmc", None)
    if hmc is not None:
        if not _close(traffic.external_texture, hmc.external_bytes):
            yield (
                f"metered {traffic.external_texture} external texture bytes "
                f"but the HMC links moved {hmc.external_bytes}"
            )
        if run.config.design.filters_in_memory and not _close(
            traffic.internal_total, hmc.internal_bytes
        ):
            yield (
                f"metered {traffic.internal_total} internal bytes but the "
                f"HMC vaults moved {hmc.internal_bytes}"
            )
    gddr5 = getattr(path, "gddr5", None)
    if gddr5 is not None:
        packets = run.config.packets
        overhead = gddr5.reads * (
            packets.read_request_bytes + packets.header_bytes
        )
        transported = gddr5.total_bytes + overhead
        if not _close(traffic.external_texture, transported):
            yield (
                f"metered {traffic.external_texture} external texture bytes "
                f"but the GDDR5 bus moved {transported} "
                f"(payload {gddr5.total_bytes} + package overhead {overhead})"
            )


# ---------------------------------------------------------------------------
# clock-monotonic: the event clock never runs backwards.
# ---------------------------------------------------------------------------


@invariant("clock-monotonic")
def _check_clock_monotonic(run: "object") -> Iterator[str]:
    stages = run.frame.stages
    for stage_name in ("geometry", "rasterization", "shader", "texture",
                       "rop", "fragment_stage"):
        cycles = getattr(stages, stage_name)
        if cycles < 0:
            yield f"stage '{stage_name}' has negative duration {cycles}"
    parts = [stages.shader, stages.texture, stages.rop]
    slack = _ABS_TOL + _REL_TOL * sum(parts)
    if stages.fragment_stage < max(parts) - slack:
        yield (
            f"fragment stage {stages.fragment_stage} shorter than its "
            f"longest component {max(parts)}"
        )
    if stages.fragment_stage > sum(parts) + slack:
        yield (
            f"fragment stage {stages.fragment_stage} longer than the serial "
            f"sum of its components {sum(parts)}"
        )
    histogram = run.frame.texture_latency
    if histogram.max_latency < 0:
        yield f"negative max texture latency {histogram.max_latency}"
    if stages.texture < histogram.max_latency - slack:
        yield (
            f"texture makespan {stages.texture} below the largest observed "
            f"latency {histogram.max_latency}: a completion preceded an issue"
        )


# ---------------------------------------------------------------------------
# energy-conserved: the total is exactly the sum of its parts.
# ---------------------------------------------------------------------------


@invariant("energy-conserved")
def _check_energy_conserved(run: "object") -> Iterator[str]:
    breakdown = EnergyModel().frame_energy(run.config.design, run.frame)
    yield from check_energy_breakdown(breakdown)


def check_energy_breakdown(breakdown: "object") -> Iterator[str]:
    """Validate one :class:`EnergyBreakdown` against conservation.

    Split out so that drifted breakdowns (e.g. a component field added
    without updating ``total``) are unit-testable in isolation.
    """
    component_sum = 0.0
    for field in dataclasses.fields(breakdown):
        joules = getattr(breakdown, field.name)
        if joules < 0:
            yield f"negative energy component '{field.name}': {joules} J"
        component_sum += joules
    if not _close(breakdown.total, component_sum):
        yield (
            f"energy total {breakdown.total} J != sum of components "
            f"{component_sum} J"
        )
    reported = breakdown.as_dict()
    reported_sum = sum(
        joules for key, joules in reported.items() if key != "total"
    )
    if not _close(reported.get("total", 0.0), reported_sum):
        yield (
            f"reported energy total {reported.get('total')} J != sum of "
            f"reported components {reported_sum} J"
        )


# ---------------------------------------------------------------------------
# cache-sanity: hit/miss accounting stays internally consistent.
# ---------------------------------------------------------------------------


@invariant("cache-sanity")
def _check_cache_sanity(run: "object") -> Iterator[str]:
    stats = run.frame.cache_stats
    for counter_name in ("l1_hits", "l1_misses", "l1_angle_misses",
                         "l2_hits", "l2_misses"):
        count = getattr(stats, counter_name)
        if count < 0:
            yield f"negative cache counter '{counter_name}': {count}"
    if not 0.0 <= stats.l1_hit_rate <= 1.0:
        yield f"L1 hit rate {stats.l1_hit_rate} outside [0, 1]"
    activity = run.frame.path_activity
    expected_l2 = stats.l1_misses + stats.l1_angle_misses
    if activity.l2_accesses != expected_l2:
        yield (
            f"recorded {activity.l2_accesses} L2 accesses but the L1s "
            f"forwarded {expected_l2} misses"
        )
    l2_outcomes = stats.l2_hits + stats.l2_misses
    if l2_outcomes > expected_l2:
        yield (
            f"L2 recorded {l2_outcomes} outcomes for {expected_l2} "
            "forwarded L1 misses"
        )


# ---------------------------------------------------------------------------
# batch-fetch-parity: the vectorised sampler matches the scalar oracle.
# ---------------------------------------------------------------------------

BATCH_PARITY_INVARIANT = "batch-fetch-parity"


def check_batch_scalar_parity(
    entries: List[tuple], raise_on_violation: bool = True
) -> List[InvariantViolation]:
    """Validate batch-vs-scalar sampler parity for a sampled fragment set.

    ``entries`` holds one tuple per checked fragment:
    ``(request_index, batch_color, scalar_color, batch_texels,
    scalar_texels)`` where the colors are RGBA vectors and the texel
    collections are the deduplicated ``(level, x, y)`` fetch sets of
    each path.  A violation is reported when colors differ in any bit
    or the fetch sets (and therefore the fetch counts the cycle model
    bills for) diverge.
    """
    violations: List[InvariantViolation] = []
    for index, batch_color, scalar_color, batch_texels, scalar_texels in entries:
        if tuple(batch_color) != tuple(scalar_color):
            violations.append(
                InvariantViolation(
                    invariant=BATCH_PARITY_INVARIANT,
                    message=(
                        f"request {index}: batch color {tuple(batch_color)} "
                        f"!= scalar color {tuple(scalar_color)}"
                    ),
                )
            )
        if len(batch_texels) != len(scalar_texels):
            violations.append(
                InvariantViolation(
                    invariant=BATCH_PARITY_INVARIANT,
                    message=(
                        f"request {index}: batch path fetched "
                        f"{len(batch_texels)} unique texels but the scalar "
                        f"path fetched {len(scalar_texels)}"
                    ),
                )
            )
        elif set(batch_texels) != set(scalar_texels):
            extra = sorted(set(batch_texels) - set(scalar_texels))[:4]
            missing = sorted(set(scalar_texels) - set(batch_texels))[:4]
            violations.append(
                InvariantViolation(
                    invariant=BATCH_PARITY_INVARIANT,
                    message=(
                        f"request {index}: fetch sets diverge "
                        f"(batch-only {extra}, scalar-only {missing})"
                    ),
                )
            )
    if violations and raise_on_violation:
        raise InvariantError(violations)
    return violations


# ---------------------------------------------------------------------------
# Runner.
# ---------------------------------------------------------------------------


def check_run(run: "object", raise_on_violation: bool = True) -> List[InvariantViolation]:
    """Validate one finished design run against every invariant.

    ``run`` is any object with the :class:`DesignRun` surface
    (``config``, ``frame``, ``path``).  Returns the violation list; with
    ``raise_on_violation`` (the default) a non-empty list raises
    :class:`InvariantError` instead.
    """
    violations: List[InvariantViolation] = []
    for name, fn in _REGISTRY:
        for message in fn(run):
            violations.append(InvariantViolation(invariant=name, message=message))
    if violations and raise_on_violation:
        raise InvariantError(violations)
    return violations
