"""Simulator correctness toolkit: custom lint rules + runtime invariants.

Two halves, one goal — keeping the reproduction's conservation laws
checkable by machines instead of reviewers:

* :mod:`repro.analysis.linter` / :mod:`repro.analysis.rules` — an
  AST-based lint pass with repo-specific rules (stat-counter discipline,
  simulation determinism, exception hygiene, float-equality on cycle and
  energy quantities, annotation coverage).  Run it with
  ``python -m repro.analysis lint`` (or the ``repro-lint`` script); it
  exits nonzero on violations so CI can gate on it.

* :mod:`repro.analysis.invariants` — runtime conservation assertions the
  simulator validates at frame drain time (texel request/response
  balance, link byte symmetry, clock monotonicity, energy conservation).
  Enable with ``--check-invariants`` on the CLI, the
  ``REPRO_CHECK_INVARIANTS`` environment variable, or per call via
  ``simulate_frame(..., check_invariants=True)``; the test suite turns
  them on by default.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    filter_new,
    load_baseline,
    merge_baseline,
    scope_baseline,
    write_baseline,
)
from repro.analysis.determinism import (
    DeterminismRule,
    determinism_rule_ids,
    static_determinism_attestation,
)
from repro.analysis.findings import Finding
from repro.analysis.hotspots import SpanProfile, rank_findings
from repro.analysis.invariants import (
    InvariantError,
    InvariantViolation,
    check_run,
    checks_enabled,
    invariant_names,
)
from repro.analysis.linter import Linter, lint_paths, lint_source, lint_sources
from repro.analysis.rules import DEFAULT_RULES, rule_ids
from repro.analysis.vectorize import VectorizeRule, vectorize_rule_ids

__all__ = [
    "DEFAULT_RULES",
    "DeterminismRule",
    "Finding",
    "InvariantError",
    "InvariantViolation",
    "Linter",
    "SpanProfile",
    "VectorizeRule",
    "check_run",
    "checks_enabled",
    "determinism_rule_ids",
    "filter_new",
    "invariant_names",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "load_baseline",
    "merge_baseline",
    "rank_findings",
    "rule_ids",
    "scope_baseline",
    "static_determinism_attestation",
    "vectorize_rule_ids",
    "write_baseline",
]
