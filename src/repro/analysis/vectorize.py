"""Profile-guided vectorization & numeric-parity analysis: REP400 family.

BENCH_sampling.json shows the batched filtering kernels gained 13-34x
from numpy batching while the trace phase got only 2.5-2.8x: the
remaining scalar hot path (the rasterizer fragment loop, per-fragment
``math.acos``, event-at-a-time scheduling) is now the bottleneck the
ROADMAP names.  This engine finds those sites *systematically* instead
of by hand, and -- uniquely among the REP families -- can rank its
findings by measured wall-clock share when handed a
``repro-run-manifest/1`` span tree (``--profile MANIFEST``).

``REP400``
    per-element Python ``for``/``while`` loops over ndarray or
    fragment sequences inside *hot* functions -- anything reachable
    from ``simulate_frame``, the rasterizer entry points or a
    ``BatchSampler`` method.  Reachability reuses the REP300
    call-graph ``prepare()`` machinery
    (:func:`~repro.analysis.determinism.harvest_model` /
    :func:`~repro.analysis.determinism.reachable_from`).
``REP401``
    scalar ``math.*`` calls inside such loops where a numpy
    equivalent exists.  The message distinguishes *exact* equivalents
    (``np.floor``/``np.rint``/``np.ldexp``/``np.sqrt``... -- the
    ``texture/batch.py`` precedent, bit-identical to libm) from
    *last-ulp* transcendentals (``np.arccos``/``np.exp``/... -- SIMD
    kernels that may differ in the last ulp, so vectorizing them
    needs a parity check first).
``REP402``
    float64 dtype creep: untyped ``np.array``/``np.zeros``
    allocations in functions that otherwise work in float32, and
    Python-float in-place broadcasts into float32 arrays (both
    silently promote and double memory traffic -- the PIM bandwidth
    model cares).
``REP403``
    allocation inside a hot loop: ``np.*`` constructors per
    iteration, or list-appends later converted with
    ``np.array``/``np.stack`` (build the array once instead).
``REP404``
    bit-identity hazards that would break the SoA scalar-oracle
    parity contract: reassociated reductions (``np.sum`` replacing
    ordered accumulation), in-place ops on aliased views, and
    scatter stores through integer index arrays (duplicate indices
    make ``a[idx] += v`` drop updates).

Findings are suppressable per line with
``# repro: noqa(REP40x) -- justification``; the annotated sites in
``render/raster.py``, ``texture/batch.py`` and ``gpu/pipeline.py``
document why each surviving scalar loop is sound (scalar oracles,
event-ordered semantics, parity-forbidden transcendentals).

The pass is conservative on purpose: loops only fire when the
iterable carries *array evidence* (an ``np.*`` result, an
``np.ndarray``-annotated parameter, or a name from the fragment/event
vocabulary), so ordinary Python iteration in cold code stays quiet.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.determinism import (
    _FunctionRecord,
    _ProjectModel,
    harvest_model,
    reachable_from,
)
from repro.analysis.linter import LintContext, LintRule

VECTORIZE_RULE_TABLE: Tuple[Tuple[str, str, str], ...] = (
    ("REP400", "scalar-loop-on-hot-path",
     "no per-element Python for/while loops over ndarray or fragment "
     "sequences in functions reachable from simulate_frame / the "
     "rasterizer / BatchSampler entry points"),
    ("REP401", "scalar-math-in-hot-loop",
     "no scalar math.* calls inside hot-path element loops where a "
     "numpy equivalent exists (np.ldexp/np.rint/np.floor precedent)"),
    ("REP402", "float64-dtype-creep",
     "no untyped np.array/np.zeros allocations or Python-float "
     "broadcasts promoting float32 hot-path arrays to float64"),
    ("REP403", "allocation-in-hot-loop",
     "no np.* constructor calls or list-append-then-convert patterns "
     "inside hot-path loops"),
    ("REP404", "bit-identity-hazard",
     "no reassociated reductions, aliased in-place view updates or "
     "integer-scatter stores that can break the SoA scalar-oracle "
     "parity contract"),
)

#: Hot roots: the frame entry point, the trace-only frontend, and the
#: rasterizer scene walk, by simple name ...
_HOT_ENTRY_FUNCTIONS = frozenset({
    "simulate_frame", "simulate_sequence", "rasterize_scene", "trace_only",
})
#: ... plus every method of the batched-sampler / rasterizer classes,
#: whose whole public surface is per-frame hot.
_HOT_ENTRY_CLASSES = frozenset({"BatchSampler", "Rasterizer"})

#: Iterable names that denote per-element fragment/request streams even
#: without dataflow evidence (the AoS side of the SoA split).
_FRAGMENT_HINTS = frozenset({
    "fragments", "fragment_list", "requests", "texels", "samples",
})
#: ``while`` tests over these names are event-at-a-time scheduling
#: loops -- the `repro.sim`/`repro.memory` shape the ROADMAP names.
_QUEUE_HINTS = frozenset({
    "heap", "queue", "events", "pending", "backlog", "worklist",
})

#: math.* functions with an exact numpy twin: integer-rounding and
#: scaling operations IEEE-754 defines exactly, plus correctly-rounded
#: sqrt.  Vectorizing these is bit-identity-safe (texture/batch.py
#: uses np.ldexp/np.rint/np.floor for exactly this reason).
_MATH_EXACT = frozenset({
    "floor", "ceil", "trunc", "sqrt", "fabs", "copysign", "ldexp",
    "frexp", "fmod", "remainder",
})
#: math.* transcendentals whose numpy twin is a SIMD kernel that may
#: differ from libm in the last ulp -- vectorizable only behind a
#: measured parity check.  PARITY_math.json (written next to the bench
#: manifests by ``python -m repro bench`` via repro.perf.parity) records
#: the measured divergence: ~9% of acos inputs, ~0.6% of hypot, ~0.03%
#: of log2 differ from libm by one ulp on this toolchain, while numpy
#: itself is batch-invariant -- which is why repro.texture.npmath
#: canonicalises on the ufunc for both the scalar oracle and the batch.
_MATH_LAST_ULP = frozenset({
    "acos", "asin", "atan", "atan2", "cos", "sin", "tan", "exp", "expm1",
    "log", "log2", "log10", "log1p", "pow", "hypot", "cosh", "sinh",
    "tanh", "erf", "erfc",
})

#: np.* constructors that materialise a fresh buffer every call.
_NP_LOOP_ALLOCATORS = frozenset({
    "array", "zeros", "ones", "empty", "full", "zeros_like", "ones_like",
    "empty_like", "full_like", "concatenate", "stack", "hstack", "vstack",
    "column_stack", "append", "tile", "repeat", "copy",
})
#: np.* constructors whose missing dtype= silently means float64.
_NP_DTYPE_DEFAULTING = frozenset({
    "array", "zeros", "ones", "empty", "full", "arange", "linspace",
})
#: np.* conversion entry points for the list-append-then-convert shape.
_NP_LIST_CONVERTERS = frozenset({"array", "asarray", "stack", "concatenate"})

#: np.* reductions that reassociate float addition/multiplication.
_NP_REASSOC_REDUCTIONS = frozenset({
    "sum", "prod", "dot", "matmul", "inner", "vdot", "einsum", "nansum",
    "cumsum", "cumprod", "trace",
})
_REASSOC_METHODS = frozenset({"sum", "prod", "dot", "cumsum", "cumprod"})

#: np.* calls whose result is an ndarray (for dataflow evidence).
_NP_ARRAY_RETURNING = _NP_LOOP_ALLOCATORS | _NP_DTYPE_DEFAULTING | frozenset({
    "asarray", "ascontiguousarray", "where", "nonzero", "unique", "sort",
    "argsort", "clip", "abs", "minimum", "maximum", "floor", "ceil",
    "rint", "sqrt", "exp", "log", "log2", "sin", "cos", "arccos",
    "arcsin", "arctan2", "power", "mod", "ldexp", "diff", "cumsum",
    "meshgrid", "broadcast_to", "take", "choose", "searchsorted",
})

# Evidence kinds carried through expression evaluation.
_ARRAY = "array"          # an ndarray (dtype unknown)
_F32 = "float32-array"    # an ndarray known to be float32
_BOOL = "bool-array"      # a boolean mask (comparisons); reductions OK
_VIEW = "view"            # an aliased view of another array
_LIST = "list"            # a Python list literal (append-convert shape)

_ARRAYISH = (_ARRAY, _F32, _BOOL, _VIEW)


def vectorize_rule_ids() -> List[str]:
    """The REP400-series rule IDs, in numeric order."""
    return [rule_id for rule_id, _name, _description in VECTORIZE_RULE_TABLE]


# ---------------------------------------------------------------------------
# prepare(): hot-path reachability over the shared call graph
# ---------------------------------------------------------------------------


def _hot_keys(model: _ProjectModel) -> Set[Tuple[str, str]]:
    return reachable_from(model, _HOT_ENTRY_FUNCTIONS, _HOT_ENTRY_CLASSES)


# ---------------------------------------------------------------------------
# small AST helpers
# ---------------------------------------------------------------------------


def _terminal_name(expr: ast.expr) -> Optional[str]:
    """``fragments`` from ``fragments`` or ``self.trace.fragments``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _np_func(call: ast.Call) -> Optional[str]:
    """``attr`` when the call is ``np.attr(...)`` / ``numpy.attr(...)``."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
            and func.value.id in ("np", "numpy"):
        return func.attr
    return None


def _math_func(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
            and func.value.id == "math":
        return func.attr
    return None


def _dtype_mentions_float32(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "float32":
            return True
        if isinstance(node, ast.Name) and node.id == "float32":
            return True
        if isinstance(node, ast.Constant) and node.value == "float32":
            return True
    return False


def _call_dtype(call: ast.Call) -> Optional[str]:
    """'float32' / 'other' / None(absent) for a call's dtype= keyword."""
    for kw in call.keywords:
        if kw.arg == "dtype":
            return "float32" if _dtype_mentions_float32(kw.value) else "other"
    return None


def _annotation_is_ndarray(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Attribute) and node.attr == "ndarray":
            return True
        if isinstance(node, ast.Name) and node.id == "ndarray":
            return True
        if isinstance(node, ast.Constant) \
                and isinstance(node.value, str) and "ndarray" in node.value:
            return True
    return False


def _has_float_constant(expr: ast.expr) -> bool:
    return any(isinstance(node, ast.Constant) and isinstance(node.value, float)
               for node in ast.walk(expr))


# ---------------------------------------------------------------------------
# per-function scan
# ---------------------------------------------------------------------------


class _FunctionScan:
    """Evidence-tracking walk of one hot function's body."""

    def __init__(self, ctx: LintContext, qualname: str) -> None:
        self.ctx = ctx
        self.where = qualname
        self.env: Dict[str, str] = {}
        self.loop_depth = 0       # element loops (REP401/REP403 context)
        self.plain_loop_depth = 0  # any loop (append-convert tracking)
        self.comp_depth = 0
        self.appended_lists: Set[str] = set()
        self.uses_float32 = False

    # -- entry ----------------------------------------------------------

    def scan(self, node: ast.AST) -> None:
        args = node.args  # type: ignore[attr-defined]
        for param in [*getattr(args, "posonlyargs", []), *args.args,
                      *args.kwonlyargs]:
            if _annotation_is_ndarray(param.annotation):
                self.env[param.arg] = _ARRAY
        body = node.body  # type: ignore[attr-defined]
        self.uses_float32 = any(_dtype_mentions_float32(stmt)
                                for stmt in body)
        self.run(body)

    def rep(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.ctx.report_id(rule_id, node, message)

    def run(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.stmt(stmt)

    # -- statements -----------------------------------------------------

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs are separate records, scanned separately
        if isinstance(node, ast.Assign):
            self._assign(node.targets, node.value, node)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign([node.target], node.value, node)
            elif isinstance(node.target, ast.Name) \
                    and _annotation_is_ndarray(node.annotation):
                self.env[node.target.id] = _ARRAY
        elif isinstance(node, ast.AugAssign):
            self._aug_assign(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._for(node)
        elif isinstance(node, ast.While):
            self._while(node)
        elif isinstance(node, ast.If):
            self.expr(node.test)
            self.run(node.body)
            self.run(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self.expr(item.context_expr)
            self.run(node.body)
        elif isinstance(node, ast.Try):
            self.run(node.body)
            for handler in node.handlers:
                self.run(handler.body)
            self.run(node.orelse)
            self.run(node.finalbody)
        elif isinstance(node, ast.Return):
            self.expr(node.value)
        elif isinstance(node, ast.Expr):
            self.expr(node.value)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self.stmt(child)
                elif isinstance(child, ast.expr):
                    self.expr(child)

    # -- assignment & evidence binding ----------------------------------

    def _assign(self, targets: Sequence[ast.expr], value: ast.expr,
                node: ast.stmt) -> None:
        # `a, b = x[m], y[m]`: evidence flows element-wise, before the
        # names rebind (the masked-reassignment idiom in the batched
        # emission paths).
        paired = None
        if len(targets) == 1 and isinstance(targets[0], (ast.Tuple, ast.List)) \
                and isinstance(value, (ast.Tuple, ast.List)) \
                and len(targets[0].elts) == len(value.elts):
            paired = [self.expr(elt) for elt in value.elts]
        tag = self.expr(value) if paired is None else None
        for target in targets:
            if isinstance(target, ast.Name):
                if tag is None:
                    self.env.pop(target.id, None)
                else:
                    self.env[target.id] = tag
            elif isinstance(target, (ast.Tuple, ast.List)):
                if paired is not None:
                    tags = paired
                else:
                    # `rows, cols = np.nonzero(mask)`: each name an array.
                    elt_tag = tag if tag in _ARRAYISH else None
                    tags = [elt_tag] * len(target.elts)
                for elt, elt_tag in zip(target.elts, tags):
                    if isinstance(elt, ast.Name):
                        if elt_tag is None:
                            self.env.pop(elt.id, None)
                        else:
                            self.env[elt.id] = elt_tag
            elif isinstance(target, ast.Subscript):
                self._subscript_store(target, value, node, augmented=False)

    def _aug_assign(self, node: ast.AugAssign) -> None:
        self.expr(node.value)
        target = node.target
        if isinstance(target, ast.Name):
            evidence = self.env.get(target.id)
            if evidence == _VIEW:
                self.rep("REP404", node,
                         f"in-place update of view '{target.id}' in "
                         f"'{self.where}' writes through to the aliased "
                         "base array; the scalar oracle sees the "
                         "pre-update values -- materialise a copy before "
                         "mutating")
            elif evidence == _F32 and (
                    _has_float_constant(node.value)
                    or self.expr(node.value) == _ARRAY):
                self.rep("REP402", node,
                         f"float32 array '{target.id}' updated in-place "
                         f"with a float64 operand in '{self.where}'; the "
                         "broadcast quietly computes in float64 -- cast "
                         "the operand with np.float32(...) first")
        elif isinstance(target, ast.Subscript):
            self._subscript_store(target, node.value, node, augmented=True)

    def _subscript_store(self, target: ast.Subscript, value: ast.expr,
                         node: ast.stmt, augmented: bool) -> None:
        base = _terminal_name(target.value)
        index_names = [
            n.id for n in ast.walk(target.slice)
            if isinstance(n, ast.Name)
            and self.env.get(n.id) in (_ARRAY, _F32, _VIEW)
        ]
        if base is not None and index_names:
            idx = index_names[0]
            if augmented:
                self.rep("REP404", node,
                         f"in-place scatter '{base}[{idx}] op=' in "
                         f"'{self.where}' drops updates on duplicate "
                         "indices (numpy buffers the read); use "
                         "np.add.at or prove the index array unique")
            else:
                self.rep("REP404", node,
                         f"scatter store through integer index array "
                         f"'{idx}' into '{base}' in '{self.where}'; "
                         "duplicate indices make the last write win in "
                         "buffer order, not fragment order -- prove the "
                         "indices unique or scatter via np.minimum.at")

    # -- loops ----------------------------------------------------------

    def _iter_verdict(self, expr: ast.expr) -> Optional[str]:
        """Why this iterable is per-element hot-path work, if it is."""
        term = _terminal_name(expr)
        if term is not None:
            if term in _FRAGMENT_HINTS:
                return f"fragment sequence '{term}'"
            if self.env.get(term) in _ARRAYISH:
                return f"ndarray '{term}'"
        if isinstance(expr, ast.Call):
            fname = _terminal_name(expr.func)
            if fname == "enumerate" and expr.args:
                return self._iter_verdict(expr.args[0])
            if fname == "zip":
                for arg in expr.args:
                    verdict = self._iter_verdict(arg)
                    if verdict is not None:
                        return verdict
            if fname == "range":
                for bound in expr.args:
                    if isinstance(bound, ast.Call) \
                            and _terminal_name(bound.func) == "len" \
                            and bound.args:
                        inner = _terminal_name(bound.args[0])
                        if inner is not None and (
                                self.env.get(inner) in _ARRAYISH
                                or inner in _FRAGMENT_HINTS):
                            return f"range(len({inner})) over an ndarray"
        return None

    def _for(self, node: ast.stmt) -> None:
        iter_expr = node.iter  # type: ignore[attr-defined]
        verdict = self._iter_verdict(iter_expr)
        if verdict is not None:
            self.rep("REP400", node,
                     f"per-element loop over {verdict} in '{self.where}' "
                     "on the hot path; batch it with numpy array "
                     "operations (SoA) behind the bit-identity parity "
                     "gate")
        self.expr(iter_expr)
        target = node.target  # type: ignore[attr-defined]
        for name_node in ast.walk(target):
            if isinstance(name_node, ast.Name):
                self.env.pop(name_node.id, None)
        in_element_loop = verdict is not None
        self.loop_depth += 1 if in_element_loop else 0
        self.plain_loop_depth += 1
        try:
            self.run(node.body)  # type: ignore[attr-defined]
            self.run(node.orelse)  # type: ignore[attr-defined]
        finally:
            self.loop_depth -= 1 if in_element_loop else 0
            self.plain_loop_depth -= 1

    def _while(self, node: ast.While) -> None:
        queue_name = next(
            (name for name in (
                _terminal_name(child) for child in ast.walk(node.test))
             if name in _QUEUE_HINTS),
            None,
        )
        if queue_name is not None:
            self.rep("REP400", node,
                     f"event-at-a-time while loop over '{queue_name}' in "
                     f"'{self.where}' on the hot path; consider batching "
                     "ready events per timestamp into array operations")
        self.expr(node.test)
        self.loop_depth += 1 if queue_name is not None else 0
        self.plain_loop_depth += 1
        try:
            self.run(node.body)
            self.run(node.orelse)
        finally:
            self.loop_depth -= 1 if queue_name is not None else 0
            self.plain_loop_depth -= 1

    @property
    def in_loop(self) -> bool:
        return self.plain_loop_depth > 0

    # -- expressions ----------------------------------------------------

    def expr(self, node: Optional[ast.expr]) -> Optional[str]:
        if node is None:
            return None
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            self.expr(node.value)
            return None
        if isinstance(node, ast.Subscript):
            base = self.expr(node.value)
            self.expr(node.slice)
            if base in _ARRAYISH:
                if any(isinstance(n, ast.Slice) for n in ast.walk(node.slice)):
                    return _VIEW
                index_arrayish = any(
                    isinstance(n, ast.Name)
                    and self.env.get(n.id) in _ARRAYISH
                    for n in ast.walk(node.slice)
                )
                if index_arrayish:
                    return _F32 if base == _F32 else _ARRAY
            return None
        if isinstance(node, ast.BinOp):
            left = self.expr(node.left)
            right = self.expr(node.right)
            sides = (left, right)
            if any(tag in _ARRAYISH for tag in sides):
                if left == _F32 and right in (_F32, None):
                    return _F32
                if right == _F32 and left in (_F32, None):
                    return _F32
                return _ARRAY
            return None
        if isinstance(node, ast.Compare):
            left = self.expr(node.left)
            tags = [self.expr(comp) for comp in node.comparators]
            if left in _ARRAYISH or any(tag in _ARRAYISH for tag in tags):
                return _BOOL
            return None
        if isinstance(node, ast.BoolOp):
            tags = [self.expr(value) for value in node.values]
            if any(tag in _ARRAYISH for tag in tags):
                return _BOOL
            return None
        if isinstance(node, ast.UnaryOp):
            return self.expr(node.operand)
        if isinstance(node, ast.IfExp):
            self.expr(node.test)
            body = self.expr(node.body)
            orelse = self.expr(node.orelse)
            return body or orelse
        if isinstance(node, ast.List):
            for elt in node.elts:
                self.expr(elt)
            return _LIST
        if isinstance(node, (ast.Tuple, ast.Set)):
            for elt in node.elts:
                self.expr(elt)
            return None
        if isinstance(node, ast.Dict):
            for value in [*node.keys, *node.values]:
                if value is not None:
                    self.expr(value)
            return None
        if isinstance(node, (ast.ListComp, ast.GeneratorExp,
                             ast.SetComp, ast.DictComp)):
            return self._comprehension(node)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                self.expr(value)
            return None
        if isinstance(node, ast.FormattedValue):
            self.expr(node.value)
            return None
        if isinstance(node, ast.NamedExpr):
            tag = self.expr(node.value)
            if isinstance(node.target, ast.Name):
                if tag is None:
                    self.env.pop(node.target.id, None)
                else:
                    self.env[node.target.id] = tag
            return tag
        if isinstance(node, (ast.Starred, ast.Await)):
            return self.expr(node.value)
        if isinstance(node, ast.Slice):
            self.expr(node.lower)
            self.expr(node.upper)
            self.expr(node.step)
            return None
        if isinstance(node, ast.Lambda):
            return None
        return None

    def _comprehension(self, node: ast.expr) -> Optional[str]:
        """Element comprehensions count as loops for REP401 only.

        A listcomp building per-fragment scalars is the same scalar
        bottleneck as a ``for`` statement, but it is also the idiomatic
        *fix* for REP403 (allocate once), so only the scalar-math rule
        fires inside it.
        """
        element_comp = False
        for gen in node.generators:  # type: ignore[attr-defined]
            verdict = self._iter_verdict(gen.iter)
            self.expr(gen.iter)
            if verdict is not None:
                element_comp = True
            for name_node in ast.walk(gen.target):
                if isinstance(name_node, ast.Name):
                    self.env.pop(name_node.id, None)
            for cond in gen.ifs:
                self.expr(cond)
        self.comp_depth += 1 if element_comp else 0
        try:
            if isinstance(node, ast.DictComp):
                self.expr(node.key)
                self.expr(node.value)
            else:
                self.expr(node.elt)  # type: ignore[attr-defined]
        finally:
            self.comp_depth -= 1 if element_comp else 0
        if isinstance(node, ast.ListComp):
            return _LIST
        return None

    # -- calls ----------------------------------------------------------

    def _call(self, node: ast.Call) -> Optional[str]:
        for arg in node.args:
            self.expr(arg)
        for kw in node.keywords:
            self.expr(kw.value)

        in_element_ctx = self.loop_depth > 0 or self.comp_depth > 0

        math_fn = _math_func(node)
        if math_fn is not None and in_element_ctx:
            if math_fn in _MATH_EXACT:
                self.rep("REP401", node,
                         f"scalar math.{math_fn}() per element in "
                         f"'{self.where}'; np.{math_fn} is bit-identical "
                         "to libm here (texture/batch.py precedent) -- "
                         "vectorize it")
            elif math_fn in _MATH_LAST_ULP:
                self.rep("REP401", node,
                         f"scalar math.{math_fn}() per element in "
                         f"'{self.where}'; a numpy equivalent exists but "
                         "its SIMD kernel may differ from libm in the "
                         "last ulp -- vectorize behind a measured "
                         "bit-identity parity check")

        np_fn = _np_func(node)
        if np_fn is not None:
            if np_fn in _NP_LOOP_ALLOCATORS and self.in_loop:
                self.rep("REP403", node,
                         f"np.{np_fn}(...) allocates inside a hot loop in "
                         f"'{self.where}'; hoist the allocation out of "
                         "the loop or batch the whole computation")
            if np_fn in _NP_DTYPE_DEFAULTING and self.uses_float32 \
                    and _call_dtype(node) is None:
                self.rep("REP402", node,
                         f"np.{np_fn}(...) without dtype= in float32 "
                         f"function '{self.where}' defaults to float64; "
                         "pass dtype=np.float32 to keep the pipeline "
                         "single-precision")
            if np_fn in _NP_REASSOC_REDUCTIONS and node.args:
                first = self.expr(node.args[0])
                if first in (_ARRAY, _F32, _VIEW):
                    self.rep("REP404", node,
                             f"np.{np_fn}(...) reassociates float "
                             f"accumulation in '{self.where}'; pairwise "
                             "summation differs from the scalar oracle's "
                             "ordered loop -- keep the ordered form or "
                             "update the oracle and parity test together")
            if np_fn in _NP_LIST_CONVERTERS and node.args:
                converted = node.args[0]
                if isinstance(converted, ast.Name) \
                        and converted.id in self.appended_lists:
                    self.rep("REP403", node,
                             f"list '{converted.id}' appended per "
                             f"element then converted with np.{np_fn} in "
                             f"'{self.where}'; preallocate the array and "
                             "write slices instead of growing a Python "
                             "list")
            return self._np_result_tag(node, np_fn)

        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = _terminal_name(func.value)
            receiver_tag = (self.env.get(receiver)
                            if receiver is not None else None)
            if func.attr == "append" and receiver is not None \
                    and self.in_loop \
                    and self.env.get(receiver) == _LIST:
                self.appended_lists.add(receiver)
            if func.attr in _REASSOC_METHODS \
                    and receiver_tag in (_ARRAY, _F32, _VIEW):
                self.rep("REP404", node,
                         f"'{receiver}.{func.attr}()' reassociates float "
                         f"accumulation in '{self.where}'; pairwise "
                         "summation differs from the scalar oracle's "
                         "ordered loop -- keep the ordered form or "
                         "update the oracle and parity test together")
            if func.attr == "astype" and receiver_tag in _ARRAYISH:
                if node.args and _dtype_mentions_float32(node.args[0]):
                    return _F32
                return _ARRAY
            if func.attr in ("reshape", "ravel", "view", "transpose",
                             "swapaxes") and receiver_tag in _ARRAYISH:
                return _VIEW
            if func.attr in ("copy", "flatten") \
                    and receiver_tag in _ARRAYISH:
                return _F32 if receiver_tag == _F32 else _ARRAY
            if func.attr.endswith("_batch"):
                # The `_batch` suffix is this codebase's SoA convention
                # (bilinear_batch, depth_test_batch, ...): the result is
                # an array -- a boolean mask when the method is a test.
                return _BOOL if "test" in func.attr else _ARRAY
            self.expr(func.value)
        return None

    def _np_result_tag(self, node: ast.Call, np_fn: str) -> Optional[str]:
        if np_fn not in _NP_ARRAY_RETURNING:
            return None
        if _call_dtype(node) == "float32":
            return _F32
        if np_fn in ("floor", "ceil", "rint", "sqrt", "abs", "minimum",
                     "maximum", "clip", "where", "ldexp") and node.args:
            # dtype-preserving elementwise ops keep float32 evidence.
            if self.expr(node.args[0]) == _F32:
                return _F32
        return _ARRAY


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


class _HotFunctionFinder:
    """Walks one module, scanning each def that is in the hot set."""

    def __init__(self, rule: "VectorizeRule", ctx: LintContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.hot_keys = rule._hot if rule._hot is not None else set()

    def run(self, tree: ast.Module) -> None:
        self._visit(tree, ())

    def _visit(self, node: ast.AST, qual: Tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join(qual + (child.name,))
                if (self.ctx.path, qualname) in self.hot_keys:
                    _FunctionScan(self.ctx, qualname).scan(child)
                self._visit(child, qual + (child.name,))
            elif isinstance(child, ast.ClassDef):
                self._visit(child, qual + (child.name,))
            else:
                self._visit(child, qual)


class VectorizeRule(LintRule):
    """The REP400-series engine: one prepare, one walk, five rule IDs."""

    rule_id = "REP400"
    name = "vectorization-and-numeric-parity"
    description = ("profile-guided scalar-loop and numeric-parity analysis "
                   "of everything reachable from simulate_frame / the "
                   "rasterizer / BatchSampler (REP400-REP404)")
    node_types = (ast.Module,)

    def __init__(self) -> None:
        self._hot: Optional[Set[Tuple[str, str]]] = None

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.is_sim_source

    def prepare(self, sources: Sequence[Tuple[str, str]]) -> None:
        self._hot = _hot_keys(harvest_model(sources))

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Module)
        _HotFunctionFinder(self, ctx).run(node)
