"""Finding baselines: adopt the linter on a tree with known findings.

A baseline file freezes the *current* findings so that CI only fails on
**new** ones.  The workflow::

    python -m repro.analysis lint --write-baseline lint-baseline.json
    # commit lint-baseline.json, then in CI:
    python -m repro.analysis lint --baseline lint-baseline.json

Fingerprints are deliberately **line-insensitive**: a finding is
identified by ``(rule_id, path, message)``, so unrelated edits that
shift line numbers do not churn the baseline.  Identical fingerprints
are counted as a multiset -- if a file gains a *second* occurrence of an
already-baselined finding, that second occurrence is new and reported.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.analysis.findings import Finding

BASELINE_SCHEMA = "repro-lint-baseline/1"

_Fingerprint = Tuple[str, str, str]


def fingerprint(finding: Finding) -> _Fingerprint:
    """The line-insensitive identity of a finding."""
    return (finding.rule_id, finding.path, finding.message)


def _counts(findings: Iterable[Finding]) -> Counter:
    return Counter(fingerprint(finding) for finding in findings)


def _write_counts(counts: Counter, path: Union[str, Path]) -> Path:
    entries: List[Dict[str, object]] = [
        {"rule_id": rule_id, "path": file_path, "message": message,
         "count": counts[(rule_id, file_path, message)]}
        for rule_id, file_path, message in sorted(counts)
    ]
    output = Path(path)
    output.write_text(
        json.dumps({"schema": BASELINE_SCHEMA, "findings": entries},
                   indent=2, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return output


def write_baseline(findings: Sequence[Finding],
                   path: Union[str, Path]) -> Path:
    """Freeze the given findings as a baseline file (sorted, stable)."""
    return _write_counts(_counts(findings), path)


def scope_baseline(baseline: Counter,
                   prefixes: Sequence[str]) -> Counter:
    """Restrict a baseline multiset to the selected rule-ID prefixes.

    When ``--select`` narrows a lint run to one family, the loaded
    baseline must be narrowed the same way so the suppression
    accounting stays per-family consistent.
    """
    selected = tuple(prefixes)
    return Counter({key: count for key, count in baseline.items()
                    if key[0].startswith(selected)})


def merge_baseline(findings: Sequence[Finding],
                   path: Union[str, Path],
                   prefixes: Sequence[str]) -> Path:
    """Re-freeze only the selected families, preserving the others.

    ``lint --select REP4 --write-baseline FILE`` used to *clobber* FILE
    with REP4-only fingerprints, silently resurrecting every suppressed
    finding from the other families on the next full run.  Instead:
    entries outside the selected prefixes are carried over unchanged and
    only the selected families are replaced by the current findings.
    """
    selected = tuple(prefixes)
    existing = load_baseline(path) if Path(path).exists() else Counter()
    kept = Counter({key: count for key, count in existing.items()
                    if not key[0].startswith(selected)})
    return _write_counts(kept + _counts(findings), path)


def load_baseline(path: Union[str, Path]) -> Counter:
    """Read a baseline file back as a fingerprint multiset."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = payload.get("schema")
    if schema != BASELINE_SCHEMA:
        raise ValueError(
            f"not a lint baseline (schema {schema!r}, "
            f"expected {BASELINE_SCHEMA!r})"
        )
    counts: Counter = Counter()
    for entry in payload.get("findings", []):
        key = (entry["rule_id"], entry["path"], entry["message"])
        counts[key] += int(entry.get("count", 1))
    return counts


def filter_new(findings: Sequence[Finding],
               baseline: Counter) -> List[Finding]:
    """Findings not covered by the baseline multiset.

    Each baselined fingerprint absorbs up to ``count`` occurrences (in
    source order); every occurrence beyond that -- or any fingerprint
    absent from the baseline -- is returned as new.
    """
    remaining = Counter(baseline)
    fresh: List[Finding] = []
    for finding in findings:
        key = fingerprint(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh
