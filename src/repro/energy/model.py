"""Activity-based energy model (section VI methodology).

Energy = sum over activities of (count x per-event energy), plus a static
component proportional to runtime (the paper adds ~10 % leakage on top of
dynamic power, and notes A-TFIM's energy win comes from *shorter runtime*
despite higher average power).

Per-bit figures follow the paper: HMC links 5 pJ/bit, HMC DRAM (TSV +
array) 4 pJ/bit; GDDR5 is substantially more expensive per bit (the
Micron DDR power model the paper cites lands GDDR5-class interfaces at
roughly 3-4x HMC's per-bit DRAM energy -- "HMC decreases the length of
the electrical connections", section VII-C), which we encode as a single
per-bit constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.designs import Design
from repro.core.paths import PathActivity
from repro.gpu.pipeline import FrameResult
from repro.memory.traffic import TrafficMeter
from repro.units import (
    BITS_PER_BYTE,
    PJ,
    Gigahertz,
    Joules,
    PicojoulesPerBit,
    PicojoulesPerByte,
    PicojoulesPerOp,
    Watts,
)


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (picojoules) and static power (watts)."""

    link_pj_per_bit: PicojoulesPerBit = PicojoulesPerBit(5.0)
    hmc_dram_pj_per_bit: PicojoulesPerBit = PicojoulesPerBit(4.0)
    gddr5_pj_per_bit: PicojoulesPerBit = PicojoulesPerBit(14.0)
    texture_alu_pj_per_op: PicojoulesPerOp = PicojoulesPerOp(12.0)
    shader_pj_per_fragment: float = 220.0
    vertex_pj_per_vertex: float = 120.0
    l1_pj_per_access: float = 8.0
    l2_pj_per_access: float = 20.0
    rop_pj_per_byte: PicojoulesPerByte = PicojoulesPerByte(1.5)
    gpu_static_watts: Watts = Watts(18.0)
    hmc_logic_static_watts: Watts = Watts(2.5)
    leakage_fraction: float = 0.10
    gpu_frequency_ghz: Gigahertz = Gigahertz(1.0)

    def __post_init__(self) -> None:
        for name in (
            "link_pj_per_bit",
            "hmc_dram_pj_per_bit",
            "gddr5_pj_per_bit",
            "texture_alu_pj_per_op",
            "shader_pj_per_fragment",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0 <= self.leakage_fraction <= 1:
            raise ValueError("leakage fraction must be in [0, 1]")


@dataclass
class EnergyBreakdown:
    """Energy per component, in joules."""

    shader: Joules = Joules(0.0)
    texture_units_gpu: Joules = Joules(0.0)
    texture_units_memory: Joules = Joules(0.0)
    caches: Joules = Joules(0.0)
    memory_interface: Joules = Joules(0.0)
    dram: Joules = Joules(0.0)
    rop: Joules = Joules(0.0)
    static: Joules = Joules(0.0)

    @property
    def total(self) -> Joules:
        return Joules(
            self.shader
            + self.texture_units_gpu
            + self.texture_units_memory
            + self.caches
            + self.memory_interface
            + self.dram
            + self.rop
            + self.static
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "shader": self.shader,
            "texture_units_gpu": self.texture_units_gpu,
            "texture_units_memory": self.texture_units_memory,
            "caches": self.caches,
            "memory_interface": self.memory_interface,
            "dram": self.dram,
            "rop": self.rop,
            "static": self.static,
            "total": self.total,
        }


class EnergyModel:
    """Computes a frame's energy from its simulation result."""

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params or EnergyParams()

    def frame_energy(self, design: Design, frame: FrameResult) -> EnergyBreakdown:
        """Energy of one simulated frame under one design."""
        params = self.params
        activity = frame.path_activity
        traffic = frame.traffic
        breakdown = EnergyBreakdown()

        breakdown.shader = (
            frame.num_fragments * params.shader_pj_per_fragment
            + frame.geometry.vertices * params.vertex_pj_per_vertex
        ) * PJ

        gpu_tex_ops = activity.gpu_texture.address_ops + activity.gpu_texture.filter_ops
        mem_tex_ops = (
            activity.memory_texture.address_ops + activity.memory_texture.filter_ops
        )
        breakdown.texture_units_gpu = gpu_tex_ops * params.texture_alu_pj_per_op * PJ
        breakdown.texture_units_memory = mem_tex_ops * params.texture_alu_pj_per_op * PJ

        breakdown.caches = (
            activity.l1_accesses * params.l1_pj_per_access
            + activity.l2_accesses * params.l2_pj_per_access
        ) * PJ

        external_bits = traffic.external_total * BITS_PER_BYTE
        internal_bits = traffic.internal_total * BITS_PER_BYTE
        if design is Design.BASELINE:
            breakdown.memory_interface = 0.0
            breakdown.dram = external_bits * params.gddr5_pj_per_bit * PJ
        else:
            breakdown.memory_interface = external_bits * params.link_pj_per_bit * PJ
            dram_bits = external_bits + internal_bits
            breakdown.dram = dram_bits * params.hmc_dram_pj_per_bit * PJ

        breakdown.rop = frame.rop.total_bytes * params.rop_pj_per_byte * PJ

        seconds = frame.frame_cycles / (params.gpu_frequency_ghz * 1e9)
        static_watts = params.gpu_static_watts
        if design.filters_in_memory:
            static_watts += params.hmc_logic_static_watts
        breakdown.static = static_watts * seconds

        dynamic = breakdown.total - breakdown.static
        breakdown.static += dynamic * params.leakage_fraction
        return breakdown
