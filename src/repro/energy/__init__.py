"""Energy and area models.

* :mod:`repro.energy.model` -- activity-based energy accounting (the
  McPAT-style evaluation of section VI: per-op ALU and cache energies,
  5 pJ/bit links, 4 pJ/bit HMC DRAM, Micron-style GDDR5 interface
  energy, and a +10 % leakage adder scaled by runtime).
* :mod:`repro.energy.overhead` -- the section VII-E area/storage
  arithmetic for the A-TFIM structures.
"""

from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParams
from repro.energy.overhead import AtfimOverhead, compute_overhead

__all__ = [
    "EnergyModel",
    "EnergyParams",
    "EnergyBreakdown",
    "AtfimOverhead",
    "compute_overhead",
]
