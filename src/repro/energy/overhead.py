"""Section VII-E design-overhead analysis, reproduced as arithmetic.

The paper sizes A-TFIM's added structures with CACTI/McPAT at 28 nm:

* HMC side: a 256-entry Parent Texel Buffer (45 bits per entry =>
  1.41 KB), a 256-entry Child Texel Consolidation buffer (0.5 KB), and
  two 16-wide FP vector ALU arrays; together 6.09 mm^2 of logic plus
  1.12 mm^2 of storage, 3.18 % of an 8 Gb DRAM die (~226.1 mm^2).
* GPU side: 7 extra bits per texture cache line for the camera angle --
  0.21 KB per 16 KB L1 and 1.75 KB per 128 KB L2, 4.2 KB over 16
  clusters, 0.31 mm^2 (0.23 % of a 136.7 mm^2 GPU).

This module recomputes every number from its inputs so that the tests
can assert the paper's arithmetic (and so changed configurations produce
honest overheads).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.texture.cache import CacheConfig
from repro.units import BITS_PER_BYTE, Bits

KB = 1024.0


@dataclass(frozen=True)
class OverheadParams:
    """Inputs to the section VII-E arithmetic (paper values as defaults)."""

    parent_buffer_entries: int = 256
    parent_id_bits: Bits = Bits(8)
    parent_value_bits: Bits = Bits(32)
    parent_done_bits: Bits = Bits(1)
    parent_count_bits: Bits = Bits(4)
    consolidation_entries: int = 256
    consolidation_entry_bits: Bits = Bits(16)  # child-parent pair ID
    logic_area_mm2: float = 6.09
    storage_area_mm2: float = 1.12
    dram_die_area_mm2: float = 226.1
    gpu_area_mm2: float = 136.7
    angle_bits: Bits = Bits(7)
    angle_area_mm2: float = 0.31
    num_clusters: int = 16

    @property
    def parent_entry_bits(self) -> Bits:
        """45 bits: ID + value + done flag + unfetched-child counter."""
        return (
            self.parent_id_bits
            + self.parent_value_bits
            + self.parent_done_bits
            + self.parent_count_bits
        )


@dataclass(frozen=True)
class AtfimOverhead:
    """Derived overhead figures."""

    parent_buffer_kb: float
    consolidation_kb: float
    hmc_storage_kb: float
    hmc_area_mm2: float
    hmc_area_fraction: float
    l1_angle_kb: float
    l2_angle_kb: float
    gpu_angle_kb_total: float
    gpu_area_fraction: float


def _angle_kb(cache: CacheConfig, angle_bits: Bits) -> float:
    """Extra angle-tag storage for one cache, in KB."""
    return cache.num_lines * angle_bits / BITS_PER_BYTE / KB


def compute_overhead(
    params: OverheadParams | None = None,
    l1: CacheConfig | None = None,
    l2: CacheConfig | None = None,
) -> AtfimOverhead:
    """Recompute the section VII-E overhead numbers."""
    params = params or OverheadParams()
    l1 = l1 or CacheConfig(size_bytes=16 * 1024)
    l2 = l2 or CacheConfig(size_bytes=128 * 1024)

    parent_buffer_kb = (
        params.parent_buffer_entries * params.parent_entry_bits / BITS_PER_BYTE / KB
    )
    consolidation_kb = (
        params.consolidation_entries
        * params.consolidation_entry_bits
        / BITS_PER_BYTE
        / KB
    )
    hmc_area = params.logic_area_mm2 + params.storage_area_mm2

    l1_angle = _angle_kb(l1, params.angle_bits)
    l2_angle = _angle_kb(l2, params.angle_bits)
    # One L1 per cluster plus the shared L2.
    gpu_total = l1_angle * params.num_clusters + l2_angle

    return AtfimOverhead(
        parent_buffer_kb=parent_buffer_kb,
        consolidation_kb=consolidation_kb,
        hmc_storage_kb=parent_buffer_kb + consolidation_kb,
        hmc_area_mm2=hmc_area,
        hmc_area_fraction=hmc_area / params.dram_die_area_mm2,
        l1_angle_kb=l1_angle,
        l2_angle_kb=l2_angle,
        gpu_angle_kb_total=gpu_total,
        gpu_area_fraction=params.angle_area_mm2 / params.gpu_area_mm2,
    )
