"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands:

* ``list`` -- list the Table II workloads.
* ``simulate <workload>`` -- run all four designs on one workload and
  print the comparison.
* ``fig <id>`` -- regenerate one figure's table (e.g. ``fig 10``).
* ``report`` -- run every experiment and write EXPERIMENTS.md.
* ``bench`` -- time the batched sampler and cached runner, writing
  ``BENCH_sampling.json`` / ``BENCH_runner.json``.
* ``trace <manifest.json>`` -- convert a run manifest's span tree to
  Chrome trace-event JSON (load in ``chrome://tracing`` / Perfetto).
* ``chaos`` -- run the design grid under an injected fault plan and
  verify the results stay bit-identical to a clean serial run.
* ``sweep`` -- run a (sampled) design-space sweep over threshold x
  workload x link-scale x memory-backend through a chosen executor
  backend; optionally cross-check backends for bit-identity and write
  the A-TFIM crossover surface into EXPERIMENTS.md.
* ``serve`` -- run the HTTP/JSON simulation job server
  (:mod:`repro.serve`): POST sweep-vocabulary jobs, poll their status,
  scrape ``/stats``; a bounded multi-tenant queue applies 429
  backpressure and a namespaced, size-bounded disk cache persists
  artefacts across jobs and restarts.

``report``, ``fig`` and ``bench`` accept ``--jobs N`` to fan design-point
simulations out over processes; ``report`` persists results under
``--cache-dir`` (or ``$REPRO_CACHE_DIR``) so reruns are incremental.
The same three accept ``--manifest [PATH]`` to record a
:class:`~repro.obs.manifest.RunManifest` (tracing is switched on for the
run); ``REPRO_TRACE=1`` enables span recording everywhere else.

The top-level ``--faults SPEC`` switch (equivalent: the ``REPRO_FAULTS``
environment variable) activates a deterministic fault-injection plan for
any subcommand -- see :mod:`repro.faults`.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.core import Design
from repro.core.angle import DEFAULT_THRESHOLD
from repro.experiments.runner import FAST_WORKLOADS, ExperimentRunner
from repro.workloads import workload_by_name, workload_names

FIGURES = {
    "2": "fig02",
    "4": "fig04",
    "5": "fig05",
    "10": "fig10",
    "11": "fig11",
    "12": "fig12",
    "13": "fig13",
    "14": "fig14",
    "15": "fig15",
    "16": "fig16",
    "overhead": "overhead_analysis",
}


def _cmd_list(_args: argparse.Namespace) -> int:
    for name in workload_names():
        workload = workload_by_name(name)
        print(
            f"{name:24s} {workload.library:7s} {workload.engine:16s} "
            f"aniso {workload.max_anisotropy}x  sim {workload.sim_width}x{workload.sim_height}"
        )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    runner = ExperimentRunner([args.workload])
    workload = runner.workloads[0]
    baseline = runner.baseline(workload).frame
    print(f"{workload.name}: {baseline.num_requests} texture requests")
    print(f"{'design':14s} {'render x':>9s} {'texture x':>10s} {'traffic x':>10s} {'energy x':>9s}")
    for design in Design:
        frame = runner.run(workload, design, DEFAULT_THRESHOLD).frame
        print(
            f"{design.value:14s} "
            f"{frame.speedup_over(baseline):9.2f} "
            f"{frame.texture_speedup_over(baseline):10.2f} "
            f"{runner.texture_traffic_ratio(workload, design, DEFAULT_THRESHOLD):10.2f} "
            f"{runner.energy_ratio(workload, design, DEFAULT_THRESHOLD):9.2f}"
        )
    if args.verbose:
        for design in Design:
            frame = runner.run(workload, design, DEFAULT_THRESHOLD).frame
            print(f"\n--- {design.value}")
            print(frame.summary())
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    if args.id not in FIGURES:
        print(f"unknown figure {args.id!r}; known: {sorted(FIGURES)}")
        return 1
    import importlib

    module = importlib.import_module(f"repro.experiments.{FIGURES[args.id]}")
    names = FAST_WORKLOADS if args.fast else None
    manifest_requested = args.manifest is not None
    was_tracing = obs.tracing_enabled()
    if manifest_requested and not was_tracing:
        obs.set_tracing(True)
    runner = None
    try:
        with obs.span("cli.fig", figure=args.id):
            if args.id == "overhead":
                data = module.run()
            elif (args.jobs and args.jobs > 1) or manifest_requested:
                from repro.experiments.report import grid_keys

                runner = ExperimentRunner(names, jobs=args.jobs)
                if args.jobs and args.jobs > 1:
                    runner.run_many(grid_keys(runner), jobs=args.jobs)
                data = module.run(runner)
            else:
                data = module.run(workload_names=names)
        print(data.title)
        print(data.format_table())
        for note in data.notes:
            print(note)
        if manifest_requested:
            from repro.obs.manifest import build_manifest

            record = build_manifest(
                command="fig",
                config={"figure": args.id, "fast": args.fast,
                        "jobs": args.jobs},
                runner=runner,
            )
            path = args.manifest or f"FIG{args.id}.manifest.json"
            record.write(path)
            print(f"wrote {path}")
    finally:
        if manifest_requested and not was_tracing:
            obs.set_tracing(False)
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    """Render a workload's frame to a PPM image (exact or A-TFIM)."""
    from repro.render.renderer import SamplingMode

    workload = workload_by_name(args.workload)
    built = workload.build()
    renderer = workload.make_renderer()
    mode = SamplingMode(args.mode)
    output = renderer.render(
        built.scene, built.camera, mode, angle_threshold=args.threshold
    )
    image = output.image
    height, width = image.shape[:2]
    with open(args.output, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode())
        handle.write(
            (image * 255.0).clip(0, 255).astype("uint8").tobytes()
        )
    print(f"wrote {args.output} ({width}x{height}, mode={mode.value})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import manifest_path_for, write_report

    names = FAST_WORKLOADS if args.fast else None
    path = write_report(
        path=args.output,
        workload_names=names,
        include_quality=not args.no_quality,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        manifest=args.manifest,
    )
    print(f"wrote {path}")
    if args.manifest is not None:
        print(f"wrote {args.manifest or manifest_path_for(path)}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import run_bench

    manifest_requested = args.manifest is not None
    was_tracing = obs.tracing_enabled()
    if manifest_requested and not was_tracing:
        obs.set_tracing(True)
    try:
        with obs.span("cli.bench", fast=args.fast):
            code = run_bench(
                fast=args.fast,
                jobs=args.jobs,
                min_speedup=args.min_speedup,
                lint_min_speedup=args.lint_min_speedup,
                frame_min_speedup=args.frame_min_speedup,
                output_dir=args.output_dir,
            )
        if manifest_requested:
            from repro.obs.manifest import build_manifest

            record = build_manifest(
                command="bench",
                config={"fast": args.fast, "jobs": args.jobs,
                        "min_speedup": args.min_speedup,
                        "lint_min_speedup": args.lint_min_speedup,
                        "frame_min_speedup": args.frame_min_speedup,
                        "output_dir": args.output_dir},
            )
            path = args.manifest or str(
                Path(args.output_dir) / "BENCH.manifest.json"
            )
            record.write(path)
            print(f"wrote {path}")
    finally:
        if manifest_requested and not was_tracing:
            obs.set_tracing(False)
    return code


DEFAULT_CHAOS_SPEC = "seed=7,crash=0.2,fail=0.2,corrupt=0.2,store=0.1"
"""The ``chaos`` subcommand's default fault plan: every injection site
exercised at rates high enough to fire on a 12-point grid."""


def _run_signature(run) -> tuple:
    """The fields two runs must agree on to count as bit-identical."""
    return (
        run.frame_cycles,
        run.texture_cycles,
        run.external_texture_bytes,
        run.frame.num_requests,
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Prove the fault-tolerant fan-out: clean serial vs faulted parallel."""
    import tempfile

    from repro import faults
    from repro.experiments.runner import RunKey
    from repro.faults import FAST_RETRIES, FaultPlan

    spec = args.faults if getattr(args, "faults", None) else DEFAULT_CHAOS_SPEC
    plan = FaultPlan.parse(spec)
    names = [args.workload] if args.workload else list(FAST_WORKLOADS)
    keys = [
        RunKey(name, design, DEFAULT_THRESHOLD.effective_radians, True)
        for name in names
        for design in Design
    ]
    jobs = args.jobs or 2
    manifest_requested = args.manifest is not None
    was_tracing = obs.tracing_enabled()
    if manifest_requested and not was_tracing:
        obs.set_tracing(True)
    runner = None
    try:
        with obs.span("cli.chaos", plan=plan.describe(), jobs=jobs):
            print(f"chaos: plan [{plan.describe()}] over {len(keys)} grid "
                  f"points, jobs={jobs}")
            with tempfile.TemporaryDirectory(
                prefix="repro-chaos-clean-"
            ) as clean_dir, faults.suppress():
                clean_runner = ExperimentRunner(names, cache_dir=clean_dir)
                clean = clean_runner.run_many(keys, jobs=1)
            previous = os.environ.get(faults.ENV_FLAG)
            os.environ[faults.ENV_FLAG] = spec
            faults.activate(plan)
            try:
                with tempfile.TemporaryDirectory(
                    prefix="repro-chaos-"
                ) as chaos_dir:
                    runner = ExperimentRunner(
                        names, cache_dir=chaos_dir, retry_policy=FAST_RETRIES
                    )
                    faulted = runner.run_many(keys, jobs=jobs)
            finally:
                faults.reset()
                if previous is None:
                    os.environ.pop(faults.ENV_FLAG, None)
                else:
                    os.environ[faults.ENV_FLAG] = previous
            report = runner.fanout_report()
            counts = report.outcome_counts()
            print(
                "outcomes: "
                + " ".join(f"{name}={count}" for name, count in counts.items())
                + f"  retries={report.total_retries}"
                + f" pool_rebuilds={report.pool_rebuilds}"
            )
            missing = [key for key in keys if key not in faulted]
            mismatched = [
                key
                for key in keys
                if key in faulted
                and _run_signature(faulted[key]) != _run_signature(clean[key])
            ]
            for key in missing:
                print(f"MISSING: {key}")
            for key in mismatched:
                print(f"MISMATCH: {key}")
            identical = not missing and not mismatched
            print("bit-identical to clean serial run: "
                  + ("yes" if identical else "NO"))
        if manifest_requested:
            from repro.obs.manifest import build_manifest

            record = build_manifest(
                command="chaos",
                config={"plan": plan.as_dict(), "jobs": jobs,
                        "workloads": names},
                runner=runner,
            )
            # The injector is already deactivated (the comparison runs
            # clean), so record the exercised plan explicitly.
            record.faults.setdefault("plan", plan.as_dict())
            record.faults["bit_identical"] = identical
            # Attest that the REP300-series static pass is clean: the
            # chaos gate's bit-identity claim rests on the worker paths
            # being free of nondeterminism sources.
            from repro.analysis import static_determinism_attestation

            attestation = static_determinism_attestation()
            record.faults["static_determinism"] = attestation
            print(
                "static determinism pass "
                + f"({', '.join(attestation['rules'])}): "
                + ("clean" if attestation["clean"]
                   else f"{len(attestation['findings'])} finding(s)")
            )
            path = args.manifest or "CHAOS.manifest.json"
            record.write(path)
            print(f"wrote {path}")
    finally:
        if manifest_requested and not was_tracing:
            obs.set_tracing(False)
    return 0 if identical else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Run a sampled design-space sweep through an executor backend."""
    import tempfile

    from repro.experiments.sweep import (
        SweepDefinition,
        run_sweep,
        surface_markdown,
        update_experiments_md,
    )
    from repro.faults import FAST_RETRIES

    names = FAST_WORKLOADS if args.fast else workload_names()
    definition = SweepDefinition(
        name=args.name, workloads=tuple(names), seed=args.seed
    )
    points = (
        definition.points()
        if args.points <= 0 or args.points >= definition.size
        else definition.sample(args.points)
    )
    print(
        f"sweep {definition.name!r}: {len(points)} points "
        f"({definition.size} in the full product), "
        f"backend={args.backend}, jobs={args.jobs}"
    )

    def execute(backend, cache_dir):
        return run_sweep(
            definition,
            points=points,
            cache_dir=cache_dir,
            jobs=args.jobs,
            backend=backend,
            retry_policy=FAST_RETRIES,
        )

    with obs.span("cli.sweep", points=len(points), backend=args.backend):
        if args.cache_dir is not None:
            result = execute(args.backend, args.cache_dir)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-sweep-") as scratch:
                result = execute(args.backend, scratch)
        identical = True
        if args.check:
            with tempfile.TemporaryDirectory(
                prefix="repro-sweep-check-"
            ) as scratch:
                reference = execute("serial", scratch)
            identical = result.signatures() == reference.signatures()
            print(
                "bit-identical to serial execution: "
                + ("yes" if identical else "NO")
            )
    counts = result.fanout.get("outcomes", {})
    if counts:
        print("outcomes: "
              + " ".join(f"{name}={count}" for name, count in counts.items()))
    if result.missing:
        for point in result.missing:
            print(f"MISSING: {point.token}")
    print(f"{len(result.records)} records over {result.unique_runs} "
          "unique simulations")
    if args.output:
        path = result.write_json(args.output)
        print(f"wrote {path}")
    if args.update_experiments is not None:
        target = args.update_experiments or "EXPERIMENTS.md"
        path = update_experiments_md(surface_markdown(result), target)
        print(f"wrote {path}")
    else:
        print(surface_markdown(result))
    return 0 if identical and not result.missing else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation job server until interrupted."""
    from repro.serve import JobServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workloads=FAST_WORKLOADS if args.fast else None,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        max_queue_depth=args.max_queue_depth,
        tenant_quota=args.tenant_quota,
        max_points=args.max_points,
        jobs=args.jobs,
        backend=args.backend,
    )
    return JobServer(config).serve_blocking()


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.manifest import write_chrome_trace

    output = args.output
    if output is None:
        output = str(Path(args.manifest).with_suffix(".trace.json"))
    path = write_chrome_trace(args.manifest, output)
    print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPCA'17 PIM-enabled GPU 3D rendering reproduction",
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="validate every simulated frame against the conservation "
        "invariants of repro.analysis.invariants (exits with a traceback "
        "on the first violation)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="activate a deterministic fault-injection plan for this run "
        "(e.g. 'seed=7,crash=0.2,corrupt=0.2'); equivalent to setting "
        "REPRO_FAULTS",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads").set_defaults(func=_cmd_list)

    simulate = sub.add_parser("simulate", help="compare designs on one workload")
    simulate.add_argument("workload", choices=workload_names())
    simulate.add_argument("--verbose", action="store_true",
                          help="print per-design stage/traffic summaries")
    simulate.set_defaults(func=_cmd_simulate)

    fig = sub.add_parser("fig", help="regenerate one figure")
    fig.add_argument("id", help="figure id (2,4,5,10-16,overhead)")
    fig.add_argument("--fast", action="store_true", help="3-workload subset")
    fig.add_argument("--jobs", type=int, default=None,
                     help="prefetch the design grid over N processes")
    fig.add_argument("--manifest", nargs="?", const="", default=None,
                     help="record a run manifest (optional path; default "
                     "FIG<id>.manifest.json); enables tracing for the run")
    fig.set_defaults(func=_cmd_fig)

    render = sub.add_parser("render", help="render a frame to a PPM image")
    render.add_argument("workload", choices=workload_names())
    render.add_argument("--mode", default="exact",
                        choices=["exact", "reordered", "atfim", "isotropic"])
    render.add_argument("--threshold", type=float, default=0.0314159,
                        help="angle threshold in radians (atfim mode)")
    render.add_argument("--output", default="frame.ppm")
    render.set_defaults(func=_cmd_render)

    report = sub.add_parser("report", help="write EXPERIMENTS.md")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument("--fast", action="store_true", help="3-workload subset")
    report.add_argument("--no-quality", action="store_true",
                        help="skip the (slow) PSNR study")
    report.add_argument("--jobs", type=int, default=None,
                        help="simulate design grid points over N processes")
    report.add_argument("--cache-dir", default=None,
                        help="persist traces/runs here (default: "
                        "$REPRO_CACHE_DIR if set, else no disk cache)")
    report.add_argument("--manifest", nargs="?", const="", default=None,
                        help="record a run manifest next to the report "
                        "(optional path; default <output>.manifest.json); "
                        "enables tracing and the per-phase timing table")
    report.set_defaults(func=_cmd_report)

    bench = sub.add_parser(
        "bench", help="time batched sampler + cached runner, write BENCH_*.json"
    )
    bench.add_argument("--fast", action="store_true",
                       help="single-workload smoke configuration (CI)")
    bench.add_argument("--jobs", type=int, default=None,
                       help="parallel workers for the cold runner benchmark")
    bench.add_argument("--lint-min-speedup", type=float, default=0.0,
                       help="fail unless parallel lint beats serial by this "
                            "factor (0 disables; single-core boxes cannot "
                            "win, see BENCH_lint.json)")
    bench.add_argument("--min-speedup", type=float, default=1.0,
                       help="fail if the batched exact sampler's slowest "
                       "workload speedup is below this factor")
    bench.add_argument("--frame-min-speedup", type=float, default=1.0,
                       help="fail if the whole-frame (trace+replay) "
                       "vectorized speedup is below this factor on any "
                       "workload, see BENCH_frame.json")
    bench.add_argument("--output-dir", default=".",
                       help="directory for BENCH_*.json (default: cwd)")
    bench.add_argument("--manifest", nargs="?", const="", default=None,
                       help="record a run manifest (optional path; default "
                       "<output-dir>/BENCH.manifest.json)")
    bench.set_defaults(func=_cmd_bench)

    trace = sub.add_parser(
        "trace", help="convert a run manifest to Chrome trace-event JSON"
    )
    trace.add_argument("manifest", help="path to a *.manifest.json file")
    trace.add_argument("--output", default=None,
                       help="output path (default: <manifest>.trace.json)")
    trace.set_defaults(func=_cmd_trace)

    chaos = sub.add_parser(
        "chaos",
        help="run the design grid under injected faults; verify results "
        "stay bit-identical to a clean serial run",
    )
    chaos.add_argument("--workload", choices=workload_names(), default=None,
                       help="single workload (default: the fast subset, a "
                       "12-point grid)")
    chaos.add_argument("--jobs", type=int, default=None,
                       help="parallel workers for the faulted run "
                       "(default: 2)")
    chaos.add_argument("--manifest", nargs="?", const="", default=None,
                       help="record a run manifest with the fault plan and "
                       "per-key outcomes (optional path; default "
                       "CHAOS.manifest.json)")
    chaos.set_defaults(func=_cmd_chaos)

    sweep = sub.add_parser(
        "sweep",
        help="run a sampled design-space sweep (threshold x workload x "
        "link scale x memory backend) through an executor backend",
    )
    sweep.add_argument("--name", default="design-space",
                       help="sweep name (seeds the deterministic sampler)")
    sweep.add_argument("--points", type=int, default=64,
                       help="sampled point budget (<= 0: the full "
                       "Cartesian product)")
    sweep.add_argument("--seed", type=int, default=0,
                       help="sampling seed (default: 0)")
    sweep.add_argument("--backend", default="process-pool",
                       choices=["serial", "process-pool", "work-stealing"],
                       help="executor backend for the fan-out "
                       "(default: process-pool)")
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: cpu count)")
    sweep.add_argument("--fast", action="store_true",
                       help="3-workload subset instead of all of Table II")
    sweep.add_argument("--check", action="store_true",
                       help="re-run the sweep serially in a separate cache "
                       "and fail unless results are bit-identical")
    sweep.add_argument("--cache-dir", default=None,
                       help="persist traces/runs here (default: a "
                       "per-invocation temporary directory)")
    sweep.add_argument("--output", default=None,
                       help="write the full sweep result as JSON here")
    sweep.add_argument("--update-experiments", nargs="?", const="",
                       default=None,
                       help="rewrite the crossover-surface section of "
                       "EXPERIMENTS.md (optional path) instead of printing "
                       "it")
    sweep.set_defaults(func=_cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="run the HTTP/JSON simulation job server (POST /jobs, "
        "GET /jobs/<id>, GET /stats)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8731,
                       help="TCP port (default: 8731; 0 binds an "
                       "ephemeral port)")
    serve.add_argument("--fast", action="store_true",
                       help="serve the 3-workload fast subset only")
    serve.add_argument("--cache-dir", default=None,
                       help="artifact-store root, namespaced by source "
                       "version (default: no persistence)")
    serve.add_argument("--cache-max-bytes", type=int, default=None,
                       help="size budget for the whole cache root; "
                       "least-recently-used entries are evicted above it")
    serve.add_argument("--max-queue-depth", type=int, default=8,
                       help="admission bound on queued jobs; submissions "
                       "beyond it get HTTP 429 (default: 8)")
    serve.add_argument("--tenant-quota", type=int, default=None,
                       help="per-tenant bound on queued jobs (default: "
                       "no quota)")
    serve.add_argument("--max-points", type=int, default=64,
                       help="admission bound on points per job "
                       "(default: 64)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="default worker processes per job (a "
                       "request's own 'jobs' field overrides)")
    serve.add_argument("--backend", default=None,
                       choices=["serial", "process-pool", "work-stealing"],
                       help="default executor backend (a request's own "
                       "'backend' field overrides)")
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # Both switches thread through simulation layers (runner, report,
    # pool workers) via the environment variables those layers consult;
    # restore them afterwards so embedding callers see no side effects.
    restores = []
    faults_activated = False
    if args.check_invariants:
        from repro.analysis.invariants import ENV_FLAG as invariants_flag

        restores.append((invariants_flag, os.environ.get(invariants_flag)))
        os.environ[invariants_flag] = "1"
    if args.faults:
        from repro import faults

        plan = faults.FaultPlan.parse(args.faults)
        restores.append((faults.ENV_FLAG, os.environ.get(faults.ENV_FLAG)))
        os.environ[faults.ENV_FLAG] = args.faults
        faults.activate(plan)
        faults_activated = True
    try:
        return args.func(args)
    finally:
        if faults_activated:
            from repro import faults

            faults.reset()
        for flag, previous in restores:
            if previous is None:
                os.environ.pop(flag, None)
            else:
                os.environ[flag] = previous


if __name__ == "__main__":
    sys.exit(main())
