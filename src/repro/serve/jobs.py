"""Job records, the job store, and the worker that executes jobs.

A :class:`Job` tracks one admitted submission through its lifecycle
(``queued`` -> ``running`` -> ``done`` | ``failed``).  Job identities
are a dense counter (``job-000001``): deterministic over the admitted
sequence, so logs and tests never depend on clock- or RNG-derived ids.

:class:`JobRunner` turns one job into simulations: it expands the
request into deduplicated run keys, executes them through the runner's
re-entrant :meth:`~repro.experiments.runner.ExperimentRunner.run_batch`
(so the fault-tolerant fan-out scheduler, retries and degradation all
apply), and derives the job's terminal status from the batch's
:class:`~repro.faults.outcomes.FanoutReport` -- a job whose report left
any requested point without a result is ``failed``, with the partial
payload preserved.  Each execution records into a request-scoped tracer
(:func:`repro.obs.scoped_tracer`) and ships its spans inside the job's
:class:`~repro.obs.manifest.RunManifest` payload.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import obs
from repro.experiments.runner import ExperimentRunner
from repro.faults import RetryPolicy
from repro.obs.manifest import build_manifest
from repro.serve.schemas import JobRequest, point_as_dict

JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One admitted submission and (eventually) its result payload."""

    job_id: str
    request: JobRequest
    status: str = "queued"
    created_unix: float = 0.0
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None

    def as_dict(self, include_result: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "job_id": self.job_id,
            "tenant": self.request.tenant,
            "status": self.status,
            "points": len(self.request.points),
            "created_unix": self.created_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "error": self.error,
        }
        if include_result:
            payload["result"] = self.result
        return payload


class JobStore:
    """Thread-safe registry of every job this server has admitted."""

    def __init__(self) -> None:
        self._jobs: Dict[str, Job] = {}
        self._next = 1
        self._lock = threading.Lock()

    def create(self, request: JobRequest) -> Job:
        """Allocate the next dense job id and register the job."""
        with self._lock:
            job = Job(
                job_id=f"job-{self._next:06d}",
                request=request,
                created_unix=time.time(),
            )
            self._next += 1
            self._jobs[job.job_id] = job
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """All jobs in admission order."""
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        """Jobs per lifecycle state (all states always present)."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs():
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts


@dataclass
class JobRunner:
    """Executes one job at a time against a shared runner + cache."""

    runner: ExperimentRunner
    retry_policy: Optional[RetryPolicy] = None
    executed: int = field(default=0)

    def execute(self, job: Job) -> None:
        """Run one job to its terminal state; never raises.

        Any exception -- schema bugs, simulator failures, a cache that
        stopped being writable -- lands in ``job.error`` with status
        ``failed``; a server worker loop must survive every job.
        """
        job.status = "running"
        job.started_unix = time.time()
        try:
            self._run(job)
        except Exception as error:  # the worker loop must outlive any job
            job.status = "failed"
            job.error = repr(error)
        cache = self.runner.disk_cache
        if cache is not None and cache.max_bytes is not None:
            # The serving layer owns retention: one LRU pass per job
            # keeps the shared artifact store inside its byte budget.
            cache.evict()
        job.finished_unix = time.time()
        self.executed += 1

    def _run(self, job: Job) -> None:
        request = job.request
        keys = request.run_keys()
        with obs.scoped_tracer() as tracer:
            with obs.span(
                "serve.job",
                job_id=job.job_id,
                tenant=request.tenant,
                points=len(request.points),
                runs=len(keys),
            ):
                results, report = self.runner.run_batch(
                    keys,
                    jobs=request.jobs,
                    retry_policy=self.retry_policy,
                    task_timeout=request.task_timeout,
                    backend=request.backend,
                )
            manifest = build_manifest(
                command="serve",
                config=request.describe(),
                runner=self.runner,
                tracer=tracer,
                fanout=report,
            )
        records: List[Dict[str, Any]] = []
        missing: List[str] = []
        for point in request.points:
            run = results.get(point.run_key())
            baseline = results.get(point.baseline_key())
            if run is None or baseline is None:
                missing.append(point.token)
                continue
            base_texture = baseline.frame.traffic.external_texture
            record = point_as_dict(point)
            record["render_speedup"] = run.frame.speedup_over(baseline.frame)
            # None, not NaN: job payloads are strict JSON
            # (allow_nan=False), same as manifests.
            record["texture_traffic_ratio"] = (
                run.frame.traffic.external_texture / base_texture
                if base_texture > 0 else None
            )
            records.append(record)
        fanout = report.as_dict()
        fanout.pop("tasks", None)
        job.result = {
            "records": records,
            "missing": missing,
            "unique_runs": len(keys),
            "fanout": fanout,
            "manifest": manifest.as_dict(),
        }
        if missing:
            job.status = "failed"
            job.error = (
                f"{len(missing)} of {len(request.points)} point(s) "
                "produced no result; see result.fanout for outcomes"
            )
        else:
            job.status = "done"
