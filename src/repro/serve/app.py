"""Asyncio HTTP/JSON front end for the experiment runner.

``python -m repro serve`` turns the reproduction into a long-running
simulation service: clients POST sweep-vocabulary jobs, a bounded
multi-tenant queue (:mod:`repro.serve.queue`) admits or rejects them,
and a single worker drains the queue through the fault-tolerant fan-out
scheduler.  Stdlib only -- the HTTP layer is a deliberately minimal
HTTP/1.1 implementation over :func:`asyncio.start_server` (one request
per connection, ``Connection: close``), because the payloads are small
JSON and the concurrency bottleneck is the simulator, never the socket.

Routes::

    POST /jobs      submit a job            -> 202 | 400 | 413 | 429
    GET  /jobs      list job summaries      -> 200
    GET  /jobs/<id> job status + result     -> 200 | 404
    GET  /stats     SLO metrics snapshot    -> 200
    GET  /healthz   liveness                -> 200

Blocking simulation work runs via :func:`asyncio.to_thread`, so the
event loop keeps answering status probes while a job simulates.  The
shared :class:`~repro.experiments.cache.DiskCache` is namespaced by
source version and size-bounded (LRU eviction), making it a long-lived
artifact store rather than a per-invocation accelerator.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.experiments.cache import DiskCache
from repro.experiments.runner import ExperimentRunner
from repro.faults import RetryPolicy
from repro.serve.jobs import Job, JobRunner, JobStore
from repro.serve.queue import AdmissionError, AdmissionQueue, DEFAULT_MAX_DEPTH
from repro.serve.schemas import DEFAULT_MAX_POINTS, JobRequest, SchemaError

STATS_SCHEMA = "repro-serve-stats/1"
"""Schema marker of the ``/stats`` payload."""

MAX_BODY_BYTES = 1 << 20
"""Request bodies above this are refused with 413 before being read."""

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


@dataclass
class ServeConfig:
    """Everything one :class:`JobServer` needs to come up."""

    host: str = "127.0.0.1"
    port: int = 8731
    """TCP port; 0 binds an ephemeral port (tests, smoke)."""
    workloads: Optional[Sequence[str]] = None
    """Workload subset the runner preloads (``None``: all of Table II)."""
    cache_dir: Optional[Union[str, Path]] = None
    """Artifact-store root; ``None`` runs memo-only (no persistence)."""
    cache_max_bytes: Optional[int] = None
    """Size budget for the whole cache root (LRU eviction when set)."""
    max_queue_depth: int = DEFAULT_MAX_DEPTH
    tenant_quota: Optional[int] = None
    max_points: int = DEFAULT_MAX_POINTS
    jobs: Optional[int] = None
    """Default worker processes per job (request ``jobs`` overrides)."""
    backend: Optional[str] = None
    """Default executor backend (request ``backend`` overrides)."""
    retry_policy: Optional[RetryPolicy] = None


class JobServer:
    """One serving process: runner + cache + queue + store + HTTP."""

    def __init__(self, config: ServeConfig, start_worker: bool = True) -> None:
        self.config = config
        self.cache: Optional[DiskCache] = None
        if config.cache_dir is not None:
            # Namespaced by source version so each simulator build's
            # artefacts are a visible on-disk partition, and size-bounded
            # so a long-lived store cannot grow without limit.
            self.cache = DiskCache.versioned(
                root=Path(config.cache_dir), max_bytes=config.cache_max_bytes
            )
            self.cache.reap_temp_files()
        self.runner = ExperimentRunner(
            list(config.workloads) if config.workloads is not None else None,
            jobs=config.jobs,
            backend=config.backend,
            retry_policy=config.retry_policy,
            cache=self.cache,
        )
        self.queue = AdmissionQueue(
            max_depth=config.max_queue_depth,
            tenant_quota=config.tenant_quota,
        )
        self.store = JobStore()
        self.job_runner = JobRunner(
            runner=self.runner, retry_policy=config.retry_policy
        )
        self.host = config.host
        self.port = config.port
        self._start_worker = start_worker
        self._started_unix = time.time()
        self._in_flight = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the drain worker."""
        self._wake = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started_unix = time.time()
        if self._start_worker:
            self._worker = asyncio.ensure_future(self._drain())

    async def stop(self) -> None:
        """Close the socket and cancel the drain worker."""
        if self._worker is not None:
            self._worker.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._worker
            self._worker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def serve_blocking(self) -> int:
        """Blocking CLI entry point; serves until interrupted (Ctrl-C)."""
        with contextlib.suppress(KeyboardInterrupt):
            asyncio.run(self._serve_forever())
        return 0

    async def _serve_forever(self) -> None:
        await self.start()
        print(f"serving on http://{self.host}:{self.port} "
              f"(queue depth {self.queue.max_depth}, "
              f"cache {'on' if self.cache else 'off'})")
        assert self._server is not None
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    async def _drain(self) -> None:
        """Single-consumer worker: one job at a time, off the loop."""
        assert self._wake is not None
        while True:
            job = self.queue.take()
            if job is None:
                self._wake.clear()
                await self._wake.wait()
                continue
            self._in_flight += 1
            try:
                await asyncio.to_thread(self.job_runner.execute, job)
            finally:
                self._in_flight -= 1

    # -- metrics --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` SLO snapshot."""
        counters = self.runner.cache_stats()
        cache: Dict[str, Any] = {
            "memo_hits": counters.memo_hits,
            "memo_misses": counters.memo_misses,
            "disk_hits": counters.disk_hits,
            "disk_misses": counters.disk_misses,
            "disk_stores": counters.disk_stores,
            "disk_errors": counters.disk_errors,
            "disk_entries": counters.disk_entries,
            "disk_bytes": counters.disk_bytes,
            "disk_hit_rate": counters.disk_hit_rate,
        }
        if self.cache is not None:
            cache["namespace"] = self.cache.namespace
            cache["max_bytes"] = self.cache.max_bytes
            cache["evictions"] = self.cache.stats.evictions
            cache["reaped_temp_files"] = self.cache.stats.reaped_temp_files
        return {
            "schema": STATS_SCHEMA,
            "uptime_seconds": time.time() - self._started_unix,
            "in_flight": self._in_flight,
            "queue": self.queue.as_dict(),
            "jobs": self.store.counts(),
            "jobs_executed": self.job_runner.executed,
            "cache": cache,
        }

    # -- HTTP plumbing --------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload, extra = await self._respond(reader)
        except Exception as error:  # a broken request must not kill the loop
            status, payload, extra = 500, {"error": repr(error)}, {}
        body = json.dumps(payload, indent=2, allow_nan=False).encode() + b"\n"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
        )
        for name, value in extra.items():
            head += f"{name}: {value}\r\n"
        try:
            # A client hanging up mid-response is its problem, not the
            # server's: the job (if admitted) still runs.
            with contextlib.suppress(ConnectionError, BrokenPipeError):
                writer.write(head.encode("latin-1") + b"\r\n" + body)
                await writer.drain()
        finally:
            writer.close()

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Parse one request and route it; returns (status, payload, headers)."""
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) != 3:
                return 400, {"error": "malformed request line"}, {}
            method, target, _version = parts
            headers: Dict[str, str] = {}
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
                name, _sep, value = raw.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > MAX_BODY_BYTES:
                return 413, {
                    "error": f"body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte bound"
                }, {}
            body = await reader.readexactly(length) if length > 0 else b""
        except (ValueError, UnicodeDecodeError, asyncio.IncompleteReadError):
            return 400, {"error": "malformed HTTP request"}, {}
        return self._route(method, target.split("?", 1)[0], body)

    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        if path == "/jobs" and method == "POST":
            return self._submit(body)
        if path == "/jobs" and method == "GET":
            return 200, {
                "jobs": [
                    job.as_dict(include_result=False)
                    for job in self.store.jobs()
                ]
            }, {}
        if path.startswith("/jobs/"):
            if method != "GET":
                return 405, {"error": f"{method} not allowed on {path}"}, {}
            job = self.store.get(path[len("/jobs/"):])
            if job is None:
                return 404, {"error": "no such job"}, {}
            return 200, job.as_dict(), {}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": f"{method} not allowed on {path}"}, {}
            return 200, self.stats(), {}
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": f"{method} not allowed on {path}"}, {}
            return 200, {"ok": True, "in_flight": self._in_flight}, {}
        if path == "/jobs":
            return 405, {"error": f"{method} not allowed on {path}"}, {}
        return 404, {"error": f"no such route {path!r}"}, {}

    def _submit(
        self, body: bytes
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "request body is not valid JSON"}, {}
        try:
            request = JobRequest.from_payload(
                payload, max_points=self.config.max_points
            )
        except SchemaError as error:
            return 400, {"error": str(error)}, {}
        try:
            job, position = self.queue.offer(
                lambda: self.store.create(request), request.tenant
            )
        except AdmissionError as error:
            return 429, {
                "error": error.detail,
                "reason": error.reason,
            }, {"Retry-After": "1"}
        if self._wake is not None:
            self._wake.set()
        return 202, {
            "job_id": job.job_id,
            "status": job.status,
            "position": position,
        }, {}


class BackgroundServer:
    """A :class:`JobServer` on its own thread + event loop.

    The in-process harness tests and the smoke gate use: ``with
    BackgroundServer(config) as handle:`` yields a bound, serving
    instance whose ``host``/``port`` are real, then tears it down.
    ``start_worker=False`` leaves the queue undrained -- the
    deterministic way to exercise backpressure (fill the queue, assert
    429) without racing a live worker.
    """

    def __init__(self, config: ServeConfig, start_worker: bool = True) -> None:
        self.server = JobServer(config, start_worker=start_worker)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to come up within 30s")
        if self._error is not None:
            raise RuntimeError(
                f"server thread failed to start: {self._error!r}"
            )
        return self

    def _main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as error:
            self._error = error
            self._ready.set()
            self._loop.close()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
            self._loop.run_until_complete(self.server.stop())
        finally:
            self._loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()
