"""Request/response schemas for the simulation job server.

A job is a batch of :class:`~repro.experiments.sweep.SweepPoint`
coordinates -- the same workload x design x threshold x memory-backend x
link-scale vocabulary the sweep layer speaks -- plus execution options
(``jobs``, ``backend``, ``task_timeout``).  Validation happens at
admission time: a request that names an unknown workload, design or
executor backend is rejected with a field-by-field error message before
it ever reaches the queue, so the queue only ever holds runnable work.

The job *result* payload embeds a full
:class:`~repro.obs.manifest.RunManifest` (schema
``repro-run-manifest/1``), making every HTTP response exactly as
auditable as a manifest written next to a CLI run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core import Design
from repro.experiments.runner import RunKey
from repro.experiments.sweep import SweepPoint
from repro.faults.backends import BACKEND_NAMES
from repro.memory.registry import memory_backend_names
from repro.workloads import workload_names

JOB_SCHEMA = "repro-serve-job/1"
"""Schema marker accepted (optionally) in submissions and always present
in job JSON."""

DEFAULT_MAX_POINTS = 64
"""Admission-time ceiling on points per job; one HTTP job is a batch,
not an unbounded sweep (use the ``sweep`` CLI for those)."""

DEFAULT_TENANT = "anonymous"
"""Tenant label when a request carries none."""

_POINT_FIELDS = frozenset(
    {"workload", "design", "angle_threshold", "memory_backend",
     "link_bandwidth_scale"}
)
_REQUEST_FIELDS = frozenset(
    {"schema", "tenant", "points", "jobs", "backend", "task_timeout"}
)


class SchemaError(ValueError):
    """A submission failed admission-time validation (HTTP 400)."""


def _design_by_name(name: Any) -> Design:
    """Resolve a design by enum name (``A_TFIM``) or value (``atfim``)."""
    if isinstance(name, str):
        if name in Design.__members__:
            return Design[name]
        for design in Design:
            if design.value == name:
                return design
    raise SchemaError(
        f"unknown design {name!r}; expected one of "
        f"{sorted(Design.__members__)} (or values "
        f"{sorted(d.value for d in Design)})"
    )


def _finite_number(value: Any, path: str, minimum: float = 0.0) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchemaError(f"{path} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value) or value < minimum:
        raise SchemaError(
            f"{path} must be finite and >= {minimum:g}, got {value!r}"
        )
    return value


def parse_point(payload: Mapping[str, Any], path: str = "points[0]") -> SweepPoint:
    """Validate one JSON point into a :class:`SweepPoint`.

    Unknown fields are rejected (a typo like ``angle_treshold`` must be
    a 400, not a silently-defaulted axis).
    """
    if not isinstance(payload, Mapping):
        raise SchemaError(f"{path} must be an object, got {payload!r}")
    unknown = sorted(set(payload) - _POINT_FIELDS)
    if unknown:
        raise SchemaError(
            f"{path} has unknown field(s) {unknown}; "
            f"expected a subset of {sorted(_POINT_FIELDS)}"
        )
    workload = payload.get("workload")
    if workload not in workload_names():
        raise SchemaError(
            f"{path}.workload: unknown workload {workload!r}"
        )
    design = _design_by_name(payload.get("design"))
    threshold = _finite_number(
        payload.get("angle_threshold", 0.0314159), f"{path}.angle_threshold"
    )
    backend = payload.get("memory_backend", "hmc")
    if backend not in memory_backend_names():
        raise SchemaError(
            f"{path}.memory_backend: unknown backend {backend!r}; "
            f"expected one of {sorted(memory_backend_names())}"
        )
    link_scale = _finite_number(
        payload.get("link_bandwidth_scale", 1.0),
        f"{path}.link_bandwidth_scale",
    )
    if link_scale <= 0:
        raise SchemaError(
            f"{path}.link_bandwidth_scale must be positive, got {link_scale!r}"
        )
    return SweepPoint(
        workload=workload,
        design=design,
        angle_threshold=threshold,
        memory_backend=backend,
        link_bandwidth_scale=link_scale,
    )


def point_as_dict(point: SweepPoint) -> Dict[str, Any]:
    """The JSON form of one point (inverse of :func:`parse_point`)."""
    return {
        "workload": point.workload,
        "design": point.design.name,
        "angle_threshold": point.angle_threshold,
        "memory_backend": point.memory_backend,
        "link_bandwidth_scale": point.link_bandwidth_scale,
    }


@dataclass(frozen=True)
class JobRequest:
    """A validated job submission."""

    tenant: str
    points: Tuple[SweepPoint, ...]
    jobs: Optional[int] = None
    backend: Optional[str] = None
    task_timeout: Optional[float] = None

    @classmethod
    def from_payload(
        cls,
        payload: Any,
        max_points: int = DEFAULT_MAX_POINTS,
    ) -> "JobRequest":
        """Validate a decoded JSON body; raise :class:`SchemaError`."""
        if not isinstance(payload, Mapping):
            raise SchemaError(
                f"request body must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        unknown = sorted(set(payload) - _REQUEST_FIELDS)
        if unknown:
            raise SchemaError(
                f"unknown request field(s) {unknown}; "
                f"expected a subset of {sorted(_REQUEST_FIELDS)}"
            )
        schema = payload.get("schema", JOB_SCHEMA)
        if schema != JOB_SCHEMA:
            raise SchemaError(
                f"unsupported schema {schema!r}; this server speaks "
                f"{JOB_SCHEMA!r}"
            )
        tenant = payload.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            raise SchemaError(f"tenant must be a non-empty string, got {tenant!r}")
        raw_points = payload.get("points")
        if not isinstance(raw_points, list) or not raw_points:
            raise SchemaError("points must be a non-empty array")
        if len(raw_points) > max_points:
            raise SchemaError(
                f"too many points ({len(raw_points)} > {max_points}); "
                "split the batch or use the sweep CLI"
            )
        points = tuple(
            parse_point(point, f"points[{index}]")
            for index, point in enumerate(raw_points)
        )
        jobs = payload.get("jobs")
        if jobs is not None:
            if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
                raise SchemaError(f"jobs must be a positive integer, got {jobs!r}")
        backend = payload.get("backend")
        if backend is not None and backend not in BACKEND_NAMES:
            raise SchemaError(
                f"unknown executor backend {backend!r}; expected one of "
                f"{list(BACKEND_NAMES)}"
            )
        task_timeout = payload.get("task_timeout")
        if task_timeout is not None:
            task_timeout = _finite_number(task_timeout, "task_timeout")
            if task_timeout <= 0:
                raise SchemaError(
                    f"task_timeout must be positive, got {task_timeout!r}"
                )
        return cls(
            tenant=tenant,
            points=points,
            jobs=jobs,
            backend=backend,
            task_timeout=task_timeout,
        )

    def run_keys(self) -> List[RunKey]:
        """The deduplicated simulations this job schedules.

        Baseline normalization runs come first (every speedup divides by
        one), then each point's canonical run key, in submission order --
        the same expansion :func:`repro.experiments.sweep.run_sweep`
        performs.
        """
        keys: List[RunKey] = []
        seen = set()
        for point in self.points:
            for key in (point.baseline_key(), point.run_key()):
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
        return keys

    def describe(self) -> Dict[str, Any]:
        """JSON-able summary (the manifest's ``config`` block)."""
        return {
            "schema": JOB_SCHEMA,
            "tenant": self.tenant,
            "points": [point_as_dict(point) for point in self.points],
            "jobs": self.jobs,
            "backend": self.backend,
            "task_timeout": self.task_timeout,
        }
