"""Multi-tenant FIFO admission queue for the job server.

Admission control is the server's backpressure mechanism: a bounded
queue depth caps total memory and wait time (a rejected client retries
with jitter; an accepted job has a bounded position), and an optional
per-tenant quota keeps one chatty client from monopolizing the window.
Both rejections map to HTTP 429 with a machine-readable reason.

The queue is a plain thread-safe structure (no asyncio coupling): the
HTTP handlers call :meth:`AdmissionQueue.offer` from the event loop and
the job worker drains it from wherever it runs.  Admission and enqueue
are atomic -- :meth:`offer` takes a *factory* for the item so that
resources with dense identities (the store's ``job-NNNNNN`` counter) are
only ever allocated for admitted work.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Tuple

DEFAULT_MAX_DEPTH = 8
"""Default queue-depth bound (jobs waiting, excluding the one running)."""


@dataclass
class QueueStats:
    """Lifetime counters for one :class:`AdmissionQueue`."""

    admitted: int = 0
    dequeued: int = 0
    rejected_depth: int = 0
    """Submissions refused because the queue was at ``max_depth``."""
    rejected_tenant: int = 0
    """Submissions refused because the tenant was at its quota."""

    def as_dict(self) -> Dict[str, int]:
        return {
            "admitted": self.admitted,
            "dequeued": self.dequeued,
            "rejected_depth": self.rejected_depth,
            "rejected_tenant": self.rejected_tenant,
        }


class AdmissionError(Exception):
    """A submission was refused; ``reason`` is the machine-readable tag."""

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(detail)
        self.reason = reason
        self.detail = detail


class AdmissionQueue:
    """Bounded FIFO with per-tenant quotas and rejection accounting."""

    def __init__(
        self,
        max_depth: int = DEFAULT_MAX_DEPTH,
        tenant_quota: Optional[int] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError("tenant_quota must be at least 1 (or None)")
        self.max_depth = max_depth
        self.tenant_quota = tenant_quota
        self.stats = QueueStats()
        self._items: Deque[Tuple[str, Any]] = deque()
        self._lock = threading.Lock()

    def offer(
        self, factory: Callable[[], Any], tenant: str
    ) -> Tuple[Any, int]:
        """Admit one item, or raise :class:`AdmissionError`.

        ``factory`` is only invoked for admitted submissions (inside the
        admission lock), so identities it allocates stay dense over the
        admitted sequence.  Returns ``(item, position)`` where position
        1 is the head of the queue.
        """
        with self._lock:
            if len(self._items) >= self.max_depth:
                self.stats.rejected_depth += 1
                raise AdmissionError(
                    "queue-full",
                    f"queue is at its depth bound ({self.max_depth}); "
                    "retry after the backlog drains",
                )
            if self.tenant_quota is not None:
                waiting = sum(
                    1 for owner, _item in self._items if owner == tenant
                )
                if waiting >= self.tenant_quota:
                    self.stats.rejected_tenant += 1
                    raise AdmissionError(
                        "tenant-quota",
                        f"tenant {tenant!r} already has {waiting} queued "
                        f"job(s) (quota {self.tenant_quota}); "
                        "retry after one completes",
                    )
            item = factory()
            self._items.append((tenant, item))
            self.stats.admitted += 1
            return item, len(self._items)

    def take(self) -> Optional[Any]:
        """Pop the head of the queue, or ``None`` when empty."""
        with self._lock:
            if not self._items:
                return None
            _tenant, item = self._items.popleft()
            self.stats.dequeued += 1
            return item

    def depth(self) -> int:
        """Jobs currently waiting."""
        with self._lock:
            return len(self._items)

    def depth_by_tenant(self) -> Dict[str, int]:
        """Waiting jobs per tenant (deterministic key order)."""
        with self._lock:
            counts: Dict[str, int] = {}
            for tenant, _item in self._items:
                counts[tenant] = counts.get(tenant, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> Dict[str, Any]:
        """Stats snapshot for the ``/stats`` endpoint."""
        payload: Dict[str, Any] = {
            "depth": self.depth(),
            "max_depth": self.max_depth,
            "tenant_quota": self.tenant_quota,
            "by_tenant": self.depth_by_tenant(),
        }
        payload.update(self.stats.as_dict())
        return payload
