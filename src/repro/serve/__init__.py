"""``repro.serve``: simulation-as-a-service over the experiment runner.

An asyncio HTTP/JSON job server (stdlib only) fronting
:class:`~repro.experiments.runner.ExperimentRunner`:

* :mod:`~repro.serve.schemas` -- the job request/result vocabulary
  (:class:`~repro.serve.schemas.JobRequest` wraps
  :class:`~repro.experiments.sweep.SweepPoint` batches with
  admission-time validation).
* :mod:`~repro.serve.queue` -- bounded multi-tenant FIFO admission
  queue; rejections are HTTP 429 backpressure.
* :mod:`~repro.serve.jobs` -- job lifecycle records, the dense-id
  store, and the worker that executes one job at a time through the
  fault-tolerant fan-out scheduler.
* :mod:`~repro.serve.app` -- the HTTP server itself
  (``python -m repro serve``) plus :class:`~repro.serve.app.BackgroundServer`
  for in-process tests and the ``make serve-smoke`` gate.
"""

from repro.serve.app import (
    BackgroundServer,
    JobServer,
    MAX_BODY_BYTES,
    STATS_SCHEMA,
    ServeConfig,
)
from repro.serve.jobs import JOB_STATES, Job, JobRunner, JobStore
from repro.serve.queue import (
    AdmissionError,
    AdmissionQueue,
    DEFAULT_MAX_DEPTH,
    QueueStats,
)
from repro.serve.schemas import (
    DEFAULT_MAX_POINTS,
    DEFAULT_TENANT,
    JOB_SCHEMA,
    JobRequest,
    SchemaError,
    parse_point,
    point_as_dict,
)

__all__ = [
    "AdmissionError",
    "AdmissionQueue",
    "BackgroundServer",
    "DEFAULT_MAX_DEPTH",
    "DEFAULT_MAX_POINTS",
    "DEFAULT_TENANT",
    "JOB_SCHEMA",
    "JOB_STATES",
    "Job",
    "JobRequest",
    "JobRunner",
    "JobServer",
    "JobStore",
    "MAX_BODY_BYTES",
    "QueueStats",
    "STATS_SCHEMA",
    "SchemaError",
    "ServeConfig",
    "parse_point",
    "point_as_dict",
]
