"""Run manifests: the provenance record written next to experiment output.

A :class:`RunManifest` captures everything needed to trust -- or
reproduce -- one invocation of the experiment tooling: the command and
configuration (with a content digest), the simulator source version the
results were computed from, the runner's cache effectiveness counters,
the span tree recorded by :mod:`repro.obs.tracer`, and the flattened
:class:`~repro.sim.stats.StatGroup` metrics of every completed design
run.  Serialized as strict JSON (``allow_nan=False``: the PR-1 JSON
safety rule -- non-finite values are a bug, not a serialization detail).

``python -m repro trace <manifest.json>`` converts the embedded span
tree to Chrome trace-event format (see :mod:`repro.obs.chrome`).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.chrome import chrome_trace
from repro.obs.tracer import Tracer, get_tracer, tracing_enabled

MANIFEST_SCHEMA = "repro-run-manifest/1"


def config_digest(config: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON form of a config mapping
    (first 16 hex chars, mirroring the cache's key digests)."""
    canonical = json.dumps(dict(config), sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class RunManifest:
    """One tool invocation's provenance + telemetry record."""

    command: str
    config: Dict[str, Any]
    digest: str
    source: str
    created_unix: float
    tracing: bool
    cache: Dict[str, float] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    stats: Dict[str, Optional[float]] = field(default_factory=dict)
    faults: Dict[str, Any] = field(default_factory=dict)
    """Robustness record: the active fault plan (if any) and the last
    fan-out's per-key outcomes.  Empty when the run never fanned out."""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "command": self.command,
            "config": self.config,
            "digest": self.digest,
            "source": self.source,
            "created_unix": self.created_unix,
            "tracing": self.tracing,
            "cache": self.cache,
            "spans": self.spans,
            "stats": self.stats,
            "faults": self.faults,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunManifest":
        """Inverse of :meth:`as_dict`; validates the schema marker."""
        schema = payload.get("schema")
        if schema != MANIFEST_SCHEMA:
            raise ValueError(
                f"not a run manifest (schema {schema!r}, "
                f"expected {MANIFEST_SCHEMA!r})"
            )
        return cls(
            command=payload["command"],
            config=dict(payload.get("config", {})),
            digest=payload["digest"],
            source=payload["source"],
            created_unix=payload["created_unix"],
            tracing=bool(payload.get("tracing", False)),
            cache=dict(payload.get("cache", {})),
            spans=list(payload.get("spans", [])),
            stats=dict(payload.get("stats", {})),
            faults=dict(payload.get("faults", {})),
        )

    def chrome_trace(self) -> Dict[str, Any]:
        """The embedded span tree as a Chrome trace-event object."""
        return chrome_trace(self.spans)

    def write(self, path: Union[str, Path]) -> Path:
        """Write strict JSON (non-finite values are a bug, not data)."""
        output = Path(path)
        output.write_text(
            json.dumps(self.as_dict(), indent=2, allow_nan=False) + "\n",
            encoding="utf-8",
        )
        return output


def load_manifest(path: Union[str, Path]) -> RunManifest:
    """Read and validate a manifest written by :meth:`RunManifest.write`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return RunManifest.from_dict(payload)


def build_manifest(
    command: str,
    config: Optional[Mapping[str, Any]] = None,
    runner: Optional[Any] = None,
    tracer: Optional[Tracer] = None,
    fanout: Optional[Any] = None,
) -> RunManifest:
    """Assemble a manifest from the current process state.

    ``runner`` (an :class:`~repro.experiments.runner.ExperimentRunner`)
    contributes its cache counters and the flattened per-run StatGroup
    metrics; the span tree is drained from ``tracer`` (default: the
    process-wide one).  ``fanout`` (a
    :class:`~repro.faults.outcomes.FanoutReport`) overrides the
    runner's *most recent* fan-out record -- a persistent server
    building one manifest per job passes each job's own report here,
    since ``runner.fanout_report()`` only remembers the last batch.
    """
    # Imported lazily: the cache module itself records spans through
    # repro.obs, so a top-level import would be circular.
    from repro.experiments.cache import source_version

    config = dict(config or {})
    tracer = tracer if tracer is not None else get_tracer()
    cache: Dict[str, float] = {}
    stats: Dict[str, Optional[float]] = {}
    faults: Dict[str, Any] = {}
    from repro.faults.injector import active_injector

    injector = active_injector()
    if injector is not None:
        faults["plan"] = injector.plan.as_dict()
    if runner is not None:
        from repro.obs.snapshot import runner_stat_group

        if fanout is None:
            report = getattr(runner, "fanout_report", None)
            if callable(report):
                fanout = report()
        counters = runner.cache_stats()
        cache = {
            "memo_hits": float(counters.memo_hits),
            "memo_misses": float(counters.memo_misses),
            "disk_hits": float(counters.disk_hits),
            "disk_misses": float(counters.disk_misses),
            "disk_stores": float(counters.disk_stores),
            "disk_errors": float(counters.disk_errors),
            "disk_entries": float(counters.disk_entries),
            "disk_bytes": float(counters.disk_bytes),
            "disk_hit_rate": counters.disk_hit_rate,
        }
        stats = runner_stat_group(runner).as_dict()
    if fanout is not None and fanout.tasks:
        faults["fanout"] = fanout.as_dict()
    return RunManifest(
        command=command,
        config=config,
        digest=config_digest(config),
        source=source_version(),
        created_unix=time.time(),  # repro: noqa(REP300) -- provenance timestamp; excluded from the bit-identity comparison
        tracing=tracing_enabled(),
        cache=cache,
        spans=tracer.as_dicts(),
        stats=stats,
        faults=faults,
    )


def write_chrome_trace(manifest: Union[RunManifest, str, Path],
                       path: Union[str, Path]) -> Path:
    """Write the Chrome trace of a manifest (object or file) to ``path``."""
    if not isinstance(manifest, RunManifest):
        manifest = load_manifest(manifest)
    output = Path(path)
    output.write_text(
        json.dumps(manifest.chrome_trace(), indent=2, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return output
