"""``repro.obs``: tracing spans, run manifests and metrics export.

The observability layer for the reproduction's *host-side* phases:

* :class:`~repro.obs.tracer.Span` / :class:`~repro.obs.tracer.Tracer` --
  context-manager spans (wall-clock start, monotonic duration, nesting,
  attributes, attached StatGroup snapshots), off by default and
  zero-overhead while off; enable with ``REPRO_TRACE=1`` or
  :func:`set_tracing`.
* :func:`timed_stage` -- decorator giving any function a span for free.
* :class:`~repro.obs.manifest.RunManifest` -- the JSON provenance record
  (config digest, source version, cache counters, span tree, flattened
  metrics) written next to experiment output by the ``--manifest`` flag
  of ``report``/``fig``/``bench``.
* :mod:`~repro.obs.chrome` -- Chrome trace-event export of the span
  tree (``python -m repro trace <manifest.json>``).
* :mod:`~repro.obs.snapshot` -- StatGroup snapshots of drained frames,
  design runs and whole runners.
* :mod:`~repro.obs.attribution` -- span-tree -> per-name wall-clock
  cost table (inclusive/exclusive seconds), consumed by the REP400
  profile-guided linter ranking.
"""

from repro.obs.attribution import (
    SpanCost,
    attribute_spans,
    iter_spans,
    profile_total,
)
from repro.obs.chrome import chrome_trace
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    build_manifest,
    config_digest,
    load_manifest,
    write_chrome_trace,
)
from repro.obs.snapshot import frame_stat_group, run_stat_group, runner_stat_group
from repro.obs.tracer import (
    ENV_FLAG,
    Span,
    Tracer,
    annotate,
    attach_stats,
    event,
    get_tracer,
    reset_tracer,
    scoped_tracer,
    set_tracing,
    span,
    timed_stage,
    tracing_enabled,
)

__all__ = [
    "ENV_FLAG",
    "MANIFEST_SCHEMA",
    "RunManifest",
    "Span",
    "SpanCost",
    "Tracer",
    "annotate",
    "attach_stats",
    "attribute_spans",
    "event",
    "build_manifest",
    "chrome_trace",
    "config_digest",
    "frame_stat_group",
    "get_tracer",
    "iter_spans",
    "load_manifest",
    "profile_total",
    "reset_tracer",
    "run_stat_group",
    "scoped_tracer",
    "runner_stat_group",
    "set_tracing",
    "span",
    "timed_stage",
    "tracing_enabled",
    "write_chrome_trace",
]
