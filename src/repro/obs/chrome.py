"""Chrome trace-event export of a recorded span tree.

``chrome://tracing`` (and Perfetto's legacy importer) consume a JSON
object with a ``traceEvents`` list of *complete* events (``"ph": "X"``),
each carrying microsecond ``ts``/``dur`` plus ``pid``/``tid`` lane
coordinates.  Spans recorded by :mod:`repro.obs.tracer` map directly:
the wall-clock start aligns spans across processes (pool workers ship
their spans back as dictionaries), and each worker's subtree gets its
own ``tid`` lane.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

MAIN_TID = 1
"""Thread-id lane for spans recorded by the driving process."""

WORKER_SPANS_KEY = "worker_spans"
"""Span attribute under which ``run_many`` grafts worker span forests."""


def _min_start(spans: Sequence[Mapping[str, Any]]) -> Optional[float]:
    """Earliest wall-clock start across a span forest (or None)."""
    earliest: Optional[float] = None
    for span in spans:
        start = span.get("start_wall")
        if isinstance(start, (int, float)):
            if earliest is None or start < earliest:
                earliest = start
        nested: List[Mapping[str, Any]] = list(span.get("children", ()))
        for forest in span.get("attributes", {}).get(WORKER_SPANS_KEY, ()):
            nested.extend(forest)
        child_min = _min_start(nested)
        if child_min is not None and (earliest is None or child_min < earliest):
            earliest = child_min
    return earliest


def _emit(span: Mapping[str, Any], epoch: float, tid: int,
          events: List[Dict[str, Any]]) -> None:
    start = float(span.get("start_wall", epoch))
    duration = span.get("duration") or 0.0
    args: Dict[str, Any] = {
        key: value
        for key, value in span.get("attributes", {}).items()
        if key != WORKER_SPANS_KEY
    }
    stats = span.get("stats") or {}
    if stats:
        args["stats"] = dict(stats)
    events.append(
        {
            "name": str(span.get("name", "?")),
            "ph": "X",
            "ts": (start - epoch) * 1e6,
            "dur": float(duration) * 1e6,
            "pid": 1,
            "tid": tid,
            "args": args,
        }
    )
    for child in span.get("children", ()):
        _emit(child, epoch, tid, events)
    worker_forests = span.get("attributes", {}).get(WORKER_SPANS_KEY, ())
    for worker_index, forest in enumerate(worker_forests):
        for worker_span in forest:
            _emit(worker_span, epoch, MAIN_TID + 1 + worker_index, events)


def chrome_trace(spans: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Convert a span forest (``Span.as_dict`` form) to a Chrome trace.

    Returns the full trace object (``traceEvents`` + metadata); dump it
    with ``json.dumps`` and load the file in ``chrome://tracing``.
    """
    epoch = _min_start(spans) or 0.0
    events: List[Dict[str, Any]] = []
    for span in spans:
        _emit(span, epoch, MAIN_TID, events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs"},
    }
