"""Context-manager tracing spans over the reproduction's host-side phases.

A :class:`Span` records one named interval of *host* wall-clock work --
trace generation, a design-point simulation, a cache load -- with a
monotonic-clock duration, a wall-clock start for cross-process alignment,
nested parent/child structure, free-form attributes, and an optional
flattened :class:`~repro.sim.stats.StatGroup` snapshot attached at drain
time.  Simulated time (cycles) never flows through here; spans measure
the reproduction itself, which is why this module (like
:mod:`repro.perf`) is exempt from the REP102 wall-clock lint rule.

Tracing is **off by default** and must cost nothing when off: every
entry point checks one module-level flag and returns a preallocated
no-op context manager, so instrumented hot paths pay a single boolean
test per call.  Enable with the ``REPRO_TRACE=1`` environment variable
or :func:`set_tracing` (which also exports the variable so
``ProcessPoolExecutor`` workers inherit the setting).
"""

from __future__ import annotations

import contextlib
import functools
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, TypeVar, Union

ENV_FLAG = "REPRO_TRACE"
"""Environment variable that switches tracing on (any value but ``0``)."""

_enabled: bool = os.environ.get(ENV_FLAG, "").strip() not in ("", "0")


def tracing_enabled() -> bool:
    """Whether spans are being recorded in this process."""
    return _enabled


def set_tracing(on: bool, propagate_env: bool = True) -> None:
    """Flip the module flag at runtime.

    With ``propagate_env`` (the default) the ``REPRO_TRACE`` variable is
    exported/cleared too, so pool workers forked after the call trace
    (or don't) consistently with their parent.
    """
    global _enabled
    _enabled = bool(on)
    if propagate_env:
        if on:
            os.environ[ENV_FLAG] = "1"
        else:
            os.environ.pop(ENV_FLAG, None)


@dataclass
class Span:
    """One named, timed, possibly-nested interval of host work."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_wall: float
    """Wall-clock start (unix seconds) -- aligns spans across processes."""
    start: float
    """Monotonic-clock start (seconds); durations come from this clock."""
    duration: Optional[float] = None
    """Monotonic seconds from enter to exit; ``None`` while open."""
    attributes: Dict[str, Any] = field(default_factory=dict)
    stats: Dict[str, Optional[float]] = field(default_factory=dict)
    """Flattened StatGroup snapshot attached while the span was current."""
    children: List["Span"] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe recursive form (the manifest's span-tree schema)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_wall": self.start_wall,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "stats": dict(self.stats),
            "children": [child.as_dict() for child in self.children],
        }


class _NullSpan:
    """The shared do-nothing context manager handed out when disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *_exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager that opens/closes one span on its tracer."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._begin(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type: object, exc: object, _tb: object) -> bool:
        span = self._span
        if span is not None:
            if exc is not None:
                span.attributes.setdefault("error", repr(exc))
            self._tracer._end(span)
        return False


class Tracer:
    """Records a forest of spans for one process.

    One module-level instance (:func:`get_tracer`) serves the whole
    process; pool workers reset their inherited copy and ship their
    span dictionaries back to the parent (see
    :meth:`~repro.experiments.runner.ExperimentRunner.run_many`).
    """

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # -- recording ------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Union[_SpanHandle, _NullSpan]:
        """A context manager recording ``name`` as a child of the current
        span; yields the :class:`Span` (or ``None`` when disabled)."""
        if not _enabled:
            return _NULL_SPAN
        return _SpanHandle(self, name, attributes)

    def _begin(self, name: str, attributes: Dict[str, Any]) -> Span:
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start_wall=time.time(),
            start=time.monotonic(),
            attributes=dict(attributes),
        )
        self._next_id += 1
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _end(self, span: Span) -> None:
        span.duration = time.monotonic() - span.start
        # Unwind to (and including) the span; tolerates a child left
        # open by an exception that skipped its __exit__.
        while self._stack:
            if self._stack.pop() is span:
                break

    def event(self, name: str, **attributes: Any) -> Optional[Span]:
        """Record an instantaneous (zero-duration) span.

        Point-in-time markers -- a retry scheduled, a pool rebuilt, a
        task degraded -- share the span tree's structure (they nest
        under the current span) without needing enter/exit pairing.
        """
        if not _enabled:
            return None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start_wall=time.time(),
            start=time.monotonic(),
            duration=0.0,
            attributes=dict(attributes),
        )
        self._next_id += 1
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the current span (no-op when disabled)."""
        span = self.current()
        if span is not None:
            span.attributes.update(attributes)

    def attach_stats(self, stats: Union[Mapping[str, Any],
                                        Iterable[Tuple[str, float]], Any],
                     prefix: str = "") -> None:
        """Attach a flattened statistics snapshot to the current span.

        Accepts a :class:`~repro.sim.stats.StatGroup` (anything with a
        ``flatten()`` method), a mapping, or an iterable of ``(path,
        value)`` pairs.  No-op when disabled or outside any span.
        """
        span = self.current()
        if span is None:
            return
        if hasattr(stats, "flatten"):
            items: Iterable[Tuple[str, float]] = stats.flatten()
        elif isinstance(stats, Mapping):
            items = stats.items()
        else:
            items = stats
        for key, value in items:
            span.stats[f"{prefix}{key}"] = None if value is None else float(value)

    # -- draining -------------------------------------------------------

    def as_dicts(self) -> List[Dict[str, Any]]:
        """The recorded span forest as JSON-safe dictionaries."""
        return [span.as_dict() for span in self.roots]

    def reset(self) -> None:
        """Drop all recorded spans and any open stack."""
        self.roots = []
        self._stack = []
        self._next_id = 1


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer instance."""
    return _TRACER


def span(name: str, **attributes: Any) -> Union[_SpanHandle, _NullSpan]:
    """Module-level shorthand for ``get_tracer().span(...)``.

    Zero-overhead when disabled: one flag test, one preallocated no-op
    object returned.
    """
    if not _enabled:
        return _NULL_SPAN
    return _TRACER.span(name, **attributes)


def annotate(**attributes: Any) -> None:
    """Attach attributes to the current span, if tracing and in a span."""
    if _enabled:
        _TRACER.annotate(**attributes)


def event(name: str, **attributes: Any) -> Optional[Span]:
    """Record an instantaneous marker span (no-op when disabled)."""
    if not _enabled:
        return None
    return _TRACER.event(name, **attributes)


def attach_stats(stats: Any, prefix: str = "") -> None:
    """Attach a StatGroup/mapping snapshot to the current span."""
    if _enabled:
        _TRACER.attach_stats(stats, prefix=prefix)


def reset_tracer() -> None:
    """Clear the process-wide tracer (pool workers call this on entry:
    a forked worker inherits the parent's half-built span forest)."""
    _TRACER.reset()  # repro: noqa(REP301) -- dropping inherited spans on worker entry is the fork-safety fix, not the hazard


@contextlib.contextmanager
def scoped_tracer() -> Iterator[Tracer]:
    """Swap in a fresh process-wide tracer for the duration of the block.

    The request-scoped recording discipline for long-running processes:
    a job server tracing every request into the single process tracer
    would accumulate an unbounded span forest, so each request records
    into its own throwaway :class:`Tracer` (drain it with
    :meth:`Tracer.as_dicts` before the block ends) and the previous
    tracer -- spans and open-stack intact -- is restored on exit.
    Scopes may nest; they are not thread-safe against *concurrent* span
    recording, matching the one-request-at-a-time job worker.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = Tracer()
    try:
        yield _TRACER
    finally:
        _TRACER = previous


_F = TypeVar("_F", bound=Callable[..., Any])


def timed_stage(name_or_fn: Union[str, None, _F] = None) -> Any:
    """Decorator giving a function a span for free.

    Usable bare or with an explicit span name::

        @timed_stage
        def drain(...): ...

        @timed_stage("runner.trace_phase")
        def trace_all(...): ...

    When tracing is disabled the wrapper is a single boolean test and a
    direct call -- instrumented code need not guard itself.
    """

    def decorate(fn: _F, span_name: str) -> _F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _enabled:
                return fn(*args, **kwargs)
            with _TRACER.span(span_name):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    if callable(name_or_fn):
        fn = name_or_fn
        return decorate(fn, f"{fn.__module__}.{fn.__qualname__}")

    explicit = name_or_fn

    def outer(fn: _F) -> _F:
        return decorate(fn, explicit or f"{fn.__module__}.{fn.__qualname__}")

    return outer
