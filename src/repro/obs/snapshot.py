"""StatGroup snapshots of simulated artefacts for span/manifest export.

The simulator's per-component counters (stage cycles, traffic bytes,
cache outcomes, texture-unit activity, memory-system events) live in
many small objects; these helpers roll one frame -- or a whole runner's
worth of frames -- into a single :class:`~repro.sim.stats.StatGroup`
tree whose :meth:`~repro.sim.stats.StatGroup.flatten` output is what the
run manifest and the span tree embed.

Everything here reads drained results; nothing mutates simulator state.
Snapshot group names use ``/`` inside path segments (``doom3/a-tfim``)
so the dotted paths ``flatten`` produces stay unambiguous.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.stats import StatGroup

if TYPE_CHECKING:  # imported lazily at runtime to keep obs dependency-light
    from repro.core.frontend import DesignRun
    from repro.experiments.runner import ExperimentRunner
    from repro.gpu.pipeline import FrameResult


def frame_stat_group(frame: "FrameResult", name: str = "frame") -> StatGroup:
    """Roll one drained :class:`FrameResult` into a StatGroup tree."""
    group = StatGroup(name)

    stages = group.child("stages")
    stages.counter("geometry_cycles").add(frame.stages.geometry)  # repro: noqa(REP206) -- StageTimes.geometry is cycles; the joules inference collides with EnergyBreakdown.geometry
    stages.counter("rasterization_cycles").add(frame.stages.rasterization)
    stages.counter("shader_cycles").add(frame.stages.shader)  # repro: noqa(REP206) -- StageTimes.shader is cycles; the joules inference collides with EnergyBreakdown.shader
    stages.counter("texture_cycles").add(frame.stages.texture)
    stages.counter("rop_cycles").add(frame.stages.rop)  # repro: noqa(REP206) -- StageTimes.rop is cycles; the joules inference collides with EnergyBreakdown.rop
    stages.counter("fragment_stage_cycles").add(frame.stages.fragment_stage)
    stages.counter("frame_cycles").add(frame.frame_cycles)

    traffic = group.child("traffic")
    traffic.counter("external_bytes").add(frame.traffic.external_total)
    traffic.counter("external_texture_bytes").add(frame.traffic.external_texture)
    traffic.counter("internal_bytes").add(frame.traffic.internal_total)

    latency = group.child("texture_latency")
    latency.counter("requests").add(frame.texture_latency.count)
    latency.counter("mean_cycles").add(frame.texture_latency.mean)
    latency.counter("max_cycles").add(frame.texture_latency.max_latency)

    caches = group.child("caches")
    stats = frame.cache_stats
    caches.counter("l1_hits").add(stats.l1_hits)
    caches.counter("l1_misses").add(stats.l1_misses)
    caches.counter("l1_angle_misses").add(stats.l1_angle_misses)
    caches.counter("l2_hits").add(stats.l2_hits)
    caches.counter("l2_misses").add(stats.l2_misses)

    activity = group.child("activity")
    activity.counter("gpu_filter_ops").add(frame.path_activity.gpu_texture.filter_ops)
    activity.counter("gpu_address_ops").add(frame.path_activity.gpu_texture.address_ops)
    activity.counter("mtu_filter_ops").add(frame.path_activity.memory_texture.filter_ops)
    activity.counter("mtu_address_ops").add(frame.path_activity.memory_texture.address_ops)
    activity.counter("parent_recalculations").add(frame.path_activity.parent_recalculations)
    activity.counter("parent_reuses").add(frame.path_activity.parent_reuses)
    activity.counter("child_texels_generated").add(frame.path_activity.child_texels_generated)

    group.counter("fragments").add(frame.num_fragments)
    group.counter("requests").add(frame.num_requests)
    group.counter("texels_requested").add(frame.texels_requested)
    return group


def run_stat_group(run: "DesignRun", name: str = "run") -> StatGroup:
    """Snapshot one :class:`DesignRun`: the frame plus its texture path
    (which contributes the memory-model service counters)."""
    group = frame_stat_group(run.frame, name=name)
    group.adopt(run.path.stat_group("path"))
    return group


def runner_stat_group(runner: "ExperimentRunner") -> StatGroup:
    """Snapshot every design run an :class:`ExperimentRunner` completed.

    One child per completed grid point, named
    ``<workload>/<design>[/t<threshold>][/...]``, plus the runner's own
    memoisation and disk-cache counters.
    """
    root = StatGroup("runner")
    cache = root.child("cache")
    stats = runner.cache_stats()
    cache.counter("memo_hits").add(stats.memo_hits)
    cache.counter("memo_misses").add(stats.memo_misses)
    cache.counter("disk_hits").add(stats.disk_hits)
    cache.counter("disk_misses").add(stats.disk_misses)
    cache.counter("disk_stores").add(stats.disk_stores)
    cache.counter("disk_errors").add(stats.disk_errors)
    cache.counter("disk_entries").add(stats.disk_entries)
    cache.counter("disk_bytes").add(stats.disk_bytes)

    runs = root.child("runs")
    for key, run in runner.completed_runs().items():
        parts = [key.workload, key.design.value,
                 f"t{key.angle_threshold:.6f}"]
        if not key.aniso_enabled:
            parts.append("no-aniso")
        if key.mtu_share != 1:
            parts.append(f"mtu-share-{key.mtu_share}")
        if not key.consolidation_enabled:
            parts.append("no-consolidation")
        name = "/".join(parts)
        runs.adopt(run_stat_group(run, name=name))
    return root
