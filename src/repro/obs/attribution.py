"""Span-tree -> per-name wall-clock attribution.

The run manifest embeds the tracer's span forest
(:meth:`~repro.obs.tracer.Span.as_dict`): recursive dicts with a
``name`` (``timed_stage`` uses ``module.qualname``, manual spans use
dotted stage names like ``render.rasterize``), a monotonic
``duration`` and nested ``children``.  This module folds that forest
into a flat per-name cost table so consumers -- chiefly the REP400
profile-guided linter ranking -- can ask "what share of the run did
this code account for?" without walking trees themselves.

Two costs per name, the classic profiler pair:

* ``total``  -- inclusive seconds: the span and everything beneath it.
* ``self_seconds`` -- exclusive seconds: the span minus its children
  (clamped at zero; clock skew between a parent and its children must
  not create negative time).

Spans sharing a name (a stage called once per frame) accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional

__all__ = ["SpanCost", "attribute_spans", "iter_spans", "profile_total"]


@dataclass(frozen=True)
class SpanCost:
    """Accumulated wall-clock cost of every span sharing one name."""

    name: str
    total: float
    self_seconds: float
    count: int


def iter_spans(
    spans: Iterable[Mapping[str, Any]],
) -> Iterator[Mapping[str, Any]]:
    """Depth-first walk of a span forest (parents before children)."""
    stack: List[Mapping[str, Any]] = list(spans)[::-1]
    while stack:
        span = stack.pop()
        yield span
        children = span.get("children") or ()
        stack.extend(list(children)[::-1])


def attribute_spans(
    spans: Iterable[Mapping[str, Any]],
) -> Dict[str, SpanCost]:
    """Fold a span forest into ``{name: SpanCost}``."""
    totals: Dict[str, float] = {}
    selfs: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for span in iter_spans(spans):
        name = str(span.get("name", ""))
        duration = float(span.get("duration") or 0.0)
        child_time = sum(
            float(child.get("duration") or 0.0)
            for child in (span.get("children") or ())
        )
        totals[name] = totals.get(name, 0.0) + duration
        selfs[name] = selfs.get(name, 0.0) + max(0.0, duration - child_time)
        counts[name] = counts.get(name, 0) + 1
    return {
        name: SpanCost(name=name, total=totals[name],
                       self_seconds=selfs[name], count=counts[name])
        for name in totals
    }


def profile_total(spans: Iterable[Mapping[str, Any]]) -> float:
    """Total attributable wall-clock: the sum of root span durations."""
    return sum(float(span.get("duration") or 0.0) for span in spans)
