"""Unit-tagged scalar aliases and the shared unit vocabulary.

The simulator's arithmetic mixes heterogeneous physical quantities --
GPU cycles, transferred bytes, bytes-per-cycle rates, picojoules,
camera angles in radians -- and a silent mix-up (``bytes + cycles``,
``degrees > radians``) skews every figure the reproduction regenerates.
This module is the single source of truth for the quantity vocabulary:

* :data:`Cycles`, :data:`Bytes`, ... -- ``NewType`` aliases used in
  annotations throughout ``sim/``, ``memory/``, ``core/``, ``energy/``
  and ``texture/``.  They are identity functions at runtime (zero cost)
  but the :mod:`repro.analysis.units` dataflow pass reads them as unit
  tags and type checkers treat them as distinct types.
* :data:`UNIT_ALIASES` -- alias name -> canonical unit tag, the seed
  table the analyzer uses to interpret annotations.
* :func:`unit_for_name` -- the name-heuristic table: infers a unit tag
  from an identifier (``*_cycles``, ``nbytes``, ``energy_pj``,
  ``angle_deg``, ...) when no annotation is present.
* :data:`MUL_TABLE` / :data:`DIV_TABLE` -- the dimensional algebra:
  which products/quotients of tagged quantities are meaningful, and
  what unit they produce (``Cycles * BytesPerCycle -> Bytes``).

Keeping the vocabulary in the library proper (not inside the analyzer)
means runtime code, annotations and the static pass can never drift
apart.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, NewType, Optional, Tuple

# ---------------------------------------------------------------------------
# Annotation aliases.  All are identity wrappers over plain numbers.
# ---------------------------------------------------------------------------

Cycles = NewType("Cycles", float)
"""Time in GPU reference-clock cycles (1 GHz in Table I => 1 ns each)."""

Seconds = NewType("Seconds", float)
"""Wall-clock seconds of simulated time (reports only, never sim state)."""

Bytes = NewType("Bytes", float)
"""A byte count (transfer sizes, capacities, traffic totals)."""

Bits = NewType("Bits", float)
"""A bit count (per-bit energy bookkeeping, field widths)."""

BytesPerCycle = NewType("BytesPerCycle", float)
"""A transfer rate in bytes per GPU cycle (bandwidth-server rates)."""

Ops = NewType("Ops", float)
"""A count of ALU operations (address/filter ops, queue entries)."""

OpsPerCycle = NewType("OpsPerCycle", float)
"""An issue rate in operations per GPU cycle."""

Picojoules = NewType("Picojoules", float)
"""Dynamic energy in picojoules (per-event energy bookkeeping)."""

Joules = NewType("Joules", float)
"""Energy in joules (frame-level energy breakdowns)."""

PicojoulesPerBit = NewType("PicojoulesPerBit", float)
"""Per-bit transfer energy (HMC links 5 pJ/bit, DRAM 4 pJ/bit, ...)."""

PicojoulesPerByte = NewType("PicojoulesPerByte", float)
"""Energy per byte moved (e.g. ROP write cost)."""

PicojoulesPerOp = NewType("PicojoulesPerOp", float)
"""Energy per operation (e.g. one texture-ALU op)."""

Watts = NewType("Watts", float)
"""Static/leakage power in watts."""

Gigahertz = NewType("Gigahertz", float)
"""A clock frequency in GHz."""

GigabytesPerSecond = NewType("GigabytesPerSecond", float)
"""A bandwidth in GB/s, the paper's quoting convention (Table I)."""

Degrees = NewType("Degrees", float)
"""An angle in degrees (human-facing threshold labels)."""

Radians = NewType("Radians", float)
"""An angle in radians (all internal camera-angle arithmetic)."""


# ---------------------------------------------------------------------------
# Canonical unit tags (plain strings; the analyzer's currency).
# ---------------------------------------------------------------------------

U_CYCLES = "cycles"
U_SECONDS = "seconds"
U_BYTES = "bytes"
U_BITS = "bits"
U_BYTES_PER_CYCLE = "bytes_per_cycle"
U_OPS = "ops"
U_OPS_PER_CYCLE = "ops_per_cycle"
U_PJ = "pj"
U_JOULES = "joules"
U_PJ_PER_BIT = "pj_per_bit"
U_PJ_PER_BYTE = "pj_per_byte"
U_PJ_PER_OP = "pj_per_op"
U_WATTS = "watts"
U_GHZ = "ghz"
U_GB_PER_S = "gb_per_s"
U_DEGREES = "degrees"
U_RADIANS = "radians"
U_BITS_PER_BYTE = "bits_per_byte"
"""The 8-bits-in-a-byte conversion constant, a unit of its own so that
``bytes * BITS_PER_BYTE -> bits`` type-checks dimensionally."""
U_JOULES_PER_PJ = "joules_per_pj"
"""The 1e-12 pJ -> J conversion constant (the ``PJ`` scale factor)."""

BITS_PER_BYTE = 8
"""Bits per byte; carries unit ``bits_per_byte`` so ``bytes * BITS_PER_BYTE``
dimension-checks to bits."""

PJ = 1e-12
"""Joules per picojoule; carries unit ``joules_per_pj`` so
``pj * PJ`` dimension-checks to joules."""

SCALAR = "scalar"
"""A dimensionless quantity (ratios, fractions, counts of no unit)."""

ANGLE_UNITS: FrozenSet[str] = frozenset({U_DEGREES, U_RADIANS})

UNIT_ALIASES: Dict[str, str] = {
    "Cycles": U_CYCLES,
    "Seconds": U_SECONDS,
    "Bytes": U_BYTES,
    "Bits": U_BITS,
    "BytesPerCycle": U_BYTES_PER_CYCLE,
    "Ops": U_OPS,
    "OpsPerCycle": U_OPS_PER_CYCLE,
    "Picojoules": U_PJ,
    "Joules": U_JOULES,
    "PicojoulesPerBit": U_PJ_PER_BIT,
    "PicojoulesPerByte": U_PJ_PER_BYTE,
    "PicojoulesPerOp": U_PJ_PER_OP,
    "Watts": U_WATTS,
    "Gigahertz": U_GHZ,
    "GigabytesPerSecond": U_GB_PER_S,
    "Degrees": U_DEGREES,
    "Radians": U_RADIANS,
}


# ---------------------------------------------------------------------------
# Name heuristics: identifier -> unit tag.
# ---------------------------------------------------------------------------

# Exact (lowercased) identifier matches, tried first.
_EXACT_NAMES: Dict[str, str] = {
    "latency": U_CYCLES,
    "arrival": U_CYCLES,
    "makespan": U_CYCLES,
    "nbytes": U_BYTES,
    "bytes_per_cycle": U_BYTES_PER_CYCLE,
    "bpc": U_BYTES_PER_CYCLE,
    "ops_per_cycle": U_OPS_PER_CYCLE,
    "drain_rate": U_OPS_PER_CYCLE,
    "angle_threshold": U_RADIANS,
    "bits_per_byte": U_BITS_PER_BYTE,
    "pj": U_JOULES_PER_PJ,
    "energy_pj": U_PJ,
}

# Suffix matches on whole underscore-separated words, tried in order;
# rate-like compound suffixes must come before their bare-unit tails
# ("_bytes_per_cycle" before "_bytes", "_pj_per_bit" before "_pj").
_SUFFIX_UNITS: Tuple[Tuple[str, str], ...] = (
    ("bytes_per_cycle", U_BYTES_PER_CYCLE),
    ("ops_per_cycle", U_OPS_PER_CYCLE),
    ("gb_per_s", U_GB_PER_S),
    ("pj_per_bit", U_PJ_PER_BIT),
    ("pj_per_byte", U_PJ_PER_BYTE),
    ("pj_per_op", U_PJ_PER_OP),
    ("cycles", U_CYCLES),
    ("cycle", U_CYCLES),
    ("latency", U_CYCLES),
    ("bytes", U_BYTES),
    ("bits", U_BITS),
    ("pj", U_PJ),
    ("joules", U_JOULES),
    ("watts", U_WATTS),
    ("ghz", U_GHZ),
    ("ops", U_OPS),
    ("deg", U_DEGREES),
    ("degrees", U_DEGREES),
    ("rad", U_RADIANS),
    ("radians", U_RADIANS),
    ("fraction", SCALAR),
    ("ratio", SCALAR),
    ("scale", SCALAR),
    ("share", SCALAR),
)


def unit_for_name(identifier: str) -> Optional[str]:
    """Infer a unit tag from an identifier, or ``None`` if agnostic.

    Matching is on whole underscore-separated words so that ``nbytes``
    and ``total_bytes`` tag as bytes but ``frame_id`` never tags at all,
    and compound rate suffixes win over their tails (``bytes_per_cycle``
    is a rate, not bytes).
    """
    lowered = identifier.lower().lstrip("_")
    if lowered in _EXACT_NAMES:
        return _EXACT_NAMES[lowered]
    for suffix, unit in _SUFFIX_UNITS:
        if lowered == suffix or lowered.endswith("_" + suffix):
            return unit
    return None


# ---------------------------------------------------------------------------
# Dimensional algebra.
# ---------------------------------------------------------------------------

# Unordered products of two tagged quantities with a meaningful result.
_MUL_PAIRS: Tuple[Tuple[str, str, str], ...] = (
    (U_CYCLES, U_BYTES_PER_CYCLE, U_BYTES),
    (U_CYCLES, U_OPS_PER_CYCLE, U_OPS),
    (U_SECONDS, U_WATTS, U_JOULES),
    (U_SECONDS, U_GHZ, U_CYCLES),
    (U_SECONDS, U_GB_PER_S, U_BYTES),
    (U_BITS, U_PJ_PER_BIT, U_PJ),
    (U_BYTES, U_PJ_PER_BYTE, U_PJ),
    (U_OPS, U_PJ_PER_OP, U_PJ),
    (U_BYTES, U_BITS_PER_BYTE, U_BITS),
    (U_PJ, U_JOULES_PER_PJ, U_JOULES),
)

MUL_TABLE: Dict[Tuple[str, str], str] = {}
for _a, _b, _r in _MUL_PAIRS:
    MUL_TABLE[(_a, _b)] = _r
    MUL_TABLE[(_b, _a)] = _r

# Ordered quotients (numerator, denominator) -> result.  Every product
# rule implies its two quotient rules; a handful of genuine rate
# definitions are added on top.
DIV_TABLE: Dict[Tuple[str, str], str] = {}
for _a, _b, _r in _MUL_PAIRS:
    DIV_TABLE[(_r, _a)] = _b
    DIV_TABLE[(_r, _b)] = _a
DIV_TABLE.update(
    {
        (U_BYTES, U_CYCLES): U_BYTES_PER_CYCLE,
        (U_OPS, U_CYCLES): U_OPS_PER_CYCLE,
        (U_GB_PER_S, U_GHZ): U_BYTES_PER_CYCLE,
        (U_PJ, U_BITS): U_PJ_PER_BIT,
        (U_PJ, U_BYTES): U_PJ_PER_BYTE,
        (U_PJ, U_OPS): U_PJ_PER_OP,
        (U_JOULES, U_SECONDS): U_WATTS,
    }
)


def multiply_units(left: str, right: str) -> Optional[str]:
    """The unit of ``left * right``, or ``None`` if dimensionally wrong.

    ``SCALAR`` is the multiplicative identity.  Products of two tagged
    quantities are meaningful only when :data:`MUL_TABLE` says so.
    """
    if left == SCALAR:
        return right
    if right == SCALAR:
        return left
    return MUL_TABLE.get((left, right))


def divide_units(numerator: str, denominator: str) -> Optional[str]:
    """The unit of ``numerator / denominator``, or ``None`` if wrong.

    Dividing equal units yields a dimensionless ratio; dividing by a
    scalar preserves the numerator.  A scalar divided by a tagged
    quantity would be an inverse unit the vocabulary does not model, so
    it is dimensionally wrong.
    """
    if numerator == denominator:
        return SCALAR
    if denominator == SCALAR:
        return numerator
    return DIV_TABLE.get((numerator, denominator))


def addable(left: str, right: str) -> bool:
    """Whether ``left + right`` / comparisons between them make sense.

    Equal units are addable; so is anything with a dimensionless scalar
    (numeric literals infer as scalars, and ``latency + 1.0`` is the
    bread and butter of cycle arithmetic).
    """
    return left == right or left == SCALAR or right == SCALAR


def add_units(left: str, right: str) -> Optional[str]:
    """The unit of ``left + right``/``left - right``, or ``None``."""
    if not addable(left, right):
        return None
    if left == SCALAR:
        return right
    return left
