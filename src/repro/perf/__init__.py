"""Benchmark harness for the simulator's own performance.

Everything in :mod:`repro.perf` measures *host* wall-clock time -- how
fast the reproduction runs, never how fast the modelled hardware is.  It
is the one subpackage exempt from the REP102 wall-clock lint rule.

``python -m repro bench`` drives :func:`repro.perf.bench.run_bench`,
which times trace generation, the batched-vs-scalar sampler paths, and a
figure-suite slice through the cached experiment runner, then writes
``BENCH_sampling.json``, ``BENCH_frame.json`` and ``BENCH_runner.json``.
"""

from repro.perf.parity import PARITY_MATH_FILENAME, run_parity
from repro.perf.bench import (
    BENCH_FRAME_FILENAME,
    BENCH_RUNNER_FILENAME,
    BENCH_SAMPLING_FILENAME,
    bench_frame,
    bench_runner,
    bench_sampling,
    run_bench,
)

__all__ = [
    "BENCH_FRAME_FILENAME",
    "BENCH_RUNNER_FILENAME",
    "BENCH_SAMPLING_FILENAME",
    "PARITY_MATH_FILENAME",
    "bench_frame",
    "bench_runner",
    "bench_sampling",
    "run_bench",
    "run_parity",
]
