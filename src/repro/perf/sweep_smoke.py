"""``python -m repro.perf.sweep_smoke``: the cross-backend sweep gate.

Runs :func:`repro.perf.bench.bench_sweep` -- the same tiny sampled
sweep through every executor backend, each over its own empty cache --
writes ``BENCH_sweep.json``, and exits non-zero if any backend dropped
points or diverged from the serial reference.  ``make sweep-smoke`` and
the CI sweep job are thin wrappers around this module.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.perf.bench import BENCH_SWEEP_FILENAME, bench_sweep


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf.sweep_smoke",
        description="tiny sampled sweep through each executor backend; "
        "fails on cross-backend divergence",
    )
    parser.add_argument("--points", type=int, default=6,
                        help="sampled point budget (default: 6)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes per backend (default: 2)")
    parser.add_argument("--output-dir", default=".",
                        help="directory for BENCH_sweep.json (default: cwd)")
    args = parser.parse_args(argv)

    result = bench_sweep(points=args.points, jobs=args.jobs)
    path = Path(args.output_dir) / BENCH_SWEEP_FILENAME
    path.write_text(json.dumps(result, indent=2) + "\n")
    for entry in result["backends"]:
        print(
            f"{entry['backend']:13s} {entry['seconds']:6.2f}s  "
            f"{entry['records']} points / {entry['unique_runs']} runs  "
            f"identical: {entry['identical_to_serial']}"
        )
    print(f"wrote {path}")
    summary = result["summary"]
    if not summary["complete"]:
        print("FAIL: a backend dropped sweep points")
        return 1
    if not summary["identical_results"]:
        print("FAIL: executor backends disagree on sweep results")
        return 1
    print("all executor backends bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
