"""``python -m repro.perf.serve_smoke``: the job-server smoke gate.

Boots a real :class:`~repro.serve.app.BackgroundServer` on an ephemeral
port, drives it over plain HTTP (stdlib ``http.client``, exactly what a
client sees), and asserts the serving contract end to end:

* a submitted job runs to ``done`` and its result embeds a
  round-trippable ``repro-run-manifest/1`` manifest;
* an identical resubmission is served warm -- the ``/stats`` cache
  counters must show new memo hits, not a recompute;
* the artifact store stays inside its byte budget, and the LRU eviction
  policy is demonstrated deterministically on a directly-driven
  :class:`~repro.experiments.cache.DiskCache`.

Writes ``SERVE_stats.json`` (the final ``/stats`` snapshot plus the
per-check verdicts) and exits non-zero on any failed check.  ``make
serve-smoke`` and the CI serve job are thin wrappers around this module.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.cache import DiskCache
from repro.obs.manifest import RunManifest
from repro.serve import BackgroundServer, ServeConfig

SERVE_STATS_FILENAME = "SERVE_stats.json"

DEFAULT_WORKLOAD = "doom3-320x240"
DEFAULT_CACHE_BUDGET = 64 << 20
"""Artifact-store byte budget for the smoke server (64 MiB)."""

POLL_INTERVAL_SECONDS = 0.2
POLL_BUDGET_SECONDS = 300.0


class SmokeFailure(AssertionError):
    """One serving-contract check did not hold."""


def _request(
    host: str, port: int, method: str, path: str,
    payload: Optional[Dict[str, Any]] = None,
) -> Tuple[int, Any]:
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        conn.close()


def _check(condition: bool, label: str, checks: List[Dict[str, Any]]) -> None:
    checks.append({"check": label, "ok": bool(condition)})
    marker = "ok " if condition else "FAIL"
    print(f"  [{marker}] {label}")
    if not condition:
        raise SmokeFailure(label)


def _submit_and_wait(
    host: str, port: int, payload: Dict[str, Any],
    checks: List[Dict[str, Any]], label: str,
) -> Dict[str, Any]:
    status, accepted = _request(host, port, "POST", "/jobs", payload)
    _check(status == 202, f"{label}: submission accepted (202)", checks)
    job_id = accepted["job_id"]
    deadline = time.monotonic() + POLL_BUDGET_SECONDS
    while True:
        status, job = _request(host, port, "GET", f"/jobs/{job_id}")
        if status == 200 and job["status"] in ("done", "failed"):
            break
        if time.monotonic() > deadline:
            raise SmokeFailure(f"{label}: {job_id} never finished")
        time.sleep(POLL_INTERVAL_SECONDS)
    _check(
        job["status"] == "done",
        f"{label}: {job_id} ran to done (got {job['status']!r}, "
        f"error={job.get('error')!r})",
        checks,
    )
    return job


def _eviction_demo(
    root: Path, checks: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """LRU eviction on a directly-driven cache: oldest entries go first."""
    cache = DiskCache(root=root)
    paths = []
    for index in range(4):
        key = cache.key("serve-smoke-evict", index=index)
        cache.store(key, {"index": index, "padding": "x" * 512})
        path = cache._path(key)
        # Pinned, strictly-increasing mtimes make LRU order (and so the
        # whole demo) deterministic regardless of filesystem timestamp
        # granularity.
        os.utime(path, (1_000_000.0 + index, 1_000_000.0 + index))
        paths.append(path)
    sizes = [path.stat().st_size for path in paths]
    budget = sizes[2] + sizes[3]  # room for exactly the two newest
    evicted = cache.evict(max_bytes=budget)
    _check(evicted == 2, "eviction: two oldest entries removed", checks)
    _check(
        not paths[0].exists() and not paths[1].exists(),
        "eviction: LRU order (oldest first)",
        checks,
    )
    _check(
        paths[2].exists() and paths[3].exists(),
        "eviction: newest entries survive",
        checks,
    )
    _check(
        cache.total_bytes() <= budget,
        "eviction: cache fits the byte budget",
        checks,
    )
    return {
        "entries_stored": len(paths),
        "budget_bytes": budget,
        "evicted": evicted,
        "remaining_bytes": cache.total_bytes(),
    }


def run_smoke(
    workload: str = DEFAULT_WORKLOAD,
    cache_max_bytes: int = DEFAULT_CACHE_BUDGET,
    output_dir: str = ".",
) -> int:
    checks: List[Dict[str, Any]] = []
    stats: Optional[Dict[str, Any]] = None
    payload = {
        "tenant": "smoke",
        "points": [{"workload": workload, "design": "S_TFIM"}],
    }
    started = time.monotonic()
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as scratch:
        config = ServeConfig(
            port=0,
            workloads=[workload],
            cache_dir=Path(scratch) / "artifacts",
            cache_max_bytes=cache_max_bytes,
            max_queue_depth=4,
        )
        try:
            with BackgroundServer(config) as handle:
                host, port = handle.host, handle.port
                print(f"serve-smoke: server on http://{host}:{port}")
                status, health = _request(host, port, "GET", "/healthz")
                _check(
                    status == 200 and health.get("ok") is True,
                    "healthz answers while serving",
                    checks,
                )

                job = _submit_and_wait(host, port, payload, checks, "cold job")
                result = job["result"]
                _check(
                    result["records"] and result["missing"] == [],
                    "cold job: every point produced a record",
                    checks,
                )
                manifest_dict = result["manifest"]
                manifest = RunManifest.from_dict(manifest_dict)
                _check(
                    manifest.as_dict() == manifest_dict,
                    "cold job: manifest round-trips through "
                    "RunManifest.from_dict",
                    checks,
                )

                _status, before = _request(host, port, "GET", "/stats")
                _submit_and_wait(host, port, payload, checks, "warm job")
                _status, stats = _request(host, port, "GET", "/stats")
                warm_hits = (
                    stats["cache"]["memo_hits"]
                    - before["cache"]["memo_hits"]
                )
                _check(
                    warm_hits >= 2,
                    f"warm job: served from cache ({warm_hits} new memo "
                    "hits)",
                    checks,
                )
                _check(
                    stats["jobs"]["done"] >= 2
                    and stats["jobs"]["failed"] == 0,
                    "stats: both jobs done, none failed",
                    checks,
                )
                _check(
                    stats["cache"]["disk_bytes"] <= cache_max_bytes,
                    "stats: artifact store inside its byte budget",
                    checks,
                )

                demo = _eviction_demo(Path(scratch) / "evict-demo", checks)
        except SmokeFailure as failure:
            _write_report(output_dir, checks, stats, None, started, False)
            print(f"FAIL: {failure}")
            return 1
    _write_report(output_dir, checks, stats, demo, started, True)
    print("serve-smoke PASS")
    return 0


def _write_report(
    output_dir: str,
    checks: List[Dict[str, Any]],
    stats: Optional[Dict[str, Any]],
    eviction_demo: Optional[Dict[str, Any]],
    started: float,
    passed: bool,
) -> None:
    path = Path(output_dir) / SERVE_STATS_FILENAME
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {
                "schema": "repro-serve-smoke/1",
                "passed": passed,
                "elapsed_seconds": time.monotonic() - started,
                "checks": checks,
                "stats": stats,
                "eviction_demo": eviction_demo,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf.serve_smoke",
        description="boot the job server, run a cold and a warm job over "
        "HTTP, verify manifest round-trip, cache warmth and eviction",
    )
    parser.add_argument("--workload", default=DEFAULT_WORKLOAD,
                        help=f"workload to submit (default: {DEFAULT_WORKLOAD})")
    parser.add_argument("--cache-max-bytes", type=int,
                        default=DEFAULT_CACHE_BUDGET,
                        help="artifact-store byte budget (default: 64 MiB)")
    parser.add_argument("--output-dir", default=".",
                        help="directory for SERVE_stats.json (default: cwd)")
    args = parser.parse_args(argv)
    return run_smoke(
        workload=args.workload,
        cache_max_bytes=args.cache_max_bytes,
        output_dir=args.output_dir,
    )


if __name__ == "__main__":
    sys.exit(main())
