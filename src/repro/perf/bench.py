"""Timing benchmarks: batched sampler, rasterizer, and cached runner.

Three benchmarks, written as machine-readable JSON at the repo root:

``BENCH_sampling.json``
    Per workload: trace generation (vectorized vs scalar rasterizer) and
    the exact/isotropic sampler paths (batched kernels vs the scalar
    reference), with a bit-identity check on every color produced.
``BENCH_runner.json``
    A figure-suite slice (Fig. 10) through :class:`ExperimentRunner`
    cold (empty disk cache) and warm (second process over the same
    cache), with the measured cache hit rate.
``BENCH_tracing.json``
    The disabled-tracing cost of :mod:`repro.obs` instrumentation: a
    fixed numeric kernel timed bare vs wrapped in ``timed_stage`` with
    ``REPRO_TRACE`` off.  The wrapped path must stay within noise of
    the bare one (the zero-overhead-when-disabled contract).
``BENCH_frame.json``
    The whole-frame hot path per workload: trace generation (vectorized
    SoA rasterizer vs the scalar AoS oracle) and the texture replay
    (batched per-timestamp drain vs the scalar heap scheduler), timed
    cold (warm-up replay against empty caches) and warm (measured replay
    against warmed caches), with an end-result identity check on the
    makespan, latency histogram, per-cluster counts, and traffic.
``BENCH_sweep.json``
    A tiny sampled design-space sweep (:mod:`repro.experiments.sweep`)
    executed once per executor backend (serial, process-pool,
    work-stealing), each against its own empty disk cache, with a
    bit-identity check over every sweep point's result signature.  The
    identity check always gates: a divergent backend is a scheduler
    bug, never a performance trade-off.
``BENCH_lint.json``
    The static-analysis pass (four rule families over the whole repo)
    serial vs fanned out over :func:`repro.faults.run_fanout`, with a
    findings-identity check between the two modes -- reported per family
    and separately for the REP400 vectorize engine, whose hot-path call
    graph every pool worker must rebuild identically.  The identity check
    always gates; the speedup gates only when ``--lint-min-speedup`` is
    set above zero, because each pool worker must replay the cross-file
    ``prepare`` and single-core CI boxes therefore cannot win.

All numbers are host wall-clock seconds -- the speed of the
reproduction itself, not of the modelled hardware.
"""

from __future__ import annotations

import json
import math
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

BENCH_SAMPLING_FILENAME = "BENCH_sampling.json"
BENCH_RUNNER_FILENAME = "BENCH_runner.json"
BENCH_TRACING_FILENAME = "BENCH_tracing.json"
BENCH_LINT_FILENAME = "BENCH_lint.json"
BENCH_FRAME_FILENAME = "BENCH_frame.json"
BENCH_SWEEP_FILENAME = "BENCH_sweep.json"


def _geomean(values: Sequence[float]) -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def _speedup(scalar_seconds: float, batch_seconds: float) -> float:
    if batch_seconds <= 0:
        return float("inf")
    return scalar_seconds / batch_seconds


def bench_sampling(
    workload_names: Optional[Sequence[str]] = None,
    include_raster: bool = True,
) -> Dict[str, Any]:
    """Time the scalar vs batched sampler on real frame traces.

    For every workload the full request trace is filtered twice per
    path -- once through the scalar reference functions, once through
    the :mod:`repro.texture.batch` kernels -- and the resulting colors
    are compared bit for bit.
    """
    from repro.experiments.cache import source_version
    from repro.experiments.runner import FAST_WORKLOADS
    from repro.texture.batch import BatchSampler, RequestBatch
    from repro.texture.sampling import anisotropic_sample, trilinear_sample
    from repro.workloads import workload_by_name

    names = list(workload_names or FAST_WORKLOADS)
    workload_results: List[Dict[str, Any]] = []
    for name in names:
        workload = workload_by_name(name)
        entry: Dict[str, Any] = {"name": name}

        if include_raster:
            built = workload.build()
            renderer = workload.make_renderer()
            renderer.rasterizer.vectorized = False
            started = time.perf_counter()
            scalar_output = renderer.trace_only(built.scene, built.camera)
            scalar_raster_seconds = time.perf_counter() - started
            renderer = workload.make_renderer()
            started = time.perf_counter()
            vector_output = renderer.trace_only(built.scene, built.camera)
            vector_raster_seconds = time.perf_counter() - started
            scene = built.scene
            trace = vector_output.trace
            entry["trace"] = {
                "scalar_seconds": scalar_raster_seconds,
                "batch_seconds": vector_raster_seconds,
                "speedup_vs_scalar": _speedup(
                    scalar_raster_seconds, vector_raster_seconds
                ),
                "identical_requests": scalar_output.trace.requests
                == vector_output.trace.requests,
            }
        else:
            scene, trace = workload.trace()

        requests = trace.requests
        entry["requests"] = len(requests)
        by_texture: Dict[int, List[int]] = {}
        for index, request in enumerate(requests):
            by_texture.setdefault(request.texture_id, []).append(index)
        groups = [
            (
                scene.mipmap_chain(texture_id),
                indices,
                RequestBatch.from_requests([requests[i] for i in indices]),
            )
            for texture_id, indices in by_texture.items()
        ]

        for path, scalar_fn in (
            ("exact", lambda c, r: anisotropic_sample(c, r.footprint, r.u, r.v)),
            (
                "isotropic",
                lambda c, r: trilinear_sample(c, r.footprint.lod, r.u, r.v),
            ),
        ):
            scalar_colors = np.zeros((len(requests), 4), dtype=np.float64)
            started = time.perf_counter()
            for chain, indices, _batch in groups:
                for i in indices:
                    scalar_colors[i] = scalar_fn(chain, requests[i])
            scalar_seconds = time.perf_counter() - started

            batch_colors = np.zeros((len(requests), 4), dtype=np.float64)
            started = time.perf_counter()
            for chain, indices, batch in groups:
                sampler = BatchSampler(chain)
                if path == "exact":
                    batch_colors[indices] = sampler.sample_exact(batch)
                else:
                    batch_colors[indices] = sampler.sample_isotropic(batch)
            batch_seconds = time.perf_counter() - started

            entry[path] = {
                "scalar_seconds": scalar_seconds,
                "batch_seconds": batch_seconds,
                "speedup_vs_scalar": _speedup(scalar_seconds, batch_seconds),
                "bit_identical": bool(
                    np.array_equal(scalar_colors, batch_colors)
                ),
            }
        workload_results.append(entry)

    exact_speedups = [w["exact"]["speedup_vs_scalar"] for w in workload_results]
    return {
        "schema": "repro-bench-sampling/1",
        "source_version": source_version(),
        "workloads": workload_results,
        "summary": {
            "min_exact_speedup": min(exact_speedups),
            "geomean_exact_speedup": _geomean(exact_speedups),
            "bit_identical": all(
                w["exact"]["bit_identical"] and w["isotropic"]["bit_identical"]
                for w in workload_results
            ),
        },
    }


def bench_frame(
    workload_names: Optional[Sequence[str]] = None,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Time the whole-frame hot path: trace + replay, scalar vs vectorized.

    Per workload, the two phases the per-fragment/per-event scalar code
    used to dominate are each timed both ways (best of ``repeats``):

    * *trace*: rasterization into texture requests, through the scalar
      AoS fragment loop vs the columnar :class:`FragmentBatch` path;
    * *replay*: the baseline design's texture replay, through the scalar
      heap scheduler vs the batched per-timestamp drain -- split into
      the cold warm-up replay (compulsory misses, session precompute)
      and the warm measured replay (steady-state caches, memoised
      columns), matching ``simulate_frame``'s warm-up protocol.

    Request expansion is shared by both schedulers and excluded.  Every
    pairing is checked for end-result identity: equal request streams
    out of the rasterizer, and equal makespan / latency histogram /
    per-cluster counts / external traffic out of the replay.
    """
    from repro.core import Design
    from repro.core.designs import DesignConfig
    from repro.core.expansion import RequestExpander
    from repro.core.frontend import make_texture_path
    from repro.experiments.cache import source_version
    from repro.experiments.runner import FAST_WORKLOADS
    from repro.gpu.pipeline import GpuPipeline
    from repro.memory.traffic import TrafficMeter
    from repro.workloads import workload_by_name

    def replay_snapshot(makespan, histogram, counts, traffic):
        return {
            "makespan": makespan,
            "latency_count": histogram.count,
            "latency_total": float(histogram.total),
            "latency_max": float(histogram.max_latency),
            "latency_buckets": list(histogram.buckets),
            "per_cluster": list(counts),
            "external_bytes": float(traffic.external_total),
        }

    names = list(workload_names or FAST_WORKLOADS)
    rounds = max(1, repeats)
    workload_results: List[Dict[str, Any]] = []
    for name in names:
        workload = workload_by_name(name)
        built = workload.build()

        trace_seconds = {"scalar": float("inf"), "batched": float("inf")}
        outputs: Dict[str, Any] = {}
        for _ in range(rounds):
            for mode in ("scalar", "batched"):
                renderer = workload.make_renderer()
                renderer.rasterizer.vectorized = mode == "batched"
                started = time.perf_counter()
                outputs[mode] = renderer.trace_only(built.scene, built.camera)
                trace_seconds[mode] = min(
                    trace_seconds[mode], time.perf_counter() - started
                )
        trace = outputs["batched"].trace
        trace_identical = (
            outputs["scalar"].trace.requests == trace.requests
        )

        config = DesignConfig(design=Design.BASELINE)
        expander = RequestExpander(built.scene)
        expanded = [expander.expand(request) for request in trace.requests]

        cold_seconds = {"scalar": float("inf"), "batched": float("inf")}
        warm_seconds = {"scalar": float("inf"), "batched": float("inf")}
        snapshots: Dict[str, Any] = {}
        for _ in range(rounds):
            for mode in ("scalar", "batched"):
                batched = mode == "batched"
                traffic = TrafficMeter()
                path = make_texture_path(config, traffic)
                pipeline = GpuPipeline(config.gpu, batched_replay=batched)
                started = time.perf_counter()
                pipeline.replay_texture_stream(trace, expanded, path)
                cold_seconds[mode] = min(
                    cold_seconds[mode], time.perf_counter() - started
                )
                path.reset_for_measurement()
                traffic.reset()
                started = time.perf_counter()
                makespan, histogram, counts = pipeline.replay_texture_stream(
                    trace, expanded, path
                )
                warm_seconds[mode] = min(
                    warm_seconds[mode], time.perf_counter() - started
                )
                snapshots[mode] = replay_snapshot(
                    makespan, histogram, counts, traffic
                )

        scalar_total = (
            trace_seconds["scalar"]
            + cold_seconds["scalar"]
            + warm_seconds["scalar"]
        )
        batched_total = (
            trace_seconds["batched"]
            + cold_seconds["batched"]
            + warm_seconds["batched"]
        )
        workload_results.append({
            "name": name,
            "requests": len(trace.requests),
            "design": Design.BASELINE.value,
            "trace": {
                "scalar_seconds": trace_seconds["scalar"],
                "batch_seconds": trace_seconds["batched"],
                "speedup_vs_scalar": _speedup(
                    trace_seconds["scalar"], trace_seconds["batched"]
                ),
                "identical_requests": trace_identical,
            },
            "replay": {
                "scalar_cold_seconds": cold_seconds["scalar"],
                "scalar_warm_seconds": warm_seconds["scalar"],
                "batch_cold_seconds": cold_seconds["batched"],
                "batch_warm_seconds": warm_seconds["batched"],
                "speedup_cold": _speedup(
                    cold_seconds["scalar"], cold_seconds["batched"]
                ),
                "speedup_warm": _speedup(
                    warm_seconds["scalar"], warm_seconds["batched"]
                ),
                "identical_results": snapshots["scalar"]
                == snapshots["batched"],
                "result": snapshots["batched"],
            },
            "total": {
                "scalar_seconds": scalar_total,
                "batch_seconds": batched_total,
                "speedup_vs_scalar": _speedup(scalar_total, batched_total),
            },
        })

    total_speedups = [
        w["total"]["speedup_vs_scalar"] for w in workload_results
    ]
    return {
        "schema": "repro-bench-frame/1",
        "source_version": source_version(),
        "repeats": rounds,
        "workloads": workload_results,
        "summary": {
            "min_total_speedup": min(total_speedups),
            "geomean_total_speedup": _geomean(total_speedups),
            "identical": all(
                w["trace"]["identical_requests"]
                and w["replay"]["identical_results"]
                for w in workload_results
            ),
        },
    }


def bench_runner(
    workload_names: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Any]:
    """Time a figure-suite slice cold vs warm through the disk cache.

    Cold: a fresh :class:`ExperimentRunner` over an empty cache
    directory generates Fig. 10 (prefetching the grid in parallel when
    ``jobs > 1``).  Warm: a second runner over the same directory
    regenerates it purely from disk.
    """
    from repro.core import Design
    from repro.core.angle import DEFAULT_THRESHOLD
    from repro.experiments import fig10
    from repro.experiments.cache import source_version
    from repro.experiments.runner import FAST_WORKLOADS, ExperimentRunner, RunKey

    names = list(workload_names or FAST_WORKLOADS)
    default = DEFAULT_THRESHOLD.effective_radians
    keys = [
        RunKey(name, design, default, True)
        for name in names
        for design in Design
    ]
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        cold = ExperimentRunner(names, cache_dir=cache_dir)
        started = time.perf_counter()
        if jobs is not None and jobs > 1:
            cold.run_many(keys, jobs=jobs)
        fig10.run(cold)
        cold_seconds = time.perf_counter() - started

        warm = ExperimentRunner(names, cache_dir=cache_dir)
        started = time.perf_counter()
        warm.run_many(keys, jobs=1)
        fig10.run(warm)
        warm_seconds = time.perf_counter() - started
        warm_stats = warm.cache_stats()

        return {
            "schema": "repro-bench-runner/1",
            "source_version": source_version(),
            "figure": "fig10",
            "workloads": names,
            "jobs": jobs or 1,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup_warm_vs_cold": _speedup(cold_seconds, warm_seconds),
            "cache_hit_rate": warm_stats.disk_hit_rate,
            "cache_entries": warm_stats.disk_entries,
            "cache_bytes": warm_stats.disk_bytes,
        }


def bench_tracing(repeats: int = 7, calls: int = 400) -> Dict[str, Any]:
    """Measure what disabled tracing costs instrumented code.

    A fixed ~1 ms numeric kernel is timed bare and wrapped in
    :func:`repro.obs.timed_stage` with tracing off; with min-of-repeats
    timing the wrapped path should be indistinguishable from the bare
    one (a single boolean test per call).  For contrast the wrapped
    kernel is also timed with tracing *on*, where span bookkeeping is
    expected to show up.
    """
    from repro.experiments.cache import source_version
    from repro.obs import reset_tracer, set_tracing, timed_stage, tracing_enabled

    size = 160
    left = np.arange(size * size, dtype=np.float64).reshape(size, size) / size
    right = left.T.copy()

    def body() -> float:
        return float(np.dot(left, right).trace())

    wrapped = timed_stage("bench.tracing_body")(body)

    def time_once(fn: Any) -> float:
        started = time.perf_counter()
        for _ in range(calls):
            fn()
        return time.perf_counter() - started

    was_tracing = tracing_enabled()
    set_tracing(False, propagate_env=False)
    try:
        # Interleave the three variants within every repeat so they all
        # sample the same machine noise (frequency scaling, BLAS thread
        # wake-ups); min-of-repeats then compares like with like.
        time_once(body)
        time_once(wrapped)
        bare_seconds = float("inf")
        disabled_seconds = float("inf")
        enabled_seconds = float("inf")
        for _ in range(repeats):
            bare_seconds = min(bare_seconds, time_once(body))
            disabled_seconds = min(disabled_seconds, time_once(wrapped))
            set_tracing(True, propagate_env=False)
            enabled_seconds = min(enabled_seconds, time_once(wrapped))
            reset_tracer()  # drop the benchmark's own spans
            set_tracing(False, propagate_env=False)
    finally:
        set_tracing(was_tracing, propagate_env=False)

    disabled_overhead = (
        disabled_seconds / bare_seconds - 1.0 if bare_seconds > 0 else 0.0
    )
    return {
        "schema": "repro-bench-tracing/1",
        "source_version": source_version(),
        "calls": calls,
        "repeats": repeats,
        "bare_seconds": bare_seconds,
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "disabled_overhead_ratio": disabled_overhead,
        "enabled_overhead_ratio": (
            enabled_seconds / bare_seconds - 1.0 if bare_seconds > 0 else 0.0
        ),
    }


def bench_lint(
    targets: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    repeats: int = 2,
) -> Dict[str, Any]:
    """Time the full lint (serial vs ``run_fanout`` pool) over the repo.

    The parallel path chunks the fileset over the fault-tolerant
    scheduler; every worker replays the cross-file ``prepare`` before
    checking its chunk, so the serial/parallel findings lists must be
    byte-identical -- that identity is the primary result here, with the
    wall-clock speedup reported alongside it.  ``jobs`` defaults to the
    core count capped at 4 (forced to at least 2 so the pool path is
    exercised even on one core).
    """
    import os

    from repro.analysis.linter import lint_paths
    from repro.experiments.cache import source_version

    if targets is None:
        targets = [name for name in ("src", "benchmarks", "tests", "examples")
                   if Path(name).exists()]
    paths = [Path(name) for name in targets]
    if jobs is None:
        jobs = max(2, min(4, os.cpu_count() or 1))

    serial_seconds = float("inf")
    parallel_seconds = float("inf")
    serial_findings: List[Any] = []
    parallel_findings: List[Any] = []
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        serial_findings = lint_paths(paths)
        serial_seconds = min(serial_seconds, time.perf_counter() - started)
        started = time.perf_counter()
        parallel_findings = lint_paths(paths, jobs=jobs)
        parallel_seconds = min(
            parallel_seconds, time.perf_counter() - started
        )

    # Per-family counts (REP1 counters, REP2 units, REP3 determinism,
    # REP4 vectorization) plus a dedicated identity check for the REP4
    # engine: its prepare() builds the hot-path call graph, which every
    # pool worker must reconstruct identically from its chunk's shared
    # source snapshot.
    by_family: Dict[str, int] = {}
    for finding in serial_findings:
        family = finding.rule_id[:4]
        by_family[family] = by_family.get(family, 0) + 1
    serial_rep4 = [f for f in serial_findings if f.rule_id.startswith("REP4")]
    parallel_rep4 = [
        f for f in parallel_findings if f.rule_id.startswith("REP4")
    ]

    return {
        "schema": "repro-bench-lint/1",
        "source_version": source_version(),
        "targets": [str(path) for path in paths],
        "jobs": jobs,
        "repeats": repeats,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup_parallel_vs_serial": _speedup(
            serial_seconds, parallel_seconds
        ),
        "findings": len(serial_findings),
        "findings_by_family": dict(sorted(by_family.items())),
        "identical_findings": serial_findings == parallel_findings,
        "identical_rep4_findings": serial_rep4 == parallel_rep4,
    }


def bench_sweep(
    workload_names: Optional[Sequence[str]] = None,
    points: int = 8,
    jobs: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Run one sampled sweep per executor backend; demand identical results.

    The same deterministic ``points``-point sample is executed through
    every backend in :data:`repro.faults.BACKEND_NAMES`, each over its
    own empty cache directory (agreement must come from recomputation,
    not from reading a sibling's cache).  The signature map -- sweep
    token to (frame cycles, texture cycles, external texture bytes,
    request count) -- must match the serial backend's exactly.
    """
    import os

    from repro.experiments.cache import source_version
    from repro.experiments.runner import FAST_WORKLOADS
    from repro.experiments.sweep import SweepDefinition, run_sweep
    from repro.faults import BACKEND_NAMES, FAST_RETRIES

    names = list(workload_names or FAST_WORKLOADS[:1])
    if jobs is None:
        jobs = max(2, min(4, os.cpu_count() or 1))
    definition = SweepDefinition(
        name="bench-smoke",
        workloads=tuple(names),
        thresholds=(0.005, 0.0314159),
        link_scales=(0.5, 1.0),
        seed=seed,
    )
    sample = definition.sample(points)
    backends: List[Dict[str, Any]] = []
    signatures: Dict[str, Dict[str, Any]] = {}
    for backend in BACKEND_NAMES:
        with tempfile.TemporaryDirectory(
            prefix=f"repro-sweep-{backend}-"
        ) as cache_dir:
            started = time.perf_counter()
            result = run_sweep(
                definition,
                points=sample,
                cache_dir=cache_dir,
                jobs=jobs,
                backend=backend,
                retry_policy=FAST_RETRIES,
            )
            elapsed = time.perf_counter() - started
        signatures[backend] = {
            token: list(signature)
            for token, signature in sorted(result.signatures().items())
        }
        backends.append({
            "backend": backend,
            "seconds": elapsed,
            "records": len(result.records),
            "missing": len(result.missing),
            "unique_runs": result.unique_runs,
            "identical_to_serial": signatures[backend]
            == signatures[BACKEND_NAMES[0]],
        })
    return {
        "schema": "repro-bench-sweep/1",
        "source_version": source_version(),
        "workloads": names,
        "points": len(sample),
        "jobs": jobs,
        "backends": backends,
        "summary": {
            "identical_results": all(
                entry["identical_to_serial"] for entry in backends
            ),
            "complete": all(entry["missing"] == 0 for entry in backends),
        },
    }


def run_bench(
    fast: bool = False,
    jobs: Optional[int] = None,
    min_speedup: float = 1.0,
    lint_min_speedup: float = 0.0,
    frame_min_speedup: float = 1.0,
    output_dir: str = ".",
) -> int:
    """Run the benchmarks, write the JSON files, gate on the speedups.

    ``fast`` restricts to a single workload (the CI smoke
    configuration); the default covers the whole ``FAST_WORKLOADS``
    set.  Returns a non-zero exit code when the batched exact sampler's
    slowest per-workload speedup falls below ``min_speedup``, the
    whole-frame trace+replay speedup falls below ``frame_min_speedup``,
    or any output fails the bit-identity check.
    """
    from repro.experiments.runner import FAST_WORKLOADS

    names = FAST_WORKLOADS[:1] if fast else FAST_WORKLOADS
    out = Path(output_dir)

    sampling = bench_sampling(names)
    sampling_path = out / BENCH_SAMPLING_FILENAME
    sampling_path.write_text(json.dumps(sampling, indent=2) + "\n")
    for workload in sampling["workloads"]:
        print(
            f"{workload['name']:24s} exact {workload['exact']['speedup_vs_scalar']:5.1f}x  "
            f"isotropic {workload['isotropic']['speedup_vs_scalar']:5.1f}x  "
            f"raster {workload.get('trace', {}).get('speedup_vs_scalar', 0.0):5.1f}x  "
            f"({workload['requests']} requests)"
        )
    summary = sampling["summary"]
    print(
        f"sampler speedup: min {summary['min_exact_speedup']:.1f}x, "
        f"geomean {summary['geomean_exact_speedup']:.1f}x, "
        f"bit-identical: {summary['bit_identical']}"
    )
    print(f"wrote {sampling_path}")

    frame = bench_frame(names)
    frame_path = out / BENCH_FRAME_FILENAME
    frame_path.write_text(json.dumps(frame, indent=2) + "\n")
    for workload in frame["workloads"]:
        replay = workload["replay"]
        print(
            f"{workload['name']:24s} frame "
            f"{workload['total']['speedup_vs_scalar']:5.1f}x  "
            f"(trace {workload['trace']['speedup_vs_scalar']:.1f}x, "
            f"replay cold {replay['speedup_cold']:.1f}x / "
            f"warm {replay['speedup_warm']:.1f}x)"
        )
    frame_summary = frame["summary"]
    print(
        f"frame speedup: min {frame_summary['min_total_speedup']:.1f}x, "
        f"geomean {frame_summary['geomean_total_speedup']:.1f}x, "
        f"identical results: {frame_summary['identical']}"
    )
    print(f"wrote {frame_path}")

    runner = bench_runner(names, jobs=jobs)
    runner_path = out / BENCH_RUNNER_FILENAME
    runner_path.write_text(json.dumps(runner, indent=2) + "\n")
    print(
        f"runner: cold {runner['cold_seconds']:.2f}s, "
        f"warm {runner['warm_seconds']:.2f}s "
        f"({runner['speedup_warm_vs_cold']:.0f}x, "
        f"hit rate {runner['cache_hit_rate']:.2f})"
    )
    print(f"wrote {runner_path}")

    tracing = bench_tracing()
    tracing_path = out / BENCH_TRACING_FILENAME
    tracing_path.write_text(json.dumps(tracing, indent=2) + "\n")
    print(
        f"tracing: disabled overhead "
        f"{tracing['disabled_overhead_ratio'] * 100:+.2f}%, "
        f"enabled {tracing['enabled_overhead_ratio'] * 100:+.2f}% "
        f"(bare {tracing['bare_seconds'] * 1000:.1f} ms "
        f"per {tracing['calls']} calls)"
    )
    print(f"wrote {tracing_path}")

    from repro.perf.parity import PARITY_MATH_FILENAME, run_parity

    parity = run_parity()
    parity_path = out / PARITY_MATH_FILENAME
    parity_path.write_text(json.dumps(parity, indent=2) + "\n")
    for fn in parity["functions"]:
        print(
            f"parity {fn['function']:6s} libm divergence "
            f"{fn['libm_divergence_rate'] * 100:6.3f}% "
            f"(max {fn['libm_max_ulp']} ulp), batch-invariant: "
            f"{fn['batch_invariant']}"
        )
    print(f"wrote {parity_path}")

    sweep = bench_sweep(names if not fast else names[:1], jobs=jobs)
    sweep_path = out / BENCH_SWEEP_FILENAME
    sweep_path.write_text(json.dumps(sweep, indent=2) + "\n")
    for entry in sweep["backends"]:
        print(
            f"sweep {entry['backend']:13s} {entry['seconds']:6.2f}s  "
            f"{entry['records']} points / {entry['unique_runs']} runs  "
            f"identical: {entry['identical_to_serial']}"
        )
    print(f"wrote {sweep_path}")

    lint = bench_lint(jobs=jobs)
    lint_path = out / BENCH_LINT_FILENAME
    lint_path.write_text(json.dumps(lint, indent=2) + "\n")
    families = ", ".join(
        f"{family} {count}"
        for family, count in lint["findings_by_family"].items()
    ) or "clean"
    print(
        f"lint: serial {lint['serial_seconds']:.2f}s, "
        f"parallel(jobs={lint['jobs']}) {lint['parallel_seconds']:.2f}s "
        f"({lint['speedup_parallel_vs_serial']:.2f}x), "
        f"identical findings: {lint['identical_findings']} "
        f"(rep4: {lint['identical_rep4_findings']}; {families})"
    )
    print(f"wrote {lint_path}")

    if not summary["bit_identical"]:
        print("FAIL: batched sampler output is not bit-identical to scalar")
        return 1
    if summary["min_exact_speedup"] < min_speedup:
        print(
            f"FAIL: batched sampler speedup {summary['min_exact_speedup']:.2f}x "
            f"below required {min_speedup:.2f}x"
        )
        return 1
    if not frame_summary["identical"]:
        print(
            "FAIL: vectorized frame path is not bit-identical to the "
            "scalar oracle (trace requests or replay results differ)"
        )
        return 1
    if frame_summary["min_total_speedup"] < frame_min_speedup:
        print(
            f"FAIL: whole-frame speedup "
            f"{frame_summary['min_total_speedup']:.2f}x below required "
            f"{frame_min_speedup:.2f}x"
        )
        return 1
    if not parity["summary"]["batch_invariant"]:
        print(
            "FAIL: numpy ufunc results depend on batch shape -- the "
            "canonical-kernel bit-identity strategy is unsound on this "
            "toolchain (see PARITY_math.json)"
        )
        return 1
    if not sweep["summary"]["complete"]:
        print("FAIL: a sweep backend dropped points (see BENCH_sweep.json)")
        return 1
    if not sweep["summary"]["identical_results"]:
        print(
            "FAIL: executor backends disagree on sweep results -- the "
            "scheduler leaked nondeterminism (see BENCH_sweep.json)"
        )
        return 1
    if not lint["identical_findings"]:
        print("FAIL: parallel lint findings differ from the serial run")
        return 1
    if not lint["identical_rep4_findings"]:
        print(
            "FAIL: REP400-series findings differ between serial and "
            "parallel lint (hot-path call graph diverged across workers)"
        )
        return 1
    if lint["speedup_parallel_vs_serial"] < lint_min_speedup:
        print(
            f"FAIL: parallel lint speedup "
            f"{lint['speedup_parallel_vs_serial']:.2f}x below required "
            f"{lint_min_speedup:.2f}x"
        )
        return 1
    return 0
