"""repro: reproduction of "Processing-in-Memory Enabled Graphics
Processors for 3D Rendering" (Xie et al., HPCA 2017).

Public API tour
---------------

Workloads and rendering::

    from repro.workloads import workload_by_name
    workload = workload_by_name("doom3-640x480")
    scene, trace = workload.trace()

Design simulation::

    from repro.core import Design, DesignConfig, simulate_frame
    baseline = simulate_frame(scene, trace, DesignConfig(design=Design.BASELINE))
    atfim = simulate_frame(scene, trace, DesignConfig(design=Design.A_TFIM))
    print(atfim.frame.texture_speedup_over(baseline.frame))

Quality study::

    from repro.render import Renderer, SamplingMode
    from repro.quality import psnr

Experiments (one per paper table/figure) live in
:mod:`repro.experiments`; each has a ``run()`` returning the figure's
data and is also exposed through ``python -m repro``.
"""

from repro.core import Design, DesignConfig, simulate_frame
from repro.workloads import WORKLOADS, workload_by_name, workload_names

__version__ = "1.0.0"

__all__ = [
    "Design",
    "DesignConfig",
    "simulate_frame",
    "WORKLOADS",
    "workload_by_name",
    "workload_names",
    "__version__",
]
