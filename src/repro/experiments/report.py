"""Run every experiment and write EXPERIMENTS.md.

``python -m repro report`` regenerates the full paper-vs-measured record.
"""

from __future__ import annotations

import io
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.experiments import (
    ablations,
    fig02,
    fig04,
    fig05,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    overhead_analysis,
    tables,
)
from repro.core import Design
from repro.core.angle import DEFAULT_THRESHOLD, THRESHOLD_SWEEP
from repro.experiments.common import FigureData
from repro.experiments.runner import FAST_WORKLOADS, ExperimentRunner, RunKey
from repro.experiments.validate import summarize, validate

HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure in "Processing-in-Memory Enabled
Graphics Processors for 3D Rendering" (HPCA 2017).  Regenerate with
`python -m repro report` (add `--fast` for the 3-workload subset,
`--jobs N` to simulate grid points in parallel).  Results are
content-addressed: set `REPRO_CACHE_DIR` (or pass `--cache-dir`) to
persist traces and design runs on disk, making reruns incremental --
entries self-invalidate when the simulator source changes.  Timing of the
batched sampler and this cache is reported by `python -m repro bench`.

Absolute magnitudes come from a cycle-approximate model over procedurally
generated miniature frames (see DESIGN.md sections 2 and 5), so the
claims to check are *shapes*: who wins, by roughly what factor, and where
the crossovers fall.  Paper-quoted numbers are repeated next to each
measurement.
"""


def grid_keys(runner: ExperimentRunner) -> List[RunKey]:
    """Every grid point the figure suite touches, for parallel prefetch.

    Mirrors the slices taken by fig02-fig14 and the ablations: all four
    designs at the default threshold, the fig04 aniso-off baseline, the
    A-TFIM threshold sweep, MTU sharing ratios, and consolidation off.
    """
    default = DEFAULT_THRESHOLD.effective_radians
    keys: List[RunKey] = []
    for workload in runner.workloads:
        name = workload.name
        for design in Design:
            keys.append(RunKey(name, design, default, True))
        keys.append(RunKey(name, Design.BASELINE, default, False))
        for threshold in THRESHOLD_SWEEP:
            keys.append(
                RunKey(name, Design.A_TFIM, threshold.effective_radians, True)
            )
        for ratio in (2, 4):
            keys.append(
                RunKey(name, Design.S_TFIM, default, True, mtu_share=ratio)
            )
        keys.append(
            RunKey(
                name, Design.A_TFIM, default, True, consolidation_enabled=False
            )
        )
    # The sweep includes the default threshold, duplicating the design
    # loop's A-TFIM point; dedup preserving first-seen order.
    return list(dict.fromkeys(keys))


def _cache_section(runner: ExperimentRunner) -> str:
    """Runner cache-effectiveness summary appended to the report."""
    stats = runner.cache_stats()
    out = io.StringIO()
    out.write("\n## Runner cache statistics\n\n")
    out.write("```\n")
    out.write(f"memoisation hits    {stats.memo_hits}\n")
    out.write(f"memoisation misses  {stats.memo_misses}\n")
    out.write(f"disk hits           {stats.disk_hits}\n")
    out.write(f"disk misses         {stats.disk_misses}\n")
    out.write(f"disk stores         {stats.disk_stores}\n")
    out.write(f"disk entries        {stats.disk_entries}\n")
    out.write(f"disk bytes          {stats.disk_bytes}\n")
    out.write(f"disk hit rate       {stats.disk_hit_rate:.2f}\n")
    out.write("```\n")
    if runner.disk_cache is None:
        out.write(
            "\n*No persistent cache configured (set `REPRO_CACHE_DIR` or"
            " pass `--cache-dir` to make reruns incremental).*\n"
        )
    return out.getvalue()


def _robustness_section(runner: ExperimentRunner) -> str:
    """Fault-tolerance outcome counters of the last parallel fan-out."""
    report = runner.fanout_report()
    out = io.StringIO()
    out.write("\n## Robustness (fault-tolerant fan-out)\n\n")
    if report.tasks:
        counts = report.outcome_counts()
        out.write("| outcome | tasks | meaning |\n|---|---:|---|\n")
        out.write(f"| ok | {counts['ok']} | "
                  "succeeded on the first pool attempt |\n")
        out.write(f"| retried | {counts['retried']} | "
                  "succeeded after retry (failure, crash, or timeout) |\n")
        out.write(f"| degraded | {counts['degraded']} | "
                  "retry budget exhausted; serial in-process fallback |\n")
        out.write(f"| failed | {counts['failed']} | "
                  "failed everywhere; absent from the results |\n")
        out.write(
            f"\n{report.total_retries} total retries,"
            f" {report.pool_rebuilds} pool rebuilds"
            " (a rebuild recovers a crashed or hung worker pool).\n"
        )
    else:
        out.write(
            "*No parallel fan-out in this run (serial execution or fully"
            " memoised grid); outcome counters are empty.*\n"
        )
    out.write(
        "\nBatch scheduling goes through `repro.faults.run_fanout`:"
        " failed attempts retry with exponential backoff, dead workers"
        " trigger a pool rebuild, and exhausted keys degrade to serial"
        " execution, so a sweep always returns whatever completed."
        "  Chaos-test it with `python -m repro chaos` or inject faults"
        " into any command via `--faults` / `REPRO_FAULTS`"
        " (`seed=`, `crash=`, `crash_on=`, `fail=`, `store=`,"
        " `corrupt=`, `slow=`, `slow_seconds=`); plans are deterministic"
        " per seed, and results stay bit-identical under injection.\n"
    )
    return out.getvalue()


def _aggregate_spans(
    forest: Sequence[Dict[str, Any]], totals: Dict[str, List[float]]
) -> None:
    """Fold a span forest (including grafted worker forests) into
    per-name ``[count, total_seconds]`` aggregates."""
    for span in forest:
        entry = totals.setdefault(span["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += span.get("duration") or 0.0
        _aggregate_spans(span.get("children", ()), totals)
        for worker_forest in span.get("attributes", {}).get("worker_spans") or ():
            _aggregate_spans(worker_forest, totals)


def _timing_section(spans: Sequence[Dict[str, Any]]) -> str:
    """Per-phase host timing table sourced from the recorded span tree.

    Worker spans run concurrently across processes, so per-phase totals
    can exceed the elapsed wall time; they measure aggregate host work,
    not the critical path.
    """
    totals: Dict[str, List[float]] = {}
    _aggregate_spans(spans, totals)
    if not totals:
        return ""
    out = io.StringIO()
    out.write("\n## Host-phase timing (from the run manifest)\n\n")
    out.write("| phase | count | total (s) | mean (s) |\n")
    out.write("|---|---:|---:|---:|\n")
    for name, (count, total) in sorted(
        totals.items(), key=lambda item: -item[1][1]
    ):
        count = int(count)
        out.write(
            f"| {name} | {count} | {total:.3f} | {total / count:.3f} |\n"
        )
    out.write(
        "\nAggregate host-side seconds per traced phase (worker phases sum"
        " across processes, so totals can exceed the elapsed wall time)."
        "  Regenerate with `python -m repro report --manifest`.\n"
    )
    return out.getvalue()


def _figure_section(data: FigureData, precision: int = 3) -> str:
    out = io.StringIO()
    out.write(f"\n## {data.figure}: {data.title}\n\n")
    if data.paper_reference:
        out.write(f"**Paper:** {data.paper_reference}\n\n")
    out.write("```\n")
    out.write(data.format_table(precision=precision))
    out.write("\n```\n")
    for note in data.notes:
        out.write(f"\n*Measured:* {note}\n")
    checks = validate(data)
    if checks:
        out.write(f"\n*Claims:* {summarize(checks)}\n")
        for check in checks:
            out.write(f"* {check}\n")
    return out.getvalue()


def generate_with_runner(
    workload_names: Optional[Sequence[str]] = None,
    include_quality: bool = True,
    include_ablations: bool = True,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Tuple[str, ExperimentRunner]:
    """Build the full EXPERIMENTS.md text; also return the runner.

    With ``jobs > 1`` the whole design-point grid is prefetched through
    :meth:`ExperimentRunner.run_many` before any figure renders, so the
    expensive simulations run concurrently and the figures themselves
    only hit warm caches.  The returned runner carries the cache
    counters and completed runs the manifest records.
    """
    runner = ExperimentRunner(workload_names, cache_dir=cache_dir, jobs=jobs)
    with obs.span("report.generate", workloads=len(runner.workloads)):
        if jobs is not None and jobs > 1:
            runner.run_many(grid_keys(runner), jobs=jobs)
        sections: List[str] = [HEADER]

        sections.append("\n## Table I: simulator configuration\n\n```\n"
                        + tables.format_table1() + "\n```\n")
        sections.append("\n## Table II: gaming benchmarks\n\n```\n"
                        + tables.format_table2() + "\n```\n")

        with obs.span("report.figures"):
            sections.append(_figure_section(fig02.run(runner)))
            sections.append(_figure_section(fig04.run(runner)))
            sections.append(_figure_section(fig05.run(runner)))
            sections.append(_figure_section(fig10.run(runner)))
            sections.append(_figure_section(fig11.run(runner)))
            sections.append(_figure_section(fig12.run(runner)))
            sections.append(_figure_section(fig13.run(runner)))
            speedups = fig14.run(runner)
            sections.append(_figure_section(speedups))
        if include_quality:
            with obs.span("report.quality"):
                qualities = fig15.run(runner)
                sections.append(_figure_section(qualities, precision=1))
                sections.append(
                    _figure_section(
                        fig16.run(runner, speedups=speedups,
                                  qualities=qualities),
                        precision=2,
                    )
                )
        sections.append(_figure_section(overhead_analysis.run(), precision=4))

        if include_ablations:
            with obs.span("report.ablations"):
                names = [w.name for w in runner.workloads]
                sections.append(_figure_section(ablations.mtu_sharing(runner)))
                sections.append(
                    _figure_section(ablations.consolidation(runner))
                )
                sections.append(
                    _figure_section(ablations.anisotropy_cap(names[0]))
                )
                sections.append(
                    _figure_section(ablations.internal_bandwidth(names[0]))
                )

        sections.append(_cache_section(runner))
        sections.append(_robustness_section(runner))

    if obs.tracing_enabled():
        sections.append(_timing_section(obs.get_tracer().as_dicts()))

    return "".join(sections), runner


def generate(
    workload_names: Optional[Sequence[str]] = None,
    include_quality: bool = True,
    include_ablations: bool = True,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> str:
    """Build the full EXPERIMENTS.md text."""
    text, _runner = generate_with_runner(
        workload_names, include_quality, include_ablations,
        jobs=jobs, cache_dir=cache_dir,
    )
    return text


def manifest_path_for(output: Union[str, Path]) -> Path:
    """Default manifest location for a report/figure output path."""
    return Path(output).with_suffix(".manifest.json")


def _carried_sections(output: Path) -> str:
    """Sections other tools maintain inside the report file.

    ``python -m repro sweep --update-experiments`` appends the A-TFIM
    crossover surface; a full regeneration must carry it over instead
    of clobbering it.  Returns the section text (trailing-newline
    normalised) or ``""`` when the file or section does not exist.
    """
    if not output.exists():
        return ""
    from repro.experiments.sweep import SURFACE_HEADING

    text = output.read_text()
    start = text.find(SURFACE_HEADING)
    if start < 0:
        return ""
    end = text.find("\n## ", start + len(SURFACE_HEADING))
    chunk = text[start:] if end < 0 else text[start:end]
    return chunk.rstrip("\n") + "\n"


def write_report(
    path: str = "EXPERIMENTS.md",
    workload_names: Optional[Sequence[str]] = None,
    include_quality: bool = True,
    include_ablations: bool = True,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    manifest: Optional[str] = None,
) -> Path:
    """Generate and write the report; return the output path.

    ``manifest`` requests a :class:`~repro.obs.manifest.RunManifest`
    alongside the report: a path, or ``""`` to derive one from ``path``
    (``EXPERIMENTS.md`` -> ``EXPERIMENTS.manifest.json``).  Requesting a
    manifest turns tracing on for the duration of the run so the span
    tree and the per-phase timing table are populated.
    """
    # Timing the report generator itself (not simulated time) is the one
    # legitimate wall-clock read in the package; the elapsed note below
    # is informational and excluded from every measured quantity.
    started = time.time()  # repro: noqa(REP102) -- wall-clock timing of report generation, not sim time
    was_tracing = obs.tracing_enabled()
    if manifest is not None and not was_tracing:
        obs.set_tracing(True)
    try:
        text, runner = generate_with_runner(
            workload_names, include_quality, include_ablations,
            jobs=jobs, cache_dir=cache_dir,
        )
        elapsed = time.time() - started  # repro: noqa(REP102) -- wall-clock timing of report generation, not sim time
        text += f"\n---\nGenerated in {elapsed:.0f} s.\n"
        output = Path(path)
        carried = _carried_sections(output)
        if carried:
            text += "\n" + carried
        output.write_text(text)
        if manifest is not None:
            from repro.obs.manifest import build_manifest

            record = build_manifest(
                command="report",
                config={
                    "path": str(path),
                    "workloads": [w.name for w in runner.workloads],
                    "include_quality": include_quality,
                    "include_ablations": include_ablations,
                    "jobs": jobs,
                    "cache_dir": str(cache_dir) if cache_dir else None,
                },
                runner=runner,
            )
            record.write(manifest if manifest else manifest_path_for(output))
    finally:
        if manifest is not None and not was_tracing:
            obs.set_tracing(False)
    return output


if __name__ == "__main__":
    print(write_report(workload_names=FAST_WORKLOADS))
