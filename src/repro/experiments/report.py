"""Run every experiment and write EXPERIMENTS.md.

``python -m repro report`` regenerates the full paper-vs-measured record.
"""

from __future__ import annotations

import io
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.experiments import (
    ablations,
    fig02,
    fig04,
    fig05,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    overhead_analysis,
    tables,
)
from repro.experiments.common import FigureData
from repro.experiments.runner import FAST_WORKLOADS, ExperimentRunner
from repro.experiments.validate import summarize, validate

HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure in "Processing-in-Memory Enabled
Graphics Processors for 3D Rendering" (HPCA 2017).  Regenerate with
`python -m repro report` (add `--fast` for the 3-workload subset).

Absolute magnitudes come from a cycle-approximate model over procedurally
generated miniature frames (see DESIGN.md sections 2 and 5), so the
claims to check are *shapes*: who wins, by roughly what factor, and where
the crossovers fall.  Paper-quoted numbers are repeated next to each
measurement.
"""


def _figure_section(data: FigureData, precision: int = 3) -> str:
    out = io.StringIO()
    out.write(f"\n## {data.figure}: {data.title}\n\n")
    if data.paper_reference:
        out.write(f"**Paper:** {data.paper_reference}\n\n")
    out.write("```\n")
    out.write(data.format_table(precision=precision))
    out.write("\n```\n")
    for note in data.notes:
        out.write(f"\n*Measured:* {note}\n")
    checks = validate(data)
    if checks:
        out.write(f"\n*Claims:* {summarize(checks)}\n")
        for check in checks:
            out.write(f"* {check}\n")
    return out.getvalue()


def generate(
    workload_names: Optional[Sequence[str]] = None,
    include_quality: bool = True,
    include_ablations: bool = True,
) -> str:
    """Build the full EXPERIMENTS.md text."""
    runner = ExperimentRunner(workload_names)
    sections: List[str] = [HEADER]

    sections.append("\n## Table I: simulator configuration\n\n```\n"
                    + tables.format_table1() + "\n```\n")
    sections.append("\n## Table II: gaming benchmarks\n\n```\n"
                    + tables.format_table2() + "\n```\n")

    sections.append(_figure_section(fig02.run(runner)))
    sections.append(_figure_section(fig04.run(runner)))
    sections.append(_figure_section(fig05.run(runner)))
    sections.append(_figure_section(fig10.run(runner)))
    sections.append(_figure_section(fig11.run(runner)))
    sections.append(_figure_section(fig12.run(runner)))
    sections.append(_figure_section(fig13.run(runner)))
    speedups = fig14.run(runner)
    sections.append(_figure_section(speedups))
    if include_quality:
        qualities = fig15.run(runner)
        sections.append(_figure_section(qualities, precision=1))
        sections.append(
            _figure_section(
                fig16.run(runner, speedups=speedups, qualities=qualities),
                precision=2,
            )
        )
    sections.append(_figure_section(overhead_analysis.run(), precision=4))

    if include_ablations:
        names = [w.name for w in runner.workloads]
        sections.append(_figure_section(ablations.mtu_sharing(runner)))
        sections.append(_figure_section(ablations.consolidation(runner)))
        sections.append(_figure_section(ablations.anisotropy_cap(names[0])))
        sections.append(_figure_section(ablations.internal_bandwidth(names[0])))

    return "".join(sections)


def write_report(
    path: str = "EXPERIMENTS.md",
    workload_names: Optional[Sequence[str]] = None,
    include_quality: bool = True,
    include_ablations: bool = True,
) -> Path:
    """Generate and write the report; return the output path."""
    # Timing the report generator itself (not simulated time) is the one
    # legitimate wall-clock read in the package; the elapsed note below
    # is informational and excluded from every measured quantity.
    started = time.time()  # repro: noqa(REP102) -- wall-clock timing of report generation, not sim time
    text = generate(workload_names, include_quality, include_ablations)
    elapsed = time.time() - started  # repro: noqa(REP102) -- wall-clock timing of report generation, not sim time
    text += f"\n---\nGenerated in {elapsed:.0f} s.\n"
    output = Path(path)
    output.write_text(text)
    return output


if __name__ == "__main__":
    print(write_report(workload_names=FAST_WORKLOADS))
