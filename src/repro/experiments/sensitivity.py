"""Sensitivity of the paper's conclusions to the model's fitted constants.

The pipeline model has exactly two fitted constants (DESIGN.md section
5): the fragment-stage ``overlap_factor`` and the per-fragment shader
work.  A reproduction's conclusions are only credible if the *orderings*
-- A-TFIM > B-PIM > baseline > S-TFIM on rendering; S-TFIM's traffic
explosion; the threshold tradeoff -- survive any reasonable setting of
those constants.  This module sweeps them and reports the design
orderings at every point.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.core import Design, simulate_frame
from repro.core.angle import DEFAULT_THRESHOLD
from repro.experiments.common import FigureData
from repro.workloads import workload_by_name


def _speedups_with_gpu(workload, scene, trace, gpu) -> Dict[Design, float]:
    results = {}
    baseline_config = dataclasses.replace(
        workload.design_config(Design.BASELINE), gpu=gpu
    )
    baseline = simulate_frame(scene, trace, baseline_config)
    for design in Design:
        config = dataclasses.replace(
            workload.design_config(
                design, angle_threshold=DEFAULT_THRESHOLD.effective_radians
            ),
            gpu=gpu,
        )
        run = simulate_frame(scene, trace, config)
        results[design] = run.frame.speedup_over(baseline.frame)
    return results


def overlap_factor(
    workload_name: str = "doom3-640x480",
    factors: Sequence[float] = (0.25, 0.55, 0.85),
) -> FigureData:
    """Design orderings across fragment-stage overlap assumptions."""
    workload = workload_by_name(workload_name)
    scene, trace = workload.trace()
    data = FigureData(
        figure="sensitivity-overlap",
        title=f"Render speedups vs overlap factor ({workload_name})",
        columns=["b_pim", "s_tfim", "a_tfim"],
        paper_reference=(
            "Robustness check: the design orderings must not depend on "
            "the fitted overlap constant."
        ),
    )
    for factor in factors:
        gpu = dataclasses.replace(
            workload.gpu_config(), overlap_factor=factor
        )
        speedups = _speedups_with_gpu(workload, scene, trace, gpu)
        data.add_row(
            f"overlap_{factor}",
            b_pim=speedups[Design.B_PIM],
            s_tfim=speedups[Design.S_TFIM],
            a_tfim=speedups[Design.A_TFIM],
        )
    return data


def shader_work(
    workload_name: str = "doom3-640x480",
    cycles: Sequence[float] = (64.0, 128.0, 256.0),
) -> FigureData:
    """Design orderings across per-fragment shader-work assumptions."""
    workload = workload_by_name(workload_name)
    scene, trace = workload.trace()
    data = FigureData(
        figure="sensitivity-shader",
        title=f"Render speedups vs shader cycles/fragment ({workload_name})",
        columns=["b_pim", "s_tfim", "a_tfim"],
        paper_reference=(
            "Robustness check: heavier shaders shrink every design's "
            "speedup (Amdahl) but must not reorder the designs."
        ),
    )
    for value in cycles:
        gpu = dataclasses.replace(
            workload.gpu_config(), shader_cycles_per_fragment=value
        )
        speedups = _speedups_with_gpu(workload, scene, trace, gpu)
        data.add_row(
            f"shader_{value:.0f}",
            b_pim=speedups[Design.B_PIM],
            s_tfim=speedups[Design.S_TFIM],
            a_tfim=speedups[Design.A_TFIM],
        )
    return data


def latency_hiding(
    workload_name: str = "doom3-640x480",
    depths: Sequence[int] = (16, 64, 256),
) -> FigureData:
    """Design orderings across latency-hiding depth assumptions."""
    workload = workload_by_name(workload_name)
    scene, trace = workload.trace()
    data = FigureData(
        figure="sensitivity-inflight",
        title=f"Render speedups vs in-flight request depth ({workload_name})",
        columns=["b_pim", "s_tfim", "a_tfim"],
        paper_reference=(
            "Robustness check: more or less latency tolerance shifts "
            "magnitudes, not the design ordering."
        ),
    )
    for depth in depths:
        gpu = dataclasses.replace(
            workload.gpu_config(), max_inflight_texture_requests=depth
        )
        speedups = _speedups_with_gpu(workload, scene, trace, gpu)
        data.add_row(
            f"depth_{depth}",
            b_pim=speedups[Design.B_PIM],
            s_tfim=speedups[Design.S_TFIM],
            a_tfim=speedups[Design.A_TFIM],
        )
    return data


def orderings_hold(data: FigureData) -> bool:
    """True when A-TFIM leads and S-TFIM trails in every row."""
    for row in data.rows:
        if not (
            row.get("a_tfim") > row.get("b_pim") >= row.get("s_tfim")
        ):
            return False
    return True


if __name__ == "__main__":
    for figure in (overlap_factor(), shader_work(), latency_hiding()):
        print(figure.title)
        print(figure.format_table())
        print("orderings hold:", orderings_hold(figure))
        print()
