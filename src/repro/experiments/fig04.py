"""Fig. 4: texture filtering with anisotropic filtering disabled.

The paper disables anisotropic filtering on the baseline GPU and
measures the texture-filtering speedup (avg 1.1x, up to 4.2x) and the
texture memory traffic reduction (avg -34 %, up to -73 %), establishing
anisotropic filtering as the bandwidth bottleneck of texture filtering.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import Design
from repro.experiments.common import FigureData
from repro.experiments.runner import ExperimentRunner


def run(
    runner: Optional[ExperimentRunner] = None,
    workload_names: Optional[Sequence[str]] = None,
) -> FigureData:
    runner = runner or ExperimentRunner(workload_names)
    data = FigureData(
        figure="fig4",
        title="Texture filtering speedup / traffic with anisotropic disabled",
        columns=["texture_speedup", "normalized_traffic"],
        paper_reference=(
            "Disabling anisotropic filtering speeds up texture filtering by "
            "1.1x on average (up to 4.2x) and cuts texture traffic by 34% "
            "on average (up to 73%)."
        ),
    )
    for workload in runner.workloads:
        baseline = runner.run(workload, Design.BASELINE)
        disabled = runner.run(workload, Design.BASELINE, aniso_enabled=False)
        speedup = disabled.frame.texture_speedup_over(baseline.frame)
        base_traffic = baseline.frame.traffic.external_texture
        traffic = (
            disabled.frame.traffic.external_texture / base_traffic
            if base_traffic > 0
            else 1.0
        )
        data.add_row(
            workload.name, texture_speedup=speedup, normalized_traffic=traffic
        )
    data.notes.append(
        f"mean speedup {data.mean('texture_speedup'):.2f} (paper: ~1.1, <=4.2); "
        f"mean traffic {data.mean('normalized_traffic'):.2f} (paper: ~0.66)"
    )
    return data


if __name__ == "__main__":
    print(run().format_table())
