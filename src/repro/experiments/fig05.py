"""Fig. 5: B-PIM -- replacing GDDR5 with an HMC, no in-memory compute.

The paper: B-PIM improves 3D rendering by 27 % on average (up to 30 %)
and texture filtering by 1.07x (up to 1.69x) -- worthwhile but far from
exhausting the HMC's internal bandwidth, which motivates the TFIM designs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import Design
from repro.experiments.common import FigureData
from repro.experiments.runner import ExperimentRunner


def run(
    runner: Optional[ExperimentRunner] = None,
    workload_names: Optional[Sequence[str]] = None,
) -> FigureData:
    runner = runner or ExperimentRunner(workload_names)
    data = FigureData(
        figure="fig5",
        title="B-PIM speedup over the GDDR5 baseline",
        columns=["render_speedup", "texture_speedup"],
        paper_reference=(
            "B-PIM: 27% average (up to 30%) 3D rendering speedup and 1.07x "
            "(up to 1.69x) texture filtering speedup over GDDR5."
        ),
    )
    for workload in runner.workloads:
        data.add_row(
            workload.name,
            render_speedup=runner.render_speedup(workload, Design.B_PIM),
            texture_speedup=runner.texture_speedup(workload, Design.B_PIM),
        )
    data.notes.append(
        f"mean render {data.mean('render_speedup'):.2f} (paper: 1.27); "
        f"mean texture {data.mean('texture_speedup'):.2f} (paper: 1.07)"
    )
    return data


if __name__ == "__main__":
    print(run().format_table())
