"""Fig. 12: texture memory traffic under the designs.

The paper: S-TFIM inflates external texture traffic by 2.79x on average
(per-app bars 2.07-6.37); A-TFIM at the strict 0.01*pi threshold sits
slightly above baseline, and at the relaxed 0.05*pi threshold cuts
traffic by 28 % on average (up to 64 %).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import Design
from repro.core.angle import THRESHOLD_001PI, THRESHOLD_005PI
from repro.experiments.common import FigureData
from repro.experiments.runner import ExperimentRunner

COLUMNS = ["baseline", "b_pim", "s_tfim", "a_tfim_001pi", "a_tfim_005pi"]


def run(
    runner: Optional[ExperimentRunner] = None,
    workload_names: Optional[Sequence[str]] = None,
) -> FigureData:
    runner = runner or ExperimentRunner(workload_names)
    data = FigureData(
        figure="fig12",
        title="Normalized external texture memory traffic per design",
        columns=COLUMNS,
        paper_reference=(
            "S-TFIM: 2.79x average texture traffic (bars 2.07-6.37). "
            "A-TFIM-001pi: slightly above baseline. A-TFIM-005pi: -28% "
            "average (up to -64%)."
        ),
    )
    for workload in runner.workloads:
        data.add_row(
            workload.name,
            baseline=1.0,
            b_pim=runner.texture_traffic_ratio(workload, Design.B_PIM),
            s_tfim=runner.texture_traffic_ratio(workload, Design.S_TFIM),
            a_tfim_001pi=runner.texture_traffic_ratio(
                workload, Design.A_TFIM, THRESHOLD_001PI
            ),
            a_tfim_005pi=runner.texture_traffic_ratio(
                workload, Design.A_TFIM, THRESHOLD_005PI
            ),
        )
    data.notes.append(
        f"S-TFIM mean {data.mean('s_tfim'):.2f} (paper: 2.79); "
        f"A-TFIM-005pi mean {data.mean('a_tfim_005pi'):.2f} (paper: 0.72)"
    )
    return data


if __name__ == "__main__":
    print(run().format_table())
