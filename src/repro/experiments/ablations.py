"""Ablation studies beyond the paper's figures (DESIGN.md section 6).

* **MTU sharing** (S-TFIM): the paper mentions that sharing one MTU
  among several shader clusters saves area but "may cause resource
  contention"; we quantify it.
* **Child Texel Consolidation off** (A-TFIM): the value of merging
  duplicate child fetches.
* **Anisotropy cap sweep**: how the maximum anisotropy level changes the
  baseline/A-TFIM gap.
* **HMC bandwidth sensitivity**: A-TFIM speedup vs internal bandwidth.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.core import Design, simulate_frame
from repro.core.angle import DEFAULT_THRESHOLD
from repro.experiments.common import FigureData
from repro.experiments.runner import ExperimentRunner
from repro.workloads import GameWorkload, workload_by_name


def mtu_sharing(
    runner: Optional[ExperimentRunner] = None,
    workload_names: Optional[Sequence[str]] = None,
    share_ratios: Sequence[int] = (1, 2, 4),
) -> FigureData:
    """S-TFIM texture speedup as clusters share MTUs."""
    runner = runner or ExperimentRunner(workload_names)
    columns = [f"share_{ratio}" for ratio in share_ratios]
    data = FigureData(
        figure="ablation-mtu-share",
        title="S-TFIM texture speedup vs MTU sharing ratio",
        columns=columns,
        paper_reference=(
            "Section IV: sharing MTUs saves area but may cause contention; "
            "the paper evaluates private MTUs only."
        ),
    )
    for workload in runner.workloads:
        values = {}
        for ratio in share_ratios:
            run = runner.run(workload, Design.S_TFIM, mtu_share=ratio)
            values[f"share_{ratio}"] = run.frame.texture_speedup_over(
                runner.baseline(workload).frame
            )
        data.add_row(workload.name, **values)
    return data


def consolidation(
    runner: Optional[ExperimentRunner] = None,
    workload_names: Optional[Sequence[str]] = None,
) -> FigureData:
    """A-TFIM with and without Child Texel Consolidation."""
    runner = runner or ExperimentRunner(workload_names)
    data = FigureData(
        figure="ablation-consolidation",
        title="A-TFIM texture speedup with/without Child Texel Consolidation",
        columns=["with_consolidation", "without_consolidation"],
        paper_reference=(
            "Section V-D: the Child Texel Consolidation merges identical "
            "child fetches to reduce memory contention."
        ),
    )
    for workload in runner.workloads:
        with_on = runner.run(
            workload, Design.A_TFIM, DEFAULT_THRESHOLD, consolidation_enabled=True
        )
        with_off = runner.run(
            workload, Design.A_TFIM, DEFAULT_THRESHOLD, consolidation_enabled=False
        )
        baseline = runner.baseline(workload).frame
        data.add_row(
            workload.name,
            with_consolidation=with_on.frame.texture_speedup_over(baseline),
            without_consolidation=with_off.frame.texture_speedup_over(baseline),
        )
    return data


def anisotropy_cap(
    workload_name: str = "doom3-640x480",
    caps: Sequence[int] = (2, 4, 8, 16),
) -> FigureData:
    """Baseline texel volume and A-TFIM gain vs max anisotropy level."""
    base_workload = workload_by_name(workload_name)
    data = FigureData(
        figure="ablation-aniso-cap",
        title=f"A-TFIM texture speedup vs max anisotropy ({workload_name})",
        columns=["texels_per_request", "a_tfim_texture_speedup"],
        paper_reference=(
            "Section II-C: required texels grow with the anisotropy level "
            "(16x EWA needs 128 texels, 32x a bilinear fetch)."
        ),
    )
    for cap in caps:
        workload = dataclasses.replace(base_workload, max_anisotropy=cap)
        scene, trace = workload.trace()
        baseline = simulate_frame(
            scene, trace, workload.design_config(Design.BASELINE)
        )
        atfim = simulate_frame(
            scene,
            trace,
            workload.design_config(
                Design.A_TFIM,
                angle_threshold=DEFAULT_THRESHOLD.effective_radians,
            ),
        )
        texels = baseline.frame.texels_requested / max(
            1, baseline.frame.num_requests
        )
        data.add_row(
            f"aniso_{cap}x",
            texels_per_request=texels,
            a_tfim_texture_speedup=atfim.frame.texture_speedup_over(
                baseline.frame
            ),
        )
    return data


def internal_bandwidth(
    workload_name: str = "doom3-640x480",
    multipliers: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
) -> FigureData:
    """A-TFIM texture speedup vs HMC internal bandwidth."""
    workload = workload_by_name(workload_name)
    scene, trace = workload.trace()
    baseline = simulate_frame(
        scene, trace, workload.design_config(Design.BASELINE)
    )
    data = FigureData(
        figure="ablation-internal-bw",
        title=f"A-TFIM texture speedup vs HMC internal bandwidth ({workload_name})",
        columns=["a_tfim_texture_speedup"],
        paper_reference=(
            "Section III: internal bandwidth (512 GB/s) vs external "
            "(320 GB/s) is the headroom the TFIM designs exploit."
        ),
    )
    base_hmc = workload.hmc_config()
    for multiplier in multipliers:
        hmc = dataclasses.replace(
            base_hmc,
            internal_bandwidth_gb_per_s=base_hmc.internal_bandwidth_gb_per_s
            * multiplier,
            external_bandwidth_gb_per_s=min(
                base_hmc.external_bandwidth_gb_per_s,
                base_hmc.internal_bandwidth_gb_per_s * multiplier,
            ),
        )
        config = workload.design_config(
            Design.A_TFIM,
            angle_threshold=DEFAULT_THRESHOLD.effective_radians,
            hmc=hmc,
        )
        run = simulate_frame(scene, trace, config)
        data.add_row(
            f"internal_x{multiplier}",
            a_tfim_texture_speedup=run.frame.texture_speedup_over(baseline.frame),
        )
    return data


def multi_cube(
    workload_name: str = "doom3-640x480",
    cube_counts: Sequence[int] = (1, 2, 4),
) -> FigureData:
    """A-TFIM with multiple HMC cubes (paper section V-E).

    Textures map whole to one cube, so offloads never straddle cubes;
    extra cubes add parallel links and vaults.
    """
    workload = workload_by_name(workload_name)
    scene, trace = workload.trace()
    baseline = simulate_frame(
        scene, trace, workload.design_config(Design.BASELINE)
    )
    data = FigureData(
        figure="ablation-multi-cube",
        title=f"A-TFIM speedup vs number of HMC cubes ({workload_name})",
        columns=["render_speedup", "texture_speedup"],
        paper_reference=(
            "Section V-E: with multiple HMCs, a parent texel fetch maps "
            "to a single cube (parents and children share a texture)."
        ),
    )
    for cubes in cube_counts:
        config = workload.design_config(
            Design.A_TFIM,
            angle_threshold=DEFAULT_THRESHOLD.effective_radians,
            num_cubes=cubes,
        )
        run = simulate_frame(scene, trace, config)
        data.add_row(
            f"cubes_{cubes}",
            render_speedup=run.frame.speedup_over(baseline.frame),
            texture_speedup=run.frame.texture_speedup_over(baseline.frame),
        )
    return data


def compression(
    workload_name: str = "doom3-640x480",
) -> FigureData:
    """Texture compression (section VIII) combined with each design."""
    workload = workload_by_name(workload_name)
    scene, trace = workload.trace()
    data = FigureData(
        figure="ablation-compression",
        title=f"Texture compression x design ({workload_name})",
        columns=["render_speedup", "external_texture_ratio"],
        paper_reference=(
            "Section VIII: fixed-rate texture compression is orthogonal "
            "to the TFIM designs."
        ),
    )
    baseline = simulate_frame(
        scene, trace, workload.design_config(Design.BASELINE)
    )
    for design in (Design.BASELINE, Design.B_PIM, Design.A_TFIM):
        for compressed in (False, True):
            config = workload.design_config(
                design,
                angle_threshold=DEFAULT_THRESHOLD.effective_radians,
                texture_compression=compressed,
            )
            run = simulate_frame(scene, trace, config)
            suffix = "+bc" if compressed else ""
            data.add_row(
                f"{design.value}{suffix}",
                render_speedup=run.frame.speedup_over(baseline.frame),
                external_texture_ratio=(
                    run.frame.traffic.external_texture
                    / baseline.frame.traffic.external_texture
                ),
            )
    return data


if __name__ == "__main__":
    from repro.experiments.runner import FAST_WORKLOADS

    for figure in (
        mtu_sharing(workload_names=FAST_WORKLOADS),
        consolidation(workload_names=FAST_WORKLOADS),
        anisotropy_cap(),
        internal_bandwidth(),
    ):
        print(figure.title)
        print(figure.format_table())
        print()
