"""Fig. 14: A-TFIM rendering speedup vs camera-angle threshold.

The paper sweeps the threshold from 0.005*pi (strictest) to
no-recalculation and shows the rendering speedup rising monotonically
from ~1.33x to ~1.47x as the threshold loosens.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import Design
from repro.core.angle import THRESHOLD_SWEEP
from repro.experiments.common import FigureData
from repro.experiments.runner import ExperimentRunner


def run(
    runner: Optional[ExperimentRunner] = None,
    workload_names: Optional[Sequence[str]] = None,
) -> FigureData:
    runner = runner or ExperimentRunner(workload_names)
    columns = [threshold.label for threshold in THRESHOLD_SWEEP]
    data = FigureData(
        figure="fig14",
        title="A-TFIM rendering speedup per camera-angle threshold",
        columns=columns,
        paper_reference=(
            "Speedup rises monotonically with the threshold, from ~1.33x "
            "at 0.005pi to ~1.47x at no-recalculation."
        ),
    )
    for workload in runner.workloads:
        values = {
            threshold.label: runner.render_speedup(
                workload, Design.A_TFIM, threshold
            )
            for threshold in THRESHOLD_SWEEP
        }
        data.add_row(workload.name, **values)
    means = [f"{label}={data.mean(label):.2f}" for label in columns]
    data.notes.append("means: " + ", ".join(means))
    return data


if __name__ == "__main__":
    print(run().format_table())
