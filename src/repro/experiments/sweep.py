"""Declarative design-space sweeps over the fan-out scheduler.

A sweep is a Cartesian product over four axes -- angle threshold,
workload (which carries resolution), external-link bandwidth scale, and
memory backend (:mod:`repro.memory.registry`) -- optionally subsampled
to a fixed point budget, and executed as one batch through
:meth:`~repro.experiments.runner.ExperimentRunner.run_many` on any
executor backend (:data:`repro.faults.BACKEND_NAMES`).

Two properties make thousand-point sweeps cheap and comparable:

* **Canonicalization**: a :class:`SweepPoint` knows which axes its
  design actually reads (BASELINE ignores the PIM substrate entirely;
  only A-TFIM reads the angle threshold), so distinct points collapse
  onto shared :class:`~repro.experiments.runner.RunKey` simulations.
  A 1000-point sample typically needs far fewer unique frames.
* **Deterministic sampling**: subsets are chosen by ranking each
  point's token under :func:`repro.faults.plan.stable_fraction`, so a
  sample is a pure function of ``(definition, n, seed)`` -- identical
  across processes, hosts, and executor backends.

The headline product is the **A-TFIM crossover surface**: for each
(memory backend x link scale) cell, the smallest angle threshold at
which A-TFIM's mean frame speedup overtakes S-TFIM's, written as a
section of EXPERIMENTS.md (see :func:`surface_markdown`).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core import Design
from repro.core.angle import DEFAULT_THRESHOLD
from repro.experiments.runner import ExperimentRunner, RunKey
from repro.faults import RetryPolicy
from repro.faults.plan import stable_fraction

SWEEP_THRESHOLDS: Tuple[float, ...] = (
    0.0025,
    0.005,
    0.01,
    0.0157,
    0.0314159,
    0.0785,
    0.157,
    0.314159,
)
"""Default angle-threshold axis (radians): the paper's sweep points
(0.0005pi .. 0.1pi) plus midpoints, dense where Fig. 14 bends."""

SWEEP_LINK_SCALES: Tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0)
"""Default external-interface multipliers around each backend's nominal
link rate."""


@dataclass(frozen=True)
class SweepPoint:
    """One coordinate of the design space."""

    workload: str
    design: Design
    angle_threshold: float
    memory_backend: str = "hmc"
    link_bandwidth_scale: float = 1.0

    @property
    def token(self) -> str:
        """Stable identity used for sampling ranks and signatures."""
        return "|".join(
            (
                self.workload,
                self.design.name,
                repr(self.angle_threshold),
                self.memory_backend,
                repr(self.link_bandwidth_scale),
            )
        )

    def run_key(self) -> RunKey:
        """The canonical simulation this point's metrics come from.

        Axes a design never reads are collapsed to their defaults so
        the memo/disk caches deduplicate them: only A-TFIM compares
        against the angle threshold (``effective_angle_threshold`` is
        consulted nowhere else), and BASELINE runs on GDDR5, never
        touching the PIM substrate or its link scale.
        """
        threshold = self.angle_threshold
        backend = self.memory_backend
        link_scale = self.link_bandwidth_scale
        if self.design is not Design.A_TFIM:
            threshold = DEFAULT_THRESHOLD.effective_radians
        if self.design is Design.BASELINE:
            backend = "hmc"
            link_scale = 1.0
        return RunKey(
            workload=self.workload,
            design=self.design,
            angle_threshold=threshold,
            aniso_enabled=True,
            memory_backend=backend,
            link_bandwidth_scale=link_scale,
        )

    def baseline_key(self) -> RunKey:
        """The normalization run every speedup divides by."""
        return RunKey(
            workload=self.workload,
            design=Design.BASELINE,
            angle_threshold=DEFAULT_THRESHOLD.effective_radians,
            aniso_enabled=True,
        )


@dataclass(frozen=True)
class SweepDefinition:
    """A named Cartesian product over the sweep axes."""

    name: str
    workloads: Tuple[str, ...]
    designs: Tuple[Design, ...] = (Design.S_TFIM, Design.A_TFIM)
    thresholds: Tuple[float, ...] = SWEEP_THRESHOLDS
    memory_backends: Tuple[str, ...] = ("hmc", "hbm", "nearbank")
    link_scales: Tuple[float, ...] = SWEEP_LINK_SCALES
    seed: int = 0

    def __post_init__(self) -> None:
        for axis_name in ("workloads", "designs", "thresholds",
                          "memory_backends", "link_scales"):
            if not getattr(self, axis_name):
                raise ValueError(f"sweep axis {axis_name!r} is empty")

    @property
    def size(self) -> int:
        """Points in the full Cartesian product."""
        return (
            len(self.workloads) * len(self.designs) * len(self.thresholds)
            * len(self.memory_backends) * len(self.link_scales)
        )

    def points(self) -> List[SweepPoint]:
        """The full product, in deterministic axis-major order."""
        return [
            SweepPoint(workload, design, threshold, backend, link_scale)
            for workload, design, threshold, backend, link_scale
            in itertools.product(
                self.workloads, self.designs, self.thresholds,
                self.memory_backends, self.link_scales,
            )
        ]

    def sample(self, n: int, seed: Optional[int] = None) -> List[SweepPoint]:
        """A deterministic ``n``-point subset of the product.

        Every point is ranked by ``stable_fraction(seed, site, token)``
        and the ``n`` lowest-ranked survive, returned in product order.
        A pure function of ``(definition, n, seed)``: no RNG state, so
        serial and parallel sweeps agree on the subset by construction.
        """
        if n <= 0:
            raise ValueError("sample size must be positive")
        seed = self.seed if seed is None else seed
        universe = self.points()
        if n >= len(universe):
            return universe
        site = f"sweep:{self.name}"
        ranked = sorted(
            range(len(universe)),
            key=lambda i: (stable_fraction(seed, site, universe[i].token), i),
        )
        keep = set(ranked[:n])
        return [point for i, point in enumerate(universe) if i in keep]


def _signature(run) -> Tuple[float, float, float, int]:
    """The fields two runs must agree on to count as bit-identical
    (same contract as the ``chaos`` gate)."""
    return (
        run.frame_cycles,
        run.texture_cycles,
        run.external_texture_bytes,
        run.frame.num_requests,
    )


@dataclass(frozen=True)
class SweepRecord:
    """One sweep point's measured outcome."""

    point: SweepPoint
    render_speedup: float
    texture_traffic_ratio: float
    signature: Tuple[float, float, float, int]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.point.workload,
            "design": self.point.design.name,
            "angle_threshold": self.point.angle_threshold,
            "memory_backend": self.point.memory_backend,
            "link_bandwidth_scale": self.point.link_bandwidth_scale,
            "render_speedup": self.render_speedup,
            "texture_traffic_ratio": self.texture_traffic_ratio,
            "signature": list(self.signature),
        }


@dataclass
class SweepResult:
    """Everything one :func:`run_sweep` call measured."""

    definition: SweepDefinition
    records: List[SweepRecord]
    executor_backend: Optional[str]
    unique_runs: int
    missing: List[SweepPoint] = field(default_factory=list)
    fanout: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_points(self) -> int:
        return len(self.records) + len(self.missing)

    def signatures(self) -> Dict[str, Tuple[float, float, float, int]]:
        """Token -> signature map for cross-backend identity checks."""
        return {
            record.point.token: record.signature for record in self.records
        }

    def surface(self) -> List[Dict[str, Any]]:
        """The A-TFIM crossover surface over (backend x link scale).

        One cell per (memory backend, link scale) pair that any A-TFIM
        point landed in.  Within a cell, speedups are averaged per
        threshold across workloads; the **crossover threshold** is the
        smallest threshold whose mean A-TFIM speedup reaches the cell's
        mean S-TFIM speedup (S-TFIM is threshold-independent).  ``None``
        means A-TFIM never catches up inside the sampled range.
        """
        cells: Dict[Tuple[str, float], Dict[str, Any]] = {}
        for record in self.records:
            point = record.point
            if point.design not in (Design.A_TFIM, Design.S_TFIM):
                continue
            cell = cells.setdefault(
                (point.memory_backend, point.link_bandwidth_scale),
                {"atfim": {}, "stfim": []},
            )
            if point.design is Design.A_TFIM:
                cell["atfim"].setdefault(point.angle_threshold, []).append(
                    record.render_speedup
                )
            else:
                cell["stfim"].append(record.render_speedup)
        surface = []
        for (backend, link_scale) in sorted(cells):
            cell = cells[(backend, link_scale)]
            by_threshold = {
                threshold: sum(values) / len(values)
                for threshold, values in sorted(cell["atfim"].items())
            }
            stfim_mean = (
                sum(cell["stfim"]) / len(cell["stfim"])
                if cell["stfim"] else None
            )
            target = stfim_mean if stfim_mean is not None else 1.0
            crossover = next(
                (
                    threshold
                    for threshold, speedup in by_threshold.items()
                    if speedup >= target
                ),
                None,
            )
            surface.append(
                {
                    "memory_backend": backend,
                    "link_bandwidth_scale": link_scale,
                    "atfim_speedup_by_threshold": by_threshold,
                    "stfim_mean_speedup": stfim_mean,
                    "crossover_threshold": crossover,
                    "points": (
                        sum(len(v) for v in cell["atfim"].values())
                        + len(cell["stfim"])
                    ),
                }
            )
        return surface

    def as_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.definition.name,
            "executor_backend": self.executor_backend,
            "points": self.num_points,
            "unique_runs": self.unique_runs,
            "missing": [point.token for point in self.missing],
            "records": [record.as_dict() for record in self.records],
            "surface": self.surface(),
            "fanout": self.fanout,
        }

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True))
        return path


def run_sweep(
    definition: SweepDefinition,
    points: Optional[Sequence[SweepPoint]] = None,
    runner: Optional[ExperimentRunner] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    retry_policy: Optional[RetryPolicy] = None,
    task_timeout: Optional[float] = None,
) -> SweepResult:
    """Execute a sweep (or a sampled subset) as one fan-out batch.

    ``backend`` selects the executor backend for the underlying
    :meth:`~repro.experiments.runner.ExperimentRunner.run_many` call;
    the physics is deterministic, so every backend must produce the
    same :meth:`SweepResult.signatures` -- the CI sweep gate asserts
    exactly that.  Baseline normalization runs are scheduled
    automatically for every workload the points touch.
    """
    if points is None:
        points = definition.points()
    points = list(points)
    if not points:
        raise ValueError("nothing to sweep: no points")
    workloads: List[str] = []
    keys: List[RunKey] = []
    seen_keys = set()
    for point in points:
        if point.workload not in workloads:
            workloads.append(point.workload)
        for key in (point.baseline_key(), point.run_key()):
            if key not in seen_keys:
                seen_keys.add(key)
                keys.append(key)
    if runner is None:
        runner = ExperimentRunner(workloads, cache_dir=cache_dir)
    runs = runner.run_many(
        keys,
        jobs=jobs,
        retry_policy=retry_policy,
        task_timeout=task_timeout,
        backend=backend,
    )
    report = runner.fanout_report()
    records: List[SweepRecord] = []
    missing: List[SweepPoint] = []
    for point in points:
        run = runs.get(point.run_key())
        baseline = runs.get(point.baseline_key())
        if run is None or baseline is None:
            missing.append(point)
            continue
        base_texture = baseline.frame.traffic.external_texture
        records.append(
            SweepRecord(
                point=point,
                render_speedup=run.frame.speedup_over(baseline.frame),
                texture_traffic_ratio=(
                    run.frame.traffic.external_texture / base_texture
                    if base_texture > 0 else float("nan")
                ),
                signature=_signature(run),
            )
        )
    fanout = report.as_dict()
    fanout.pop("tasks", None)
    return SweepResult(
        definition=definition,
        records=records,
        executor_backend=report.backend,
        unique_runs=len(keys),
        missing=missing,
        fanout=fanout,
    )


SURFACE_HEADING = "## A-TFIM crossover surface"


def surface_markdown(result: SweepResult) -> str:
    """Render the crossover surface as an EXPERIMENTS.md section."""
    definition = result.definition
    lines = [
        SURFACE_HEADING,
        "",
        f"Sweep `{definition.name}`: {result.num_points} sampled points "
        f"({definition.size} in the full product) collapsing onto "
        f"{result.unique_runs} unique simulations, executed on the "
        f"`{result.executor_backend or 'in-process'}` executor backend.",
        "",
        "Axes: angle threshold x workload/resolution x external-link "
        "scale x memory backend (`hmc` = paper Table I; `hbm` = "
        "HBM2-class interposer stack with base-die PIM; `nearbank` = "
        "UPMEM-like near-bank module behind a DDR4-class channel).",
        "",
        "The crossover threshold is the smallest sampled angle "
        "threshold at which A-TFIM's mean frame speedup (over the "
        "GDDR5 baseline, averaged across sampled workloads) reaches "
        "S-TFIM's mean speedup in the same cell; `--` means A-TFIM "
        "never catches S-TFIM inside the sampled range.",
        "",
        "| memory backend | link scale | S-TFIM mean x | A-TFIM best x "
        "| crossover threshold (rad) |",
        "|---|---|---|---|---|",
    ]
    for cell in result.surface():
        speedups = cell["atfim_speedup_by_threshold"]
        stfim = cell["stfim_mean_speedup"]
        crossover = cell["crossover_threshold"]
        lines.append(
            "| {backend} | {link:g} | {stfim} | {best} | {cross} |".format(
                backend=cell["memory_backend"],
                link=cell["link_bandwidth_scale"],
                stfim="--" if stfim is None else f"{stfim:.2f}",
                best="--" if not speedups else f"{max(speedups.values()):.2f}",
                cross="--" if crossover is None else f"{crossover:g}",
            )
        )
    lines.append("")
    return "\n".join(lines)


def update_experiments_md(
    section: str, path: Union[str, Path] = "EXPERIMENTS.md"
) -> Path:
    """Replace (or append) the crossover-surface section in-place.

    The section spans from :data:`SURFACE_HEADING` to the next ``## ``
    heading (or EOF); everything else in the file is preserved byte
    for byte.
    """
    path = Path(path)
    section = section.rstrip("\n") + "\n"
    if not path.exists():
        path.write_text(section)
        return path
    text = path.read_text()
    start = text.find(SURFACE_HEADING)
    if start < 0:
        joiner = "" if text.endswith("\n\n") else ("\n" if text.endswith("\n") else "\n\n")
        path.write_text(text + joiner + section)
        return path
    end = text.find("\n## ", start + len(SURFACE_HEADING))
    tail = "" if end < 0 else text[end + 1:]
    path.write_text(text[:start] + section + tail)
    return path
