"""Section VII-E: A-TFIM design overhead, reproduced as a table."""

from __future__ import annotations

from repro.energy.overhead import AtfimOverhead, compute_overhead
from repro.experiments.common import FigureData


def run() -> FigureData:
    overhead = compute_overhead()
    data = FigureData(
        figure="sec7e",
        title="A-TFIM design overhead (section VII-E arithmetic)",
        columns=["value"],
        paper_reference=(
            "Parent Texel Buffer 1.41KB; Child Texel Consolidation 0.5KB; "
            "HMC logic-layer overhead 3.18% of an 8Gb DRAM die; GPU angle "
            "bits 4.2KB total, 0.23% of GPU area."
        ),
    )
    data.add_row("parent_buffer_kb", value=overhead.parent_buffer_kb)
    data.add_row("consolidation_kb", value=overhead.consolidation_kb)
    data.add_row("hmc_storage_kb", value=overhead.hmc_storage_kb)
    data.add_row("hmc_area_mm2", value=overhead.hmc_area_mm2)
    data.add_row("hmc_area_fraction", value=overhead.hmc_area_fraction)
    data.add_row("l1_angle_kb", value=overhead.l1_angle_kb)
    data.add_row("l2_angle_kb", value=overhead.l2_angle_kb)
    data.add_row("gpu_angle_kb_total", value=overhead.gpu_angle_kb_total)
    data.add_row("gpu_area_fraction", value=overhead.gpu_area_fraction)
    return data


if __name__ == "__main__":
    print(run().format_table(precision=4))
