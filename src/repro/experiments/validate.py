"""Programmatic paper-vs-measured validation.

Each figure's qualitative claims are encoded as named checks over the
regenerated :class:`~repro.experiments.common.FigureData`; the report
runs them and EXPERIMENTS.md records pass/fail per claim.  Checks assert
*shapes* (orderings, monotonicity, bands), not absolute cycle counts --
the reproduction's contract (DESIGN.md section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.experiments.common import FigureData


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one claim check."""

    figure: str
    claim: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.figure}: {self.claim} ({self.detail})"


def _check(figure: str, claim: str, passed: bool, detail: str) -> CheckResult:
    return CheckResult(figure=figure, claim=claim, passed=bool(passed),
                       detail=detail)


def check_fig02(data: FigureData) -> List[CheckResult]:
    """Texture fetches dominate memory traffic (paper: ~60 % average)."""
    mean_share = data.mean("texture")
    results = [
        _check("fig2", "texture is the largest traffic class in every app",
               all(row.get("texture") == max(row.values.values())
                   for row in data.rows),
               f"min share {min(data.column('texture')):.2f}"),
        _check("fig2", "average texture share in the 40-80% band",
               0.40 <= mean_share <= 0.80,
               f"mean {mean_share:.2f} (paper ~0.60)"),
    ]
    return results


def check_fig04(data: FigureData) -> List[CheckResult]:
    """Disabling anisotropic filtering helps speed and traffic."""
    return [
        _check("fig4", "every app speeds up with anisotropic disabled",
               all(v >= 1.0 for v in data.column("texture_speedup")),
               f"min {min(data.column('texture_speedup')):.2f}"),
        _check("fig4", "texture traffic drops (paper: -34% average)",
               data.mean("normalized_traffic") < 0.9,
               f"mean {data.mean('normalized_traffic'):.2f}"),
    ]


def check_fig05(data: FigureData) -> List[CheckResult]:
    """B-PIM helps overall rendering (paper: +27 % average)."""
    return [
        _check("fig5", "B-PIM never slows rendering",
               all(v > 1.0 for v in data.column("render_speedup")),
               f"min {min(data.column('render_speedup')):.2f}"),
        _check("fig5", "B-PIM average render speedup in the 1.05-1.6 band",
               1.05 <= data.mean("render_speedup") <= 1.6,
               f"mean {data.mean('render_speedup'):.2f} (paper 1.27)"),
    ]


def check_fig10(data: FigureData) -> List[CheckResult]:
    """A-TFIM dominates texture filtering."""
    return [
        _check("fig10", "A-TFIM beats S-TFIM on every app",
               all(row.get("a_tfim_001pi") > row.get("s_tfim")
                   for row in data.rows),
               "per-app ordering"),
        _check("fig10", "A-TFIM mean texture speedup > 1.5x",
               data.mean("a_tfim_001pi") > 1.5,
               f"mean {data.mean('a_tfim_001pi'):.2f} (paper 3.97)"),
        _check("fig10", "B-PIM texture gain modest vs A-TFIM",
               data.mean("b_pim") < data.mean("a_tfim_001pi"),
               f"b-pim {data.mean('b_pim'):.2f}"),
    ]


def check_fig11(data: FigureData) -> List[CheckResult]:
    """A-TFIM overall rendering speedup (paper: 1.43x avg, 1.65x max)."""
    return [
        _check("fig11", "A-TFIM mean render speedup in the 1.2-1.9 band",
               1.2 <= data.mean("a_tfim_001pi") <= 1.9,
               f"mean {data.mean('a_tfim_001pi'):.2f} (paper 1.43)"),
        _check("fig11", "S-TFIM ~= B-PIM or worse",
               all(row.get("s_tfim") <= row.get("b_pim") * 1.05
                   for row in data.rows),
               "per-app ordering"),
    ]


def check_fig12(data: FigureData) -> List[CheckResult]:
    """Traffic: S-TFIM inflates; A-TFIM-005pi saves (paper -28 %)."""
    return [
        _check("fig12", "S-TFIM mean traffic in the 2-8x band",
               2.0 <= data.mean("s_tfim") <= 8.0,
               f"mean {data.mean('s_tfim'):.2f} (paper 2.79)"),
        _check("fig12", "A-TFIM-005pi saves traffic vs baseline",
               data.mean("a_tfim_005pi") < 1.0,
               f"mean {data.mean('a_tfim_005pi'):.2f} (paper 0.72)"),
        _check("fig12", "stricter threshold means more traffic",
               all(row.get("a_tfim_001pi") >= row.get("a_tfim_005pi")
                   for row in data.rows),
               "per-app ordering"),
    ]


def check_fig13(data: FigureData) -> List[CheckResult]:
    """Energy: A-TFIM < B-PIM < baseline; S-TFIM > B-PIM."""
    return [
        _check("fig13", "A-TFIM saves energy vs baseline (paper -22%)",
               data.mean("a_tfim_001pi") < 1.0,
               f"mean {data.mean('a_tfim_001pi'):.2f} (paper 0.78)"),
        _check("fig13", "A-TFIM beats B-PIM (paper -8%)",
               data.mean("a_tfim_001pi") < data.mean("b_pim"),
               f"b-pim {data.mean('b_pim'):.2f}"),
        _check("fig13", "S-TFIM worse than B-PIM in every app",
               all(row.get("s_tfim") > row.get("b_pim")
                   for row in data.rows),
               "per-app ordering"),
    ]


def check_fig14(data: FigureData) -> List[CheckResult]:
    """Speedup rises monotonically with the angle threshold."""
    means = [data.mean(column) for column in data.columns]
    monotone = all(b >= a - 1e-9 for a, b in zip(means, means[1:]))
    return [
        _check("fig14", "mean speedup monotone in the threshold",
               monotone, f"{means[0]:.2f} -> {means[-1]:.2f}"),
    ]


def check_fig15(data: FigureData) -> List[CheckResult]:
    """Quality: strict end best, visible drop toward no-recalculation."""
    ends_ordered = all(
        row.values[data.columns[0]] >= row.values[data.columns[-1]] - 1e-9
        for row in data.rows
    )
    means = [data.mean(column) for column in data.columns]
    return [
        _check("fig15", "strictest threshold gives the best quality",
               ends_ordered, "per-app endpoint ordering"),
        _check("fig15", "averaged quality peaks strict and drops loose",
               means[0] == max(means) and means[0] - means[-1] > 2.0,
               f"{means[0]:.1f}dB -> {means[-1]:.1f}dB"),
    ]


def check_fig16(data: FigureData) -> List[CheckResult]:
    """The averaged tradeoff curve: speed up, quality down."""
    speedups = data.column("speedup")
    psnrs = data.column("psnr")
    return [
        _check("fig16", "loosest threshold is the fastest",
               speedups[-1] >= speedups[0],
               f"{speedups[0]:.2f} -> {speedups[-1]:.2f}"),
        _check("fig16", "strictest threshold is the highest quality",
               psnrs[0] == max(psnrs),
               f"{psnrs[0]:.1f}dB -> {psnrs[-1]:.1f}dB"),
    ]


CHECKERS: Dict[str, Callable[[FigureData], List[CheckResult]]] = {
    "fig2": check_fig02,
    "fig4": check_fig04,
    "fig5": check_fig05,
    "fig10": check_fig10,
    "fig11": check_fig11,
    "fig12": check_fig12,
    "fig13": check_fig13,
    "fig14": check_fig14,
    "fig15": check_fig15,
    "fig16": check_fig16,
}


def validate(data: FigureData) -> List[CheckResult]:
    """Run the registered claims for one figure (empty if none)."""
    checker = CHECKERS.get(data.figure)
    if checker is None:
        return []
    return checker(data)


def summarize(results: Sequence[CheckResult]) -> str:
    passed = sum(1 for result in results if result.passed)
    return f"{passed}/{len(results)} paper claims hold"
