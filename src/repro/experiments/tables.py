"""Tables I and II: simulator configuration and benchmark registry."""

from __future__ import annotations

from typing import List

from repro.core.designs import DesignConfig
from repro.gpu.config import ATFIM_MEMORY_UNIT, GPUConfig, MTU_TEXTURE_UNIT
from repro.memory.gddr5 import Gddr5Config
from repro.memory.hmc import HmcConfig
from repro.workloads import WORKLOADS


def table1_rows() -> List[tuple[str, str]]:
    """Table I as (parameter, value) pairs from the live defaults."""
    gpu = GPUConfig()
    gddr5 = Gddr5Config()
    hmc = HmcConfig()
    rows = [
        ("Number of cluster", str(gpu.num_clusters)),
        ("Unified shader per cluster", str(gpu.shaders_per_cluster)),
        ("GPU frequency", f"{gpu.frequency_ghz} GHz"),
        ("Tile size", f"{gpu.tile_size}x{gpu.tile_size}"),
        ("Number of GPU texture units (baseline/A-TFIM)", str(gpu.num_texture_units)),
        ("Number of GPU texture units (S-TFIM)", "0"),
        (
            "Texture unit configuration",
            f"{gpu.texture_unit.address_alus} address ALUs, "
            f"{gpu.texture_unit.filter_alus} filtering ALUs",
        ),
        ("Texture L1 cache", f"{gpu.l1_cache.size_bytes // 1024}KB, "
                             f"{gpu.l1_cache.associativity}-way"),
        ("Texture L2 cache", f"{gpu.l2_cache.size_bytes // 1024}KB, "
                             f"{gpu.l2_cache.associativity}-way"),
        ("Off-chip bandwidth (GDDR5)", f"{gddr5.bandwidth_gb_per_s:.0f} GB/s"),
        ("Off-chip bandwidth (HMC)", f"{hmc.external_bandwidth_gb_per_s:.0f} GB/s"),
        ("HMC internal bandwidth", f"{hmc.internal_bandwidth_gb_per_s:.0f} GB/s"),
        ("Memory frequency", f"{gddr5.memory_frequency_ghz} GHz"),
        (
            "HMC configuration",
            f"{hmc.num_vaults} vaults, {hmc.banks_per_vault} banks/vault, "
            f"{hmc.tsv_latency_cycles:.0f} cycle TSV latency",
        ),
        (
            "S-TFIM MTU configuration",
            f"{MTU_TEXTURE_UNIT.address_alus} address ALUs, "
            f"{MTU_TEXTURE_UNIT.filter_alus} filtering ALUs",
        ),
        (
            "A-TFIM Texel Generator / Combination Unit",
            f"{ATFIM_MEMORY_UNIT.address_alus} address ALUs / "
            f"{ATFIM_MEMORY_UNIT.filter_alus} filtering ALUs",
        ),
    ]
    return rows


def table2_rows() -> List[tuple[str, str, str, str]]:
    """Table II: (name, resolution, library, engine) per workload."""
    return [
        (
            workload.game,
            workload.resolution_label,
            workload.library,
            workload.engine,
        )
        for workload in WORKLOADS
    ]


def format_table1() -> str:
    rows = table1_rows()
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name.ljust(width)}  {value}" for name, value in rows)


def format_table2() -> str:
    rows = table2_rows()
    header = ("game", "resolution", "library", "engine")
    widths = [max(len(str(r[i])) for r in [header] + rows) for i in range(4)]
    lines = ["  ".join(header[i].ljust(widths[i]) for i in range(4))]
    for row in rows:
        lines.append("  ".join(str(row[i]).ljust(widths[i]) for i in range(4)))
    return "\n".join(lines)


if __name__ == "__main__":
    print("Table I\n" + format_table1())
    print("\nTable II\n" + format_table2())
