"""Per-figure experiment harnesses.

One module per table/figure of the paper (see DESIGN.md section 4 for
the index).  Every module exposes ``run(...)`` returning a
:class:`~repro.experiments.common.FigureData`, printable as an aligned
text table; :mod:`repro.experiments.report` runs the full suite and
writes EXPERIMENTS.md.
"""

from repro.experiments.common import FigureData, FigureRow
from repro.experiments.runner import ExperimentRunner, RunKey
from repro.experiments.paper import PAPER, stat, within_factor
from repro.experiments.validate import CheckResult, summarize, validate

__all__ = [
    "FigureData",
    "FigureRow",
    "ExperimentRunner",
    "RunKey",
    "PAPER",
    "stat",
    "within_factor",
    "CheckResult",
    "validate",
    "summarize",
]
