"""Shared result containers and table formatting for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class FigureRow:
    """One row of a figure/table: a label plus named values."""

    label: str
    values: Dict[str, float]

    def get(self, column: str) -> float:
        if column not in self.values:
            raise KeyError(f"row {self.label!r} has no column {column!r}")
        return self.values[column]


@dataclass
class FigureData:
    """The regenerated data behind one paper figure or table."""

    figure: str
    title: str
    columns: List[str]
    rows: List[FigureRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    paper_reference: str = ""
    """What the paper reports for this figure, for EXPERIMENTS.md."""

    def add_row(self, label: str, **values: float) -> None:
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise ValueError(f"row {label!r} missing columns {missing}")
        self.rows.append(FigureRow(label=label, values=dict(values)))

    def column(self, name: str) -> List[float]:
        return [row.get(name) for row in self.rows]

    def mean(self, column: str) -> float:
        values = self.column(column)
        if not values:
            raise ValueError("no rows")
        return sum(values) / len(values)

    def maximum(self, column: str) -> float:
        values = self.column(column)
        if not values:
            raise ValueError("no rows")
        return max(values)

    def row(self, label: str) -> FigureRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no row labelled {label!r}")

    def format_table(self, precision: int = 3) -> str:
        """Render as an aligned plain-text table."""
        header = ["workload"] + self.columns
        body = [
            [row.label] + [f"{row.values[c]:.{precision}f}" for c in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(str(cell)) for cell in column)
            for column in zip(header, *body)
        ]
        lines = [
            "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))
            for cells in [header] + body
        ]
        separator = "  ".join("-" * width for width in widths)
        lines.insert(1, separator)
        return "\n".join(lines)

    def summary_line(self, column: str) -> str:
        return (
            f"{self.figure} {column}: mean {self.mean(column):.3f}, "
            f"max {self.maximum(column):.3f}"
        )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the conventional aggregate for speedup ratios)."""
    if not values:
        raise ValueError("no values")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
