"""Experiment runner with memoised design simulations.

Most figures slice the same underlying grid -- (workload x design x
threshold x aniso) -- so the runner memoises :func:`simulate_frame`
results and the per-workload traces.  All experiments are deterministic;
the cache is purely a time saver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import Design, DesignConfig, simulate_frame
from repro.core.angle import DEFAULT_THRESHOLD, AngleThreshold
from repro.core.frontend import DesignRun
from repro.energy import EnergyBreakdown, EnergyModel
from repro.render.scene import Scene
from repro.texture.requests import FragmentTrace
from repro.workloads import WORKLOADS, GameWorkload, workload_by_name

FAST_WORKLOADS = ["doom3-640x480", "riddick-640x480", "wolfenstein-640x480"]
"""Small subset used by tests and quick runs (sub-second traces)."""


@dataclass(frozen=True)
class RunKey:
    """Memoisation key for one design simulation."""

    workload: str
    design: Design
    angle_threshold: float
    aniso_enabled: bool
    mtu_share: int = 1
    consolidation_enabled: bool = True


class ExperimentRunner:
    """Runs and memoises design simulations over the workload set."""

    def __init__(self, workload_names: Optional[Sequence[str]] = None) -> None:
        if workload_names is None:
            self.workloads: List[GameWorkload] = list(WORKLOADS)
        else:
            self.workloads = [workload_by_name(name) for name in workload_names]
        self._traces: Dict[str, Tuple[Scene, FragmentTrace]] = {}
        self._runs: Dict[RunKey, DesignRun] = {}
        self._energy: Dict[RunKey, EnergyBreakdown] = {}
        self.energy_model = EnergyModel()

    def trace(self, workload: GameWorkload) -> Tuple[Scene, FragmentTrace]:
        if workload.name not in self._traces:
            self._traces[workload.name] = workload.trace()
        return self._traces[workload.name]

    def run(
        self,
        workload: GameWorkload,
        design: Design,
        threshold: Optional[AngleThreshold] = None,
        aniso_enabled: bool = True,
        mtu_share: int = 1,
        consolidation_enabled: bool = True,
    ) -> DesignRun:
        """Simulate (memoised) one workload under one design point."""
        threshold = threshold or DEFAULT_THRESHOLD
        key = RunKey(
            workload=workload.name,
            design=design,
            angle_threshold=threshold.effective_radians,
            aniso_enabled=aniso_enabled,
            mtu_share=mtu_share,
            consolidation_enabled=consolidation_enabled,
        )
        if key not in self._runs:
            scene, trace = self.trace(workload)
            config = workload.design_config(
                design,
                angle_threshold=threshold.effective_radians,
                aniso_enabled=aniso_enabled,
                mtu_share=mtu_share,
                consolidation_enabled=consolidation_enabled,
            )
            self._runs[key] = simulate_frame(scene, trace, config)
        return self._runs[key]

    def energy(
        self,
        workload: GameWorkload,
        design: Design,
        threshold: Optional[AngleThreshold] = None,
    ) -> EnergyBreakdown:
        """Frame energy (memoised) for one design point."""
        threshold = threshold or DEFAULT_THRESHOLD
        key = RunKey(
            workload=workload.name,
            design=design,
            angle_threshold=threshold.effective_radians,
            aniso_enabled=True,
        )
        if key not in self._energy:
            run = self.run(workload, design, threshold)
            self._energy[key] = self.energy_model.frame_energy(design, run.frame)
        return self._energy[key]

    def baseline(self, workload: GameWorkload) -> DesignRun:
        return self.run(workload, Design.BASELINE)

    # Convenience ratios ------------------------------------------------

    def texture_speedup(
        self,
        workload: GameWorkload,
        design: Design,
        threshold: Optional[AngleThreshold] = None,
    ) -> float:
        """Fig. 10 metric: mean texture-filter latency ratio."""
        run = self.run(workload, design, threshold)
        return run.frame.texture_speedup_over(self.baseline(workload).frame)

    def render_speedup(
        self,
        workload: GameWorkload,
        design: Design,
        threshold: Optional[AngleThreshold] = None,
    ) -> float:
        """Fig. 11 metric: frame makespan ratio."""
        run = self.run(workload, design, threshold)
        return run.frame.speedup_over(self.baseline(workload).frame)

    def texture_traffic_ratio(
        self,
        workload: GameWorkload,
        design: Design,
        threshold: Optional[AngleThreshold] = None,
    ) -> float:
        """Fig. 12 metric: external texture bytes, normalized."""
        run = self.run(workload, design, threshold)
        base = self.baseline(workload).frame.traffic.external_texture
        if base <= 0:
            raise ValueError(f"baseline of {workload.name} moved no texture bytes")
        return run.frame.traffic.external_texture / base

    def energy_ratio(
        self,
        workload: GameWorkload,
        design: Design,
        threshold: Optional[AngleThreshold] = None,
    ) -> float:
        """Fig. 13 metric: total frame energy, normalized."""
        energy = self.energy(workload, design, threshold)
        base = self.energy(workload, Design.BASELINE)
        return energy.total / base.total
