"""Experiment runner with memoised, disk-cached, parallel simulations.

Most figures slice the same underlying grid -- (workload x design x
threshold x aniso) -- so the runner memoises :func:`simulate_frame`
results and the per-workload traces.  All experiments are deterministic;
the caches are purely time savers.

Three layers, consulted in order:

* an in-process memo (``RunKey`` -> result dictionaries, as before);
* an optional on-disk :class:`~repro.experiments.cache.DiskCache`, keyed
  by workload/config/source-version content hashes, so reruns of the
  figure suite are incremental across processes and sessions (enable by
  passing ``cache_dir`` or setting ``REPRO_CACHE_DIR``);
* :meth:`ExperimentRunner.run_many`, which fans a batch of grid points
  out over a process pool -- traces first (one per distinct workload),
  then the design runs -- with workers communicating through the disk
  cache rather than shipping multi-megabyte traces back.

The fan-out is fault tolerant: scheduling goes through
:func:`repro.faults.executor.run_fanout`, so a failed task attempt is
retried with exponential backoff, a dead worker (``BrokenProcessPool``)
triggers a pool rebuild with in-flight keys requeued, and a task that
exhausts its retry budget degrades to serial in-process execution.
Whatever happens, ``run_many`` returns every result it obtained, and
:meth:`ExperimentRunner.fanout_report` labels each key with its
:class:`~repro.faults.outcomes.RunOutcome` (ok / retried / degraded /
failed).  Memoisation counters advance identically in the serial and
parallel branches: one miss per scheduled grid point (trace memoisation
is only counted by direct :meth:`ExperimentRunner.trace` /
:meth:`ExperimentRunner.run` calls).
"""

from __future__ import annotations

import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import faults, obs
from repro.core import Design, simulate_frame
from repro.core.angle import DEFAULT_THRESHOLD, AngleThreshold
from repro.core.frontend import DesignRun
from repro.energy import EnergyBreakdown, EnergyModel
from repro.experiments.cache import DiskCache
from repro.faults import (
    FanoutReport,
    FanoutTask,
    FaultContext,
    RetryPolicy,
    RunOutcome,
    TaskReport,
    run_fanout,
    task_token,
)
from repro.render.scene import Scene
from repro.texture.requests import FragmentTrace
from repro.units import Radians
from repro.workloads import WORKLOADS, GameWorkload, workload_by_name

FAST_WORKLOADS = ["doom3-640x480", "riddick-640x480", "wolfenstein-640x480"]
"""Small subset used by tests and quick runs (sub-second traces)."""


@dataclass(frozen=True)
class RunKey:
    """Memoisation key for one design simulation."""

    workload: str
    design: Design
    angle_threshold: float
    aniso_enabled: bool
    mtu_share: int = 1
    consolidation_enabled: bool = True
    memory_backend: str = "hmc"
    """PIM substrate (:mod:`repro.memory.registry` name)."""
    link_bandwidth_scale: float = 1.0
    """External-interface multiplier of the substrate (sweep axis)."""


@dataclass
class RunnerCacheStats:
    """Cache effectiveness counters for one :class:`ExperimentRunner`."""

    memo_hits: int
    memo_misses: int
    disk_hits: int
    disk_misses: int
    disk_stores: int
    disk_errors: int
    disk_entries: int
    disk_bytes: int

    @property
    def disk_hit_rate(self) -> float:
        total = self.disk_hits + self.disk_misses
        return self.disk_hits / total if total else 0.0


def _run_payload(key: RunKey) -> Dict[str, Any]:
    """Canonical JSON-able payload identifying one design run."""
    return {
        "workload": key.workload,
        "design": key.design.name,
        "angle_threshold": key.angle_threshold,
        "aniso_enabled": key.aniso_enabled,
        "mtu_share": key.mtu_share,
        "consolidation_enabled": key.consolidation_enabled,
        "memory_backend": key.memory_backend,
        "link_bandwidth_scale": key.link_bandwidth_scale,
    }


def _trace_pair(
    cache: DiskCache, workload: GameWorkload
) -> Tuple[Scene, FragmentTrace]:
    """Load (or generate and persist) a workload's scene + trace."""
    trace_key = cache.key("trace", workload=workload.name)
    hit, pair = cache.load(trace_key)
    if not hit:
        pair = workload.trace()
        cache.store_safe(trace_key, pair)
    return pair


def _worker_trace(
    workload_name: str, cache_root: str,
    ctx: Optional[FaultContext] = None,
) -> str:
    """Pool worker: ensure one workload's trace exists in the disk cache."""
    faults.enter_worker(ctx)
    cache = DiskCache(root=Path(cache_root))
    _trace_pair(cache, workload_by_name(workload_name))
    return workload_name


def _worker_run(
    key: RunKey, cache_root: str,
    ctx: Optional[FaultContext] = None,
) -> DesignRun:
    """Pool worker: simulate one grid point, reading/writing the cache."""
    faults.enter_worker(ctx)
    cache = DiskCache(root=Path(cache_root))
    run_key = cache.key("run", **_run_payload(key))
    hit, run = cache.load(run_key)
    if hit:
        return run
    workload = workload_by_name(key.workload)
    scene, trace = _trace_pair(cache, workload)
    config = workload.design_config(
        key.design,
        angle_threshold=key.angle_threshold,
        aniso_enabled=key.aniso_enabled,
        mtu_share=key.mtu_share,
        consolidation_enabled=key.consolidation_enabled,
        memory_backend=key.memory_backend,
        link_bandwidth_scale=key.link_bandwidth_scale,
    )
    run = simulate_frame(scene, trace, config)
    cache.store_safe(run_key, run)
    return run


def _worker_trace_traced(
    workload_name: str, cache_root: str,
    ctx: Optional[FaultContext] = None,
) -> Tuple[str, List[Dict[str, Any]]]:
    """Traced pool worker: trace generation plus this worker's span forest.

    Forked workers inherit the parent's half-built tracer state, so the
    tracer is reset before any spans are recorded here -- except when
    running in the parent itself (the degraded fallback under
    :func:`faults.suppress`, or a serial-backend attempt under
    :func:`faults.inline_execution`), where the parent's live tracer
    already covers the work and resetting it would destroy the run's
    span forest.
    """
    if faults.suppressed() or faults.inline():
        return _worker_trace(workload_name, cache_root, ctx), []
    obs.reset_tracer()
    with obs.span("worker.trace", workload=workload_name):
        result = _worker_trace(workload_name, cache_root, ctx)
    return result, obs.get_tracer().as_dicts()


def _worker_run_traced(
    key: RunKey, cache_root: str,
    ctx: Optional[FaultContext] = None,
) -> Tuple[DesignRun, List[Dict[str, Any]]]:
    """Traced pool worker: one grid point plus this worker's span forest."""
    if faults.suppressed() or faults.inline():
        return _worker_run(key, cache_root, ctx), []
    obs.reset_tracer()
    with obs.span(
        "worker.run", workload=key.workload, design=key.design.name
    ):
        result = _worker_run(key, cache_root, ctx)
    return result, obs.get_tracer().as_dicts()


def _graft_worker_spans(phase_span, forests: Sequence[List[Dict[str, Any]]]) -> None:
    """Attach each worker's span forest to a fan-out phase span."""
    if phase_span is None:
        return
    phase_span.attributes["worker_spans"] = [
        forest for forest in forests if forest
    ]


class ExperimentRunner:
    """Runs and memoises design simulations over the workload set."""

    def __init__(
        self,
        workload_names: Optional[Sequence[str]] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        jobs: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        backend: Optional[str] = None,
        cache: Optional[DiskCache] = None,
    ) -> None:
        if workload_names is None:
            self.workloads: List[GameWorkload] = list(WORKLOADS)
        else:
            self.workloads = [workload_by_name(name) for name in workload_names]
        self._traces: Dict[str, Tuple[Scene, FragmentTrace]] = {}
        self._runs: Dict[RunKey, DesignRun] = {}
        self._energy: Dict[RunKey, EnergyBreakdown] = {}
        self.energy_model = EnergyModel()
        self.jobs = jobs
        self.backend = backend
        self.retry_policy = retry_policy or RetryPolicy()
        self.memo_hits = 0
        self.memo_misses = 0
        self._last_fanout = FanoutReport()
        self._memo_lock = threading.RLock()
        """Guards the memo dicts and counters: a persistent server reads
        :meth:`cache_stats` from its HTTP thread while a job thread is
        inside :meth:`run_batch`."""
        if cache is not None:
            # An explicitly-constructed cache (namespaced, size-bounded:
            # the job server's artifact store) wins over cache_dir/env.
            self._disk: Optional[DiskCache] = cache
        else:
            if cache_dir is None:
                env = os.environ.get("REPRO_CACHE_DIR")
                cache_dir = Path(env) if env else None
            self._disk = (
                DiskCache(root=Path(cache_dir)) if cache_dir is not None
                else None
            )

    @property
    def disk_cache(self) -> Optional[DiskCache]:
        """The persistent cache, or ``None`` when running memo-only."""
        return self._disk

    def fanout_report(self) -> FanoutReport:
        """Per-key robustness outcomes of the most recent :meth:`run_many`.

        Empty until the first ``run_many`` call; keys already served from
        the memo are not listed (they were never scheduled).
        """
        return self._last_fanout

    def trace(self, workload: GameWorkload) -> Tuple[Scene, FragmentTrace]:
        if workload.name in self._traces:
            self.memo_hits += 1
            return self._traces[workload.name]
        self.memo_misses += 1
        with obs.span("runner.trace", workload=workload.name):
            if self._disk is not None:
                pair = _trace_pair(self._disk, workload)
            else:
                pair = workload.trace()
        self._traces[workload.name] = pair
        return pair

    def run(
        self,
        workload: GameWorkload,
        design: Design,
        threshold: Optional[AngleThreshold] = None,
        aniso_enabled: bool = True,
        mtu_share: int = 1,
        consolidation_enabled: bool = True,
    ) -> DesignRun:
        """Simulate (memoised + disk-cached) one design point."""
        threshold = threshold or DEFAULT_THRESHOLD
        key = RunKey(
            workload=workload.name,
            design=design,
            angle_threshold=threshold.effective_radians,
            aniso_enabled=aniso_enabled,
            mtu_share=mtu_share,
            consolidation_enabled=consolidation_enabled,
        )
        if key in self._runs:
            self.memo_hits += 1
            return self._runs[key]
        self.memo_misses += 1
        with obs.span(
            "runner.run", workload=workload.name, design=design.name
        ) as current:
            disk_key = None
            if self._disk is not None:
                disk_key = self._disk.key("run", **_run_payload(key))
                hit, run = self._disk.load(disk_key)
                if hit:
                    self._runs[key] = run
                    if current is not None:
                        current.attributes["source"] = "disk"
                    return run
            scene, trace = self.trace(workload)
            config = workload.design_config(
                design,
                angle_threshold=threshold.effective_radians,
                aniso_enabled=aniso_enabled,
                mtu_share=mtu_share,
                consolidation_enabled=consolidation_enabled,
            )
            run = simulate_frame(scene, trace, config)
            if current is not None:
                current.attributes["source"] = "simulated"
            self._runs[key] = run
            if self._disk is not None and disk_key is not None:
                self._disk.store_safe(disk_key, run)
            return run

    def _simulate_pending(self, key: RunKey) -> DesignRun:
        """Serially simulate one grid point ``run_many`` already accounted.

        Identical to the miss path of :meth:`run` except that it touches
        no memoisation counters: :meth:`run_many` charges exactly one
        memo miss per scheduled key in both its serial and parallel
        branches, so the two stay comparable.
        """
        with obs.span(
            "runner.run", workload=key.workload, design=key.design.name
        ) as current:
            disk_key = None
            if self._disk is not None:
                disk_key = self._disk.key("run", **_run_payload(key))
                hit, run = self._disk.load(disk_key)
                if hit:
                    with self._memo_lock:
                        self._runs[key] = run
                    if current is not None:
                        current.attributes["source"] = "disk"
                    return run
            workload = workload_by_name(key.workload)
            pair = self._traces.get(workload.name)
            if pair is None:
                with obs.span("runner.trace", workload=workload.name):
                    if self._disk is not None:
                        pair = _trace_pair(self._disk, workload)
                    else:
                        pair = workload.trace()
                with self._memo_lock:
                    self._traces[workload.name] = pair
            scene, trace = pair
            config = workload.design_config(
                key.design,
                angle_threshold=key.angle_threshold,
                aniso_enabled=key.aniso_enabled,
                mtu_share=key.mtu_share,
                consolidation_enabled=key.consolidation_enabled,
                memory_backend=key.memory_backend,
                link_bandwidth_scale=key.link_bandwidth_scale,
            )
            run = simulate_frame(scene, trace, config)
            if current is not None:
                current.attributes["source"] = "simulated"
            with self._memo_lock:
                self._runs[key] = run
            if self._disk is not None and disk_key is not None:
                self._disk.store_safe(disk_key, run)
            return run

    def run_many(
        self,
        keys: Sequence[RunKey],
        jobs: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        task_timeout: Optional[float] = None,
        backend: Optional[str] = None,
    ) -> Dict[RunKey, DesignRun]:
        """Simulate a batch of grid points, fanning out across processes.

        Thin wrapper over :meth:`run_batch` that additionally publishes
        the batch's :class:`~repro.faults.outcomes.FanoutReport` as
        :meth:`fanout_report` -- the historical single-shot interface.
        Long-running callers that issue batches concurrently (the job
        server) use :meth:`run_batch` directly, which hands each caller
        its own report instead of racing on the runner-wide slot.
        """
        results, report = self.run_batch(
            keys,
            jobs=jobs,
            retry_policy=retry_policy,
            task_timeout=task_timeout,
            backend=backend,
        )
        self._last_fanout = report
        return results

    def run_batch(
        self,
        keys: Sequence[RunKey],
        jobs: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        task_timeout: Optional[float] = None,
        backend: Optional[str] = None,
    ) -> Tuple[Dict[RunKey, DesignRun], FanoutReport]:
        """Re-entrant core of :meth:`run_many`: returns ``(results, report)``.

        Safe to call repeatedly from a persistent process: the batch's
        fan-out report is *returned* (never stored on the runner), the
        memo dictionaries and counters are mutated under a lock so
        concurrent :meth:`cache_stats` reads see consistent values, and
        every scratch resource is scoped to the call.

        Two phases: first every distinct workload's trace is generated
        (one worker each), then the design runs execute against the
        now-warm cache.  Workers exchange artefacts through the disk
        cache; when the runner has none configured, a temporary one
        scoped to this call is used.  With ``jobs=1`` (or a single key)
        everything runs in-process -- results are identical either way
        because the whole pipeline is deterministic.

        ``backend`` names an executor backend
        (:data:`repro.faults.BACKEND_NAMES`: ``serial``,
        ``process-pool``, ``work-stealing``); naming one explicitly --
        here or on the runner -- routes scheduling through
        :func:`~repro.faults.executor.run_fanout` on that backend even
        when ``jobs`` would otherwise take the in-process shortcut, so
        cross-backend comparisons exercise the same code path.

        The parallel branch is fault tolerant (see
        :func:`repro.faults.executor.run_fanout`): failed attempts are
        retried under ``retry_policy`` (default: the runner's), tasks
        exceeding ``task_timeout`` seconds are requeued after a pool
        rebuild, and keys that exhaust their retries fall back to serial
        in-process execution.  The returned mapping contains every key
        that produced a result -- possibly a strict subset of ``keys``;
        consult :meth:`fanout_report` for per-key outcomes.
        """
        jobs = jobs if jobs is not None else self.jobs
        if jobs is None:
            jobs = os.cpu_count() or 1
        backend = backend if backend is not None else self.backend
        results: Dict[RunKey, DesignRun] = {}
        pending: List[RunKey] = []
        report = FanoutReport()
        with self._memo_lock:
            for key in keys:
                if key in self._runs:
                    self.memo_hits += 1
                    results[key] = self._runs[key]
                elif key not in pending:
                    pending.append(key)
            if not pending:
                return results, report
            self.memo_misses += len(pending)

        if backend is None and (jobs <= 1 or len(pending) == 1):
            with obs.span(
                "runner.run_many", pending=len(pending), jobs=1
            ):
                for key in pending:
                    report.tasks[key] = TaskReport(
                        token=task_token(key), outcome=RunOutcome.OK,
                        attempts=1,
                    )
                    results[key] = self._simulate_pending(key)
            return results, report

        scratch: Optional[tempfile.TemporaryDirectory] = None
        if self._disk is not None:
            # base_dir, not root: workers construct un-namespaced caches,
            # so a namespaced parent must point them inside its partition
            # or the two would read and write disjoint directories.
            cache_root = str(self._disk.base_dir)
        else:
            scratch = tempfile.TemporaryDirectory(prefix="repro-cache-")
            cache_root = scratch.name
        traced = obs.tracing_enabled()
        policy = retry_policy if retry_policy is not None else self.retry_policy
        trace_fn = _worker_trace_traced if traced else _worker_trace
        run_fn = _worker_run_traced if traced else _worker_run
        workload_names: List[str] = []
        for key in pending:
            if key.workload not in workload_names:
                workload_names.append(key.workload)
        try:
            with obs.span(
                "runner.run_many", pending=len(pending), jobs=jobs
            ) as many_span:
                with obs.span(
                    "runner.trace_phase", workloads=len(workload_names)
                ) as trace_phase:
                    trace_results, trace_report = run_fanout(
                        [
                            FanoutTask(
                                key=name, fn=trace_fn, args=(name, cache_root)
                            )
                            for name in workload_names
                        ],
                        jobs=min(jobs, len(workload_names)),
                        policy=policy,
                        task_timeout=task_timeout,
                        phase="faults.trace_fanout",
                        backend=backend,
                    )
                    if traced:
                        # Graft in submission order, not dict (completion)
                        # order, so the manifest span tree is bit-identical
                        # across runs.
                        _graft_worker_spans(
                            trace_phase,
                            [trace_results[name][1] for name in workload_names
                             if name in trace_results],
                        )
                report.merge(trace_report)
                with obs.span(
                    "runner.run_phase", runs=len(pending)
                ) as run_phase:
                    run_results, run_report = run_fanout(
                        [
                            FanoutTask(
                                key=key, fn=run_fn, args=(key, cache_root)
                            )
                            for key in pending
                        ],
                        jobs=jobs,
                        policy=policy,
                        task_timeout=task_timeout,
                        phase="faults.run_fanout",
                        backend=backend,
                    )
                    if traced:
                        _graft_worker_spans(
                            run_phase,
                            [run_results[key][1] for key in pending
                             if key in run_results],
                        )
                report.merge(run_report)
                with self._memo_lock:
                    for key in pending:
                        if key not in run_results:
                            continue  # FAILED: absent, labelled in the report
                        value = run_results[key]
                        run = value[0] if traced else value
                        self._runs[key] = run
                        results[key] = run
                if many_span is not None:
                    summary = report.as_dict()
                    del summary["tasks"]
                    many_span.attributes["fanout"] = summary
        finally:
            if scratch is not None:
                scratch.cleanup()
        return results, report

    def completed_runs(self) -> Dict[RunKey, DesignRun]:
        """Snapshot of every design run this runner has produced so far."""
        with self._memo_lock:
            return dict(self._runs)

    def energy(
        self,
        workload: GameWorkload,
        design: Design,
        threshold: Optional[AngleThreshold] = None,
    ) -> EnergyBreakdown:
        """Frame energy (memoised + disk-cached) for one design point."""
        threshold = threshold or DEFAULT_THRESHOLD
        key = RunKey(
            workload=workload.name,
            design=design,
            angle_threshold=threshold.effective_radians,
            aniso_enabled=True,
        )
        if key in self._energy:
            self.memo_hits += 1
            return self._energy[key]
        self.memo_misses += 1
        disk_key = None
        if self._disk is not None:
            disk_key = self._disk.key("energy", **_run_payload(key))
            hit, breakdown = self._disk.load(disk_key)
            if hit:
                self._energy[key] = breakdown
                return breakdown
        run = self.run(workload, design, threshold)
        breakdown = self.energy_model.frame_energy(design, run.frame)
        self._energy[key] = breakdown
        if self._disk is not None and disk_key is not None:
            self._disk.store_safe(disk_key, breakdown)
        return breakdown

    def cache_stats(self) -> RunnerCacheStats:
        """Memoisation and disk-cache effectiveness counters."""
        disk = self._disk
        with self._memo_lock:
            memo_hits, memo_misses = self.memo_hits, self.memo_misses
        return RunnerCacheStats(
            memo_hits=memo_hits,
            memo_misses=memo_misses,
            disk_hits=disk.stats.hits if disk else 0,
            disk_misses=disk.stats.misses if disk else 0,
            disk_stores=disk.stats.stores if disk else 0,
            disk_errors=disk.stats.errors if disk else 0,
            disk_entries=disk.entries() if disk else 0,
            disk_bytes=disk.total_bytes() if disk else 0,
        )

    def baseline(self, workload: GameWorkload) -> DesignRun:
        return self.run(workload, Design.BASELINE)

    # Convenience ratios ------------------------------------------------

    def texture_speedup(
        self,
        workload: GameWorkload,
        design: Design,
        threshold: Optional[AngleThreshold] = None,
    ) -> float:
        """Fig. 10 metric: mean texture-filter latency ratio."""
        run = self.run(workload, design, threshold)
        return run.frame.texture_speedup_over(self.baseline(workload).frame)

    def render_speedup(
        self,
        workload: GameWorkload,
        design: Design,
        threshold: Optional[AngleThreshold] = None,
    ) -> float:
        """Fig. 11 metric: frame makespan ratio."""
        run = self.run(workload, design, threshold)
        return run.frame.speedup_over(self.baseline(workload).frame)

    def texture_traffic_ratio(
        self,
        workload: GameWorkload,
        design: Design,
        threshold: Optional[AngleThreshold] = None,
    ) -> float:
        """Fig. 12 metric: external texture bytes, normalized."""
        run = self.run(workload, design, threshold)
        base = self.baseline(workload).frame.traffic.external_texture
        if base <= 0:
            raise ValueError(f"baseline of {workload.name} moved no texture bytes")
        return run.frame.traffic.external_texture / base

    def energy_ratio(
        self,
        workload: GameWorkload,
        design: Design,
        threshold: Optional[AngleThreshold] = None,
    ) -> float:
        """Fig. 13 metric: total frame energy, normalized."""
        energy = self.energy(workload, design, threshold)
        base = self.energy(workload, Design.BASELINE)
        return energy.total / base.total
