"""Fig. 11: overall 3D rendering speedup under the four designs.

The paper: A-TFIM achieves 43 % average (up to 65 %) overall rendering
speedup; B-PIM and S-TFIM hover near +25 % and +26 % respectively, with
S-TFIM's gain over B-PIM "trivial (only 1%)" and negative for some games.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import Design
from repro.core.angle import DEFAULT_THRESHOLD
from repro.experiments.common import FigureData
from repro.experiments.runner import ExperimentRunner

DESIGN_COLUMNS = ["baseline", "b_pim", "s_tfim", "a_tfim_001pi"]


def run(
    runner: Optional[ExperimentRunner] = None,
    workload_names: Optional[Sequence[str]] = None,
) -> FigureData:
    runner = runner or ExperimentRunner(workload_names)
    data = FigureData(
        figure="fig11",
        title="Normalized 3D rendering speedup per design",
        columns=DESIGN_COLUMNS,
        paper_reference=(
            "A-TFIM: 43% average (up to 65%) overall speedup; B-PIM ~27%; "
            "S-TFIM ~= B-PIM (sometimes worse)."
        ),
    )
    for workload in runner.workloads:
        data.add_row(
            workload.name,
            baseline=1.0,
            b_pim=runner.render_speedup(workload, Design.B_PIM),
            s_tfim=runner.render_speedup(workload, Design.S_TFIM),
            a_tfim_001pi=runner.render_speedup(
                workload, Design.A_TFIM, DEFAULT_THRESHOLD
            ),
        )
    data.notes.append(
        f"A-TFIM mean {data.mean('a_tfim_001pi'):.2f} / "
        f"max {data.maximum('a_tfim_001pi'):.2f} (paper: 1.43 / 1.65)"
    )
    return data


if __name__ == "__main__":
    print(run().format_table())
