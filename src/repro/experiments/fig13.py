"""Fig. 13: normalized energy consumption under the designs.

The paper: A-TFIM (0.01*pi) consumes 22 % less energy than the baseline
and 8 % less than B-PIM; S-TFIM consumes more than B-PIM because of its
extra texture traffic; HMC is more energy-efficient than GDDR5.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import Design
from repro.core.angle import DEFAULT_THRESHOLD
from repro.experiments.common import FigureData
from repro.experiments.runner import ExperimentRunner

COLUMNS = ["baseline", "b_pim", "s_tfim", "a_tfim_001pi"]


def run(
    runner: Optional[ExperimentRunner] = None,
    workload_names: Optional[Sequence[str]] = None,
) -> FigureData:
    runner = runner or ExperimentRunner(workload_names)
    data = FigureData(
        figure="fig13",
        title="Normalized energy consumption per design",
        columns=COLUMNS,
        paper_reference=(
            "A-TFIM: 22% less energy than baseline, 8% less than B-PIM; "
            "S-TFIM worse than B-PIM; HMC beats GDDR5."
        ),
    )
    for workload in runner.workloads:
        data.add_row(
            workload.name,
            baseline=1.0,
            b_pim=runner.energy_ratio(workload, Design.B_PIM),
            s_tfim=runner.energy_ratio(workload, Design.S_TFIM),
            a_tfim_001pi=runner.energy_ratio(
                workload, Design.A_TFIM, DEFAULT_THRESHOLD
            ),
        )
    data.notes.append(
        f"A-TFIM mean {data.mean('a_tfim_001pi'):.2f} (paper: 0.78); "
        f"B-PIM mean {data.mean('b_pim'):.2f}"
    )
    return data


if __name__ == "__main__":
    print(run().format_table())
