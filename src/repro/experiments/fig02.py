"""Fig. 2: memory bandwidth usage breakdown of 3D rendering.

The paper's takeaway: texture fetches account for ~60 % of all memory
accesses across games and resolutions, dominating frame buffer, geometry,
Z-test and color traffic.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import Design
from repro.experiments.common import FigureData
from repro.experiments.runner import ExperimentRunner

COLUMNS = ["texture", "framebuffer", "geometry", "ztest", "color"]


def run(
    runner: Optional[ExperimentRunner] = None,
    workload_names: Optional[Sequence[str]] = None,
) -> FigureData:
    runner = runner or ExperimentRunner(workload_names)
    data = FigureData(
        figure="fig2",
        title="Memory bandwidth usage breakdown in 3D rendering (baseline)",
        columns=COLUMNS,
        paper_reference=(
            "Texture fetching accounts for an average of 60% of total "
            "memory access across games/resolutions."
        ),
    )
    for workload in runner.workloads:
        run_result = runner.run(workload, Design.BASELINE)
        breakdown = run_result.frame.traffic.breakdown()
        data.add_row(workload.name, **{c: breakdown[c] for c in COLUMNS})
    data.notes.append(
        f"mean texture share: {data.mean('texture'):.2f} (paper: ~0.60)"
    )
    return data


if __name__ == "__main__":
    print(run().format_table())
