"""Fig. 16: the performance-quality tradeoff, averaged across workloads.

Combines Fig. 14's speedups and Fig. 15's PSNRs into the paper's
tradeoff curve: looser thresholds buy speed and cost quality, with the
knee at 0.01*pi motivating it as the default.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.angle import THRESHOLD_SWEEP, AngleThreshold
from repro.experiments import fig14, fig15
from repro.experiments.common import FigureData
from repro.experiments.runner import ExperimentRunner


def run(
    runner: Optional[ExperimentRunner] = None,
    workload_names: Optional[Sequence[str]] = None,
    thresholds: Optional[Sequence[AngleThreshold]] = None,
    speedups: Optional[FigureData] = None,
    qualities: Optional[FigureData] = None,
) -> FigureData:
    """Average Fig. 14/15 into the tradeoff curve.

    Pass precomputed ``speedups``/``qualities`` to avoid re-running them.
    """
    runner = runner or ExperimentRunner(workload_names)
    thresholds = list(thresholds or THRESHOLD_SWEEP)
    if speedups is None:
        speedups = fig14.run(runner)
    if qualities is None:
        qualities = fig15.run(runner, thresholds=thresholds)

    data = FigureData(
        figure="fig16",
        title="Performance-quality tradeoff (averaged across workloads)",
        columns=["speedup", "psnr"],
        paper_reference=(
            "Averaged speedup rises and PSNR falls monotonically with the "
            "threshold; 0.01pi is the knee chosen as the default."
        ),
    )
    for threshold in thresholds:
        label = threshold.label
        data.add_row(
            label,
            speedup=speedups.mean(label),
            psnr=qualities.mean(label),
        )
    return data


if __name__ == "__main__":
    print(run().format_table(precision=2))
