"""Fig. 10: texture filtering speedup under the four designs.

The paper's headline texture result: A-TFIM (threshold 0.01*pi) speeds up
texture filtering by 3.97x on average (up to 6.4x); B-PIM and S-TFIM
barely move it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import Design
from repro.core.angle import DEFAULT_THRESHOLD
from repro.experiments.common import FigureData
from repro.experiments.runner import ExperimentRunner

DESIGN_COLUMNS = ["baseline", "b_pim", "s_tfim", "a_tfim_001pi"]


def run(
    runner: Optional[ExperimentRunner] = None,
    workload_names: Optional[Sequence[str]] = None,
) -> FigureData:
    runner = runner or ExperimentRunner(workload_names)
    data = FigureData(
        figure="fig10",
        title="Normalized texture filtering speedup per design",
        columns=DESIGN_COLUMNS,
        paper_reference=(
            "A-TFIM improves texture filtering by 3.97x on average (up to "
            "6.4x); S-TFIM and B-PIM show little improvement."
        ),
    )
    for workload in runner.workloads:
        data.add_row(
            workload.name,
            baseline=1.0,
            b_pim=runner.texture_speedup(workload, Design.B_PIM),
            s_tfim=runner.texture_speedup(workload, Design.S_TFIM),
            a_tfim_001pi=runner.texture_speedup(
                workload, Design.A_TFIM, DEFAULT_THRESHOLD
            ),
        )
    data.notes.append(
        f"A-TFIM mean {data.mean('a_tfim_001pi'):.2f} / "
        f"max {data.maximum('a_tfim_001pi'):.2f} (paper: 3.97 / 6.4)"
    )
    return data


if __name__ == "__main__":
    print(run().format_table())
