"""Fig. 15: rendered image quality (PSNR) vs camera-angle threshold.

For each workload, the frame is rendered functionally twice: exactly
(conventional filter order) and under A-TFIM's angle-threshold parent
reuse; the PSNR between the two is the paper's quality metric.  Identical
frames score the paper's cap of 99 dB; above ~70 dB differences are
imperceptible.

This is the only experiment that shades real pixels, so it is the most
expensive; ``workload_names`` can restrict it to a subset.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.angle import THRESHOLD_SWEEP, AngleThreshold
from repro.experiments.common import FigureData
from repro.experiments.runner import ExperimentRunner
from repro.quality import psnr
from repro.render.renderer import SamplingMode
from repro.workloads import GameWorkload


def render_pair(
    workload: GameWorkload, threshold: AngleThreshold
) -> tuple[np.ndarray, np.ndarray]:
    """Render (reference, A-TFIM) images for one workload/threshold.

    The quality model applies the paper's threshold *unscaled*: the
    error a stale reused parent introduces is governed by the absolute
    angle difference the threshold permits, which is resolution
    independent.  (The performance model scales the threshold by
    ``sim_scale`` instead, because recalculation *rates* depend on the
    per-cache-line angle gradient, which the miniature inflates --
    DESIGN.md section 5.)
    """
    built = workload.build()
    renderer = workload.make_renderer()
    reference = renderer.render(built.scene, built.camera, SamplingMode.EXACT)
    approximate = renderer.render(
        built.scene,
        built.camera,
        SamplingMode.ATFIM,
        angle_threshold=threshold.effective_radians,
    )
    return reference.image, approximate.image


def run(
    runner: Optional[ExperimentRunner] = None,
    workload_names: Optional[Sequence[str]] = None,
    thresholds: Optional[Sequence[AngleThreshold]] = None,
) -> FigureData:
    runner = runner or ExperimentRunner(workload_names)
    thresholds = list(thresholds or THRESHOLD_SWEEP)
    columns = [threshold.label for threshold in thresholds]
    data = FigureData(
        figure="fig15",
        title="Image quality (PSNR, dB) per camera-angle threshold",
        columns=columns,
        paper_reference=(
            "PSNR decreases monotonically as the threshold loosens; at the "
            "strict end it approaches the identical-image cap of 99, and "
            "no-recalculation drops visibly (paper plots roughly 30-90 "
            "across apps)."
        ),
    )
    for workload in runner.workloads:
        built = workload.build()
        renderer = workload.make_renderer()
        reference = renderer.render(
            built.scene, built.camera, SamplingMode.EXACT
        ).image
        values: Dict[str, float] = {}
        for threshold in thresholds:
            approximate = renderer.render(
                built.scene,
                built.camera,
                SamplingMode.ATFIM,
                angle_threshold=threshold.effective_radians,
            ).image
            values[threshold.label] = psnr(reference, approximate)
        data.add_row(workload.name, **values)
    means = [f"{label}={data.mean(label):.1f}dB" for label in columns]
    data.notes.append("means: " + ", ".join(means))
    return data


if __name__ == "__main__":
    print(run().format_table(precision=1))
