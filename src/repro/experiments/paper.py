"""The paper's quoted numbers, as a structured single source of truth.

Every quantitative claim the paper's text makes about its figures is
recorded here once, so experiment notes, validation checks and
EXPERIMENTS.md quote identical values.  Numbers are from the paper's
abstract, introduction and section VII prose; per-bar values exist only
where the paper prints them (the S-TFIM bars above Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class PaperStat:
    """One quoted statistic: a mean and, where given, the extreme."""

    mean: float
    best: Optional[float] = None
    description: str = ""


PAPER = {
    # Fig. 2 / section II-B.
    "texture_traffic_share": PaperStat(
        mean=0.60,
        description="texture fetching share of total memory access",
    ),
    # Fig. 4 / section II-C.
    "aniso_disabled_texture_speedup": PaperStat(
        mean=1.1, best=4.2,
        description="texture filtering speedup with anisotropic disabled",
    ),
    "aniso_disabled_traffic": PaperStat(
        mean=0.66, best=0.27,
        description="texture traffic with anisotropic disabled (normalized)",
    ),
    # Fig. 5 / section III.
    "bpim_render_speedup": PaperStat(
        mean=1.27, best=1.30,
        description="B-PIM overall 3D rendering speedup",
    ),
    "bpim_texture_speedup": PaperStat(
        mean=1.07, best=1.69,
        description="B-PIM texture filtering speedup",
    ),
    # Fig. 10 / abstract.
    "atfim_texture_speedup": PaperStat(
        mean=3.97, best=6.4,
        description="A-TFIM texture filtering speedup (0.01pi threshold)",
    ),
    # Fig. 11 / abstract.
    "atfim_render_speedup": PaperStat(
        mean=1.43, best=1.65,
        description="A-TFIM overall 3D rendering speedup",
    ),
    # Fig. 12 / section VII-B.
    "stfim_traffic": PaperStat(
        mean=2.79, best=6.37,
        description="S-TFIM external texture traffic (normalized)",
    ),
    "atfim_005pi_traffic": PaperStat(
        mean=0.72, best=0.36,
        description="A-TFIM texture traffic at the 0.05pi threshold",
    ),
    # Fig. 13 / abstract & section VII-C.
    "atfim_energy": PaperStat(
        mean=0.78,
        description="A-TFIM energy (normalized to baseline)",
    ),
    "atfim_energy_vs_bpim": PaperStat(
        mean=0.92,
        description="A-TFIM energy relative to B-PIM (8% less)",
    ),
    # Fig. 14 / section VII-D.
    "threshold_speedup_strictest": PaperStat(
        mean=1.33,
        description="A-TFIM render speedup at the 0.005pi threshold",
    ),
    "threshold_speedup_loosest": PaperStat(
        mean=1.47,
        description="A-TFIM render speedup with no recalculation",
    ),
    # Section VII-E.
    "parent_buffer_kb": PaperStat(
        mean=1.41, description="Parent Texel Buffer storage"
    ),
    "hmc_area_fraction": PaperStat(
        mean=0.0318, description="A-TFIM logic-layer area share of a DRAM die"
    ),
    "gpu_area_fraction": PaperStat(
        mean=0.0023, description="angle-tag area share of the GPU"
    ),
}

STFIM_TRAFFIC_BARS: Dict[str, float] = {
    # The values printed above Fig. 12's S-TFIM bars, in Table II order.
    "doom3-1280x1024": 5.16,
    "doom3-640x480": 4.41,
    "doom3-320x240": 2.95,
    "fear-1280x1024": 6.37,
    "fear-640x480": 4.47,
    "fear-320x240": 2.99,
    "hl2-1280x1024": 3.01,
    "hl2-640x480": 2.26,
    "riddick-640x480": 2.07,
    "wolfenstein-640x480": 4.18,
}


def stat(name: str) -> PaperStat:
    """Look up one quoted statistic by key."""
    if name not in PAPER:
        raise KeyError(f"unknown paper statistic {name!r}; known: {sorted(PAPER)}")
    return PAPER[name]


def within_factor(measured: float, name: str, factor: float = 2.0) -> bool:
    """True when ``measured`` is within ``factor``x of the paper's mean.

    The reproduction's magnitude contract (DESIGN.md): shapes exact,
    magnitudes within a small factor of the paper's testbed numbers.
    """
    if factor < 1.0:
        raise ValueError("factor must be >= 1")
    reference = stat(name).mean
    if reference <= 0:
        raise ValueError("reference must be positive")
    ratio = measured / reference
    return 1.0 / factor <= ratio <= factor
